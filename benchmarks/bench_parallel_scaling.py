"""Process-sharded execution: multi-core speedup with output equality.

The workload is deliberately CPU-bound the way production TP queries are:
a Meteo-like left outer join **materialising output probabilities**, so each
shard pays window computation + lineage construction + exact probability
computation.  The benchmark runs it

* **batch** — :func:`repro.parallel.parallel_tp_join` at each worker count,
  verified tuple-for-tuple (facts, intervals, canonical lineages *and*
  probabilities) against the single-process run, and
* **continuous** — :class:`repro.stream.StreamQuery` with
  ``transport="processes"`` at each partition count, verified against the
  batch join result,

and reports wall-clock seconds plus the speedup over one worker.  Speedup
requires actual cores: the payload records ``cpu_count`` so a 1-core CI
runner's ≈1× is interpretable, and ``--require-speedup X`` turns the check
into a hard assertion for machines that do have the cores (the acceptance
bar for this subsystem is ≥2× at 4 workers on a 4-core host).

Run with::

    python benchmarks/bench_parallel_scaling.py                 # default sizes
    python benchmarks/bench_parallel_scaling.py --smoke         # CI-sized
    python benchmarks/bench_parallel_scaling.py --workers 1,2,4 --require-speedup 2.0
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Sequence

from conftest import bench_payload_base

from repro.core import tp_left_outer_join
from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import canonical
from repro.options import ExecutionOptions
from repro.parallel import available_cpus, canonical_order, parallel_tp_join
from repro.relation import EquiJoinCondition, TPTuple
from repro.stream import StreamQuery

JOIN_KIND = "left_outer"
ON = [("Metric", "Metric")]


def _identity_row(tp_tuple: TPTuple, with_probability: bool) -> tuple:
    row = (tp_tuple.fact, tp_tuple.start, tp_tuple.end, str(canonical(tp_tuple.lineage)))
    if with_probability:
        row += (tp_tuple.probability,)
    return row


def assert_tuple_for_tuple(result, reference, with_probability: bool, label: str) -> None:
    """Canonically ordered tuple-for-tuple equality (the hard output check)."""
    got = [_identity_row(t, with_probability) for t in canonical_order(list(result))]
    want = [_identity_row(t, with_probability) for t in canonical_order(list(reference))]
    if got != want:
        raise AssertionError(f"{label}: parallel output diverged from single-process run")


def run_batch(size: int, workers_list: Sequence[int], seed: int) -> List[dict]:
    """Batch probability-materialising join at each worker count."""
    positive, negative = meteo_pair(size, seed=seed)
    records: List[dict] = []
    reference = None
    baseline_seconds = None
    for workers in workers_list:
        result = parallel_tp_join(
            JOIN_KIND, positive, negative, ON, workers=workers, compute_probabilities=True
        )
        if reference is None:
            reference = result.relation
            baseline_seconds = result.elapsed_seconds
        else:
            assert_tuple_for_tuple(
                result.relation, reference, with_probability=True, label=f"batch w={workers}"
            )
        records.append(
            {
                "path": "batch",
                "size": size,
                "workers": result.workers,
                "seconds": round(result.elapsed_seconds, 6),
                "speedup_vs_1": round(baseline_seconds / result.elapsed_seconds, 3),
                "outputs": len(result.relation),
                "shard_inputs": list(result.shard_input_sizes),
            }
        )
    return records


def run_continuous(
    size: int, workers_list: Sequence[int], seed: int, disorder: int
) -> List[dict]:
    """Continuous join at each partition count, process-backed when > 1."""
    positive, negative = meteo_pair(size, seed=seed)
    theta = EquiJoinCondition(positive.schema, negative.schema, tuple(ON))
    batch = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)

    catalog = Catalog()
    catalog.register_stream("r", stream_def(positive, ReplayConfig(disorder=disorder, seed=seed)))
    catalog.register_stream(
        "s", stream_def(negative, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    records: List[dict] = []
    baseline_seconds = None
    for workers in workers_list:
        query = StreamQuery(
            catalog,
            JOIN_KIND,
            "r",
            "s",
            ON,
            config=ExecutionOptions(
                partitions=workers,
                transport="processes" if workers > 1 else "threads",
                micro_batch_size=64,
            ),
        )
        result = query.run(merge_seed=seed)
        assert_tuple_for_tuple(
            result.relation, batch, with_probability=False, label=f"continuous p={workers}"
        )
        if baseline_seconds is None:
            baseline_seconds = result.elapsed_seconds
        records.append(
            {
                "path": "continuous",
                "size": size,
                "workers": workers,
                "backend": result.workers,
                "seconds": round(result.elapsed_seconds, 6),
                "speedup_vs_1": round(baseline_seconds / result.elapsed_seconds, 3),
                "events_per_second": round(result.events_per_second, 1),
                "outputs": result.outputs_emitted,
            }
        )
    return records


def report_line(record: dict) -> str:
    extra = (
        f"{record['events_per_second']:>10.0f} ev/s"
        if "events_per_second" in record
        else f"{record['outputs']:>6} out"
    )
    return (
        f"{record['path']:>10}  size={record['size']:>6}  workers={record['workers']}  "
        f"{record['seconds'] * 1000:>9.1f}ms  speedup={record['speedup_vs_1']:>5.2f}x  {extra}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 4000)"
    )
    parser.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts (default 1,2,4)"
    )
    parser.add_argument("--disorder", type=int, default=4, help="stream replay disorder")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes / 2 workers for CI smoke runs"
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="fail unless the best batch speedup reaches this factor "
        "(use on hosts with at least as many cores as workers)",
    )
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [400]
        workers_list = [1, 2]
    else:
        sizes = (
            [int(part) for part in arguments.sizes.split(",") if part.strip()]
            if arguments.sizes
            else [4000]
        )
        workers_list = [int(part) for part in arguments.workers.split(",") if part.strip()]
    if workers_list[0] != 1:
        workers_list = [1, *workers_list]
    cpus = available_cpus()
    print(f"cpu_count={cpus}  workers={workers_list}  sizes={sizes}")
    if max(workers_list) > cpus:
        print(
            f"note: only {cpus} core(s) available; speedups for >{cpus} workers "
            "measure overhead, not parallelism"
        )

    started = time.perf_counter()
    records: List[dict] = []
    for size in sizes:
        for record in run_batch(size, workers_list, arguments.seed):
            records.append(record)
            print(report_line(record))
        for record in run_continuous(size, workers_list, arguments.seed, arguments.disorder):
            records.append(record)
            print(report_line(record))
    print(f"total {time.perf_counter() - started:.1f}s; all output-equality checks passed")

    best_batch = max(
        (r["speedup_vs_1"] for r in records if r["path"] == "batch"), default=1.0
    )
    skipped_reason = None
    if arguments.require_speedup is not None:
        if cpus < 2:
            # A single-core host cannot exhibit parallel speedup; failing the
            # gate there reports scheduler noise, not a regression.  Record
            # why the gate was skipped so the payload stays interpretable.
            skipped_reason = (
                f"cpu_count={cpus} < 2: speedup gate requires a multi-core host"
            )
            print(f"SKIP speedup gate: {skipped_reason}")
        elif best_batch < arguments.require_speedup:
            print(
                f"FAIL: best batch speedup {best_batch:.2f}x < required "
                f"{arguments.require_speedup:.2f}x"
            )
            return 1

    if arguments.json_dir:
        metrics: dict = {"best_batch_speedup": best_batch}
        for record in records:
            prefix = f"{record['path']}_s{record['size']}_w{record['workers']}"
            metrics[f"{prefix}_outputs"] = record["outputs"]
            metrics[f"{prefix}_seconds"] = record["seconds"]
        payload = bench_payload_base(
            "parallel_scaling",
            "Process-sharded TP joins: speedup vs single process",
            seed=arguments.seed,
            skipped_reason=skipped_reason,
            metrics=metrics,
            speedup_gate={
                "required": arguments.require_speedup,
                "skipped_reason": skipped_reason,
            },
            measurements=records,
        )
        path = write_bench_file("parallel_scaling", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
