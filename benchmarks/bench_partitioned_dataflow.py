"""Partitioned dataflow stages: pipeline × partition throughput.

The dataflow executor scales a chained continuous TP query along two
independent axes — *pipeline* (one worker set per chained operator, PR 3)
and *partition* (``NodeSpec.partitions = K`` key-routed workers inside each
stage, this benchmark's subject).  This benchmark measures a 2-node join
tree (a Meteo-like ``left_outer`` feeding a ``right_outer`` — one
reverse-window stage) in three worker topologies, at two or more disorder
settings:

* **pipeline** — the pipelined backend with one worker per node
  (``partitions=1``): parallelism across chained operators only;
* **partition** — K workers per stage but *stage-sequential*: each node
  runs to settlement as its own single-node partitioned graph, its settled
  output replayed into the next stage.  Parallelism within an operator
  only;
* **combined** — the pipelined backend with ``partitions=K`` per node:
  both axes multiplied (ΣKᵢ concurrent workers).

Every configuration first proves the settled output equals the batch
re-run **tuple for tuple with bitwise-equal probabilities**
(:func:`repro.dataflow.assert_converged`) before any number is reported, so
the benchmark cannot measure a wrong computation.  On hosts with at least 4
cores the run *fails* unless combined throughput is at least either axis
alone; on smaller hosts the gate is skipped with a recorded
``skipped_reason`` (a 1–2 core runner measures scheduling overhead, not
parallelism).  Results go to ``bench_results/BENCH_partitioned_dataflow.json``.

Run with::

    python benchmarks/bench_partitioned_dataflow.py              # default sizes
    python benchmarks/bench_partitioned_dataflow.py --smoke      # CI-sized
    python benchmarks/bench_partitioned_dataflow.py --sizes 2000 --partitions 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Sequence

from conftest import bench_payload_base

from repro.dataflow import (
    DataflowQuery,
    NodeSpec,
    assert_converged,
    batch_rerun,
    identity_rows,
)
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.datasets.meteo import meteo_config
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import EventSpace
from repro.options import ExecutionOptions
from repro.parallel import available_cpus

#: The two-stage tree: one forward-window and one reverse-window operator.
KINDS = (("n1", "left_outer", "r", "s"), ("n2", "right_outer", "n1", "t"))
ON = (("Metric", "Metric"),)


def tree(partitions: int) -> List[NodeSpec]:
    return [
        NodeSpec(name, kind, left, right, ON, partitions=partitions)
        for name, kind, left, right in KINDS
    ]


def build_catalog(size: int, disorder: int, seed: int) -> Catalog:
    """Three Meteo-like streams over one shared event space."""
    events = EventSpace()
    catalog = Catalog()
    for offset, name in enumerate(("r", "s", "t")):
        relation = generate_relation(
            meteo_config(size, seed=seed + offset), events, name=name
        )
        catalog.register_stream(
            name,
            stream_def(relation, ReplayConfig(disorder=disorder, seed=seed + offset)),
        )
    return catalog


def check_against_batch(result, catalog, nodes) -> None:
    """Tuple-for-tuple, bitwise-probability equality with the batch re-run."""
    assert_converged(result, catalog, nodes, check_probabilities=True)


def run_pipelined(
    size: int, disorder: int, seed: int, partitions: int, backend: str
) -> dict:
    """One pipelined run (partitions=1 → pipeline axis, >1 → combined)."""
    catalog = build_catalog(size, disorder, seed)
    nodes = tree(partitions)
    query = DataflowQuery(catalog, nodes, ExecutionOptions(transport=backend))
    result = query.run(merge_seed=seed, backend=backend)
    check_against_batch(result, catalog, nodes)
    return {
        "backend": result.backend,
        "seconds": result.elapsed_seconds,
        "source_events": result.events_processed,
        "outputs": len(result.relation),
    }


def run_stage_sequential(
    size: int, disorder: int, seed: int, partitions: int, backend: str
) -> dict:
    """Partition axis alone: each stage settles before the next starts.

    Node 1 runs as a single-node K-partitioned graph; its settled relation
    is replayed as a stream feeding node 2, so at any moment only one
    stage's K workers are busy — partition parallelism without pipelining.
    """
    catalog = build_catalog(size, disorder, seed)
    elapsed = 0.0
    backends = []
    stage_one = [NodeSpec("n1", "left_outer", "r", "s", ON, partitions=partitions)]
    query = DataflowQuery(catalog, stage_one, ExecutionOptions(transport=backend))
    result_one = query.run(merge_seed=seed, backend=backend)
    elapsed += result_one.elapsed_seconds
    backends.append(result_one.backend)

    # Materialize the settled intermediate and replay it into stage two.
    intermediate = result_one.relation
    started = time.perf_counter()
    catalog.register_stream(
        "n1_settled",
        stream_def(intermediate, ReplayConfig(disorder=disorder, seed=seed + 7)),
    )
    elapsed += time.perf_counter() - started
    stage_two = [
        NodeSpec("n2", "right_outer", "n1_settled", "t", ON, partitions=partitions)
    ]
    query = DataflowQuery(catalog, stage_two, ExecutionOptions(transport=backend))
    result_two = query.run(merge_seed=seed + 1, backend=backend)
    elapsed += result_two.elapsed_seconds
    backends.append(result_two.backend)

    # End-to-end equality with the batch re-run of the whole tree,
    # probabilities bitwise.
    batch = batch_rerun(catalog, tree(1), compute_probabilities=True)
    got = identity_rows(result_two.relation.with_probabilities())
    want = identity_rows(batch["n2"])
    if got != want:
        raise AssertionError(
            f"stage-sequential output diverged from the batch re-run at "
            f"size={size} disorder={disorder}"
        )
    return {
        "backend": "+".join(backends),
        "seconds": elapsed,
        "outputs": len(result_two.relation),
    }


def run_one(size: int, disorder: int, seed: int, partitions: int, backend: str) -> dict:
    pipeline = run_pipelined(size, disorder, seed, partitions=1, backend=backend)
    partition = run_stage_sequential(size, disorder, seed, partitions, backend)
    combined = run_pipelined(size, disorder, seed, partitions, backend)
    source_events = pipeline["source_events"]
    record = {
        "size": size,
        "disorder": disorder,
        "partitions": partitions,
        "source_events": source_events,
        "outputs": combined["outputs"],
    }
    for mode, run in (("pipeline", pipeline), ("partition", partition), ("combined", combined)):
        record[mode] = {
            "backend": run["backend"],
            "seconds": round(run["seconds"], 6),
            "events_per_second": round(source_events / run["seconds"], 1)
            if run["seconds"] > 0
            else float("inf"),
        }
    best_axis = max(
        record["pipeline"]["events_per_second"],
        record["partition"]["events_per_second"],
    )
    record["combined_vs_best_axis_ratio"] = round(
        record["combined"]["events_per_second"] / best_axis, 3
    )
    return record


def report_line(record: dict) -> str:
    return (
        f"size={record['size']:>6}  disorder={record['disorder']:>3}  K={record['partitions']}  "
        f"pipeline={record['pipeline']['events_per_second']:>9.0f} ev/s  "
        f"partition={record['partition']['events_per_second']:>9.0f} ev/s  "
        f"combined={record['combined']['events_per_second']:>9.0f} ev/s  "
        f"(combined/best axis {record['combined_vs_best_axis_ratio']:.2f}x)"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1200)"
    )
    parser.add_argument(
        "--disorder", default="4,16", help="comma-separated disorder settings (default 4,16)"
    )
    parser.add_argument(
        "--partitions", type=int, default=4, help="per-stage partition degree K"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        default="processes",
        choices=("threads", "processes"),
        help="worker backend (processes for real multi-core speedup; degrades "
        "to threads when processes cannot start)",
    )
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI smoke runs")
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [300]
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1200]
    disorders = [int(part) for part in arguments.disorder.split(",") if part.strip()]
    if len(disorders) < 2:
        parser.error("need at least two disorder settings to compare")
    if arguments.partitions < 2:
        parser.error("the partition axis needs --partitions >= 2")

    cpus = available_cpus()
    print(
        f"cpu_count={cpus}  K={arguments.partitions}  backend={arguments.backend}  "
        f"sizes={sizes}  disorder={disorders}"
    )
    records: List[dict] = []
    metrics: dict = {}
    for size in sizes:
        for disorder in disorders:
            record = run_one(
                size, disorder, arguments.seed, arguments.partitions, arguments.backend
            )
            records.append(record)
            print(report_line(record))
            prefix = f"s{size}_d{disorder}"
            metrics[f"{prefix}_outputs"] = record["outputs"]
            metrics[f"{prefix}_source_events"] = record["source_events"]
            metrics[f"{prefix}_combined_events_per_second"] = record["combined"][
                "events_per_second"
            ]
            metrics[f"{prefix}_combined_vs_best_axis_ratio"] = record[
                "combined_vs_best_axis_ratio"
            ]
    print("all runs settled tuple-for-tuple, bitwise-probability equal to batch")

    # The throughput gate: combined must be at least either axis alone.  A
    # host with fewer than 4 cores cannot run ΣKᵢ workers concurrently, so
    # the comparison would measure scheduling overhead — skip, and record
    # why.  Smoke sizes are likewise overhead-dominated (process start-up
    # and IPC outweigh the tiny steady state), so CI smoke runs record the
    # numbers without gating on them.
    skipped_reason = None
    failures: List[str] = []
    if cpus < 4:
        skipped_reason = (
            f"cpu_count={cpus} < 4: pipeline×partition gate requires a multi-core host"
        )
        print(f"SKIP throughput gate: {skipped_reason}")
    elif arguments.smoke:
        skipped_reason = (
            "smoke sizes measure start-up overhead, not steady-state "
            "throughput; run default sizes for the gate"
        )
        print(f"SKIP throughput gate: {skipped_reason}")
    else:
        for record in records:
            if record["combined_vs_best_axis_ratio"] < 1.0:
                failures.append(
                    f"size={record['size']} disorder={record['disorder']}: combined "
                    f"{record['combined']['events_per_second']:.0f} ev/s below the "
                    f"best single axis ({record['combined_vs_best_axis_ratio']:.2f}x)"
                )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if arguments.json_dir:
        payload = bench_payload_base(
            "partitioned_dataflow",
            "Partitioned dataflow stages: pipeline × partition throughput",
            seed=arguments.seed,
            skipped_reason=skipped_reason,
            metrics=metrics,
            partitions=arguments.partitions,
            requested_backend=arguments.backend,
            tree=[spec.describe() for spec in tree(arguments.partitions)],
            measurements=records,
        )
        path = write_bench_file("partitioned_dataflow", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
