"""Ablation A3 — effect of join selectivity (distinct-key count).

The paper attributes the higher absolute runtimes on the Meteo dataset to its
non-selective join condition ("a number of distinct values much smaller than
its size").  This ablation holds the input size fixed and sweeps the number
of distinct join keys, measuring the NJ window pipeline; fewer keys mean more
matches per tuple and therefore more overlapping and negating windows.
"""

from __future__ import annotations

import pytest

from repro.core import nj_wuon
from repro.datasets import WorkloadConfig, generate_pair

SIZE = 500


def _workload(distinct_keys: int):
    base = WorkloadConfig(size=SIZE, distinct_keys=distinct_keys, mean_interval_length=8, seed=11)
    positive, negative = generate_pair(base, base.with_seed(12))
    from repro.relation import EquiJoinCondition

    theta = EquiJoinCondition(positive.schema, negative.schema, (("Key", "Key"),))
    return positive, negative, theta


@pytest.mark.benchmark(group="ablation-selectivity")
@pytest.mark.parametrize("distinct_keys", [10, 50, 250])
def test_ablation_selectivity_sweep(benchmark, distinct_keys):
    positive, negative, theta = _workload(distinct_keys)
    windows = benchmark(nj_wuon, positive, negative, theta)
    assert windows


def test_fewer_keys_produce_more_windows():
    """The workload property driving the runtime difference, checked directly."""
    dense = nj_wuon(*_workload(10))
    sparse = nj_wuon(*_workload(250))
    assert len(dense) > len(sparse)
