"""Shared workloads and the unified payload schema for the benchmark suite.

The benchmarks regenerate the paper's figures at a reduced scale so that the
whole suite runs in minutes on a laptop; the experiment harness
(``python -m repro.harness``) runs the same computations at larger sizes and
``--paper-scale`` switches to the original 50K–200K inputs.

Workload pairs are generated once per session and shared by all benchmarks.

Every ``BENCH_*.json`` result file shares one top-level schema, built by
:func:`bench_payload_base`:

* ``experiment`` / ``title`` — identity;
* ``seed`` — the workload-generator seed, so every payload is
  self-reproducing;
* ``cpu_count`` — so ≈1× speedups on single-core CI runners stay
  interpretable;
* ``skipped_reason`` — why a gate (speedup, throughput) was skipped, or
  ``None`` when it ran;
* ``metrics`` — the flat name → number mapping the CI perf-regression gate
  (``benchmarks/check_perf_baselines.py``) compares against the committed
  baselines.  Metric *names* choose the comparison policy: ``*_outputs`` /
  ``*_events`` / ``*_count`` must match exactly, ``*_speedup`` / ``*_rate``
  / ``*_ratio`` get the ratio tolerance band, ``*_seconds`` / ``*_ms`` /
  ``*_per_second`` get the (wider) wall-clock band, anything else is
  informational;
* ``environment`` — interpreter/platform fingerprint;

plus experiment-specific keys (``measurements`` etc.) on top.
"""

from __future__ import annotations

import pytest

from repro.datasets import meteo_pair, webkit_pair

# Re-exported so the standalone bench scripts reach the shared payload
# schema via `from conftest import bench_payload_base` (benchmarks/ is
# their sys.path[0]); the single implementation lives with the harness.
from repro.harness.reporting import bench_payload_base  # noqa: F401
from repro.relation import EquiJoinCondition

#: Input size (tuples per relation) for the window-computation benchmarks.
WINDOW_BENCH_SIZE = 600
#: Input size for the full-join benchmarks (TA's nested-loop plan is quadratic).
JOIN_BENCH_SIZE = 250


def _with_theta(pair, key):
    positive, negative = pair
    theta = EquiJoinCondition(positive.schema, negative.schema, ((key, key),))
    return positive, negative, theta


@pytest.fixture(scope="session")
def webkit_window_workload():
    """WebKit-like workload for Fig. 5 / Fig. 6 style measurements."""
    return _with_theta(webkit_pair(WINDOW_BENCH_SIZE, seed=42), "File")


@pytest.fixture(scope="session")
def meteo_window_workload():
    """Meteo-like workload for Fig. 5 / Fig. 6 style measurements."""
    return _with_theta(meteo_pair(WINDOW_BENCH_SIZE, seed=42), "Metric")


@pytest.fixture(scope="session")
def webkit_join_workload():
    """WebKit-like workload for the Fig. 7 full-join measurements."""
    return _with_theta(webkit_pair(JOIN_BENCH_SIZE, seed=42), "File")


@pytest.fixture(scope="session")
def meteo_join_workload():
    """Meteo-like workload for the Fig. 7 full-join measurements."""
    return _with_theta(meteo_pair(JOIN_BENCH_SIZE, seed=42), "Metric")
