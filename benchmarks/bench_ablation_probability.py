"""Ablation A2 — probability computation strategies on join lineages.

The lineages produced by TP joins with negation are read-once (each event
variable occurs at most once), so the exact computation's independence fast
path applies; Monte-Carlo sampling is the structure-oblivious alternative.
This ablation measures exact computation against sampling at two sample
counts on the lineages of a full left outer join result.
"""

from __future__ import annotations

import pytest

from repro.core import tp_left_outer_join
from repro.lineage import MonteCarloEstimator, ProbabilityComputer, is_read_once


@pytest.fixture(scope="module")
def join_lineages(webkit_join_workload):
    positive, negative, theta = webkit_join_workload
    result = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
    return result.events, [t.lineage for t in result]


@pytest.mark.benchmark(group="ablation-probability")
def test_ablation_exact_probability(benchmark, join_lineages):
    events, lineages = join_lineages

    def compute_all():
        computer = ProbabilityComputer(events)
        return [computer.probability(lineage) for lineage in lineages]

    values = benchmark(compute_all)
    assert all(0.0 <= value <= 1.0 for value in values)


@pytest.mark.benchmark(group="ablation-probability-memoisation")
def test_ablation_repeated_windows_structural_cache(benchmark, join_lineages):
    """Baseline for the memoisation delta: structural cache, repeated windows.

    Re-computing the same lineage list several times models a continuous
    query finalizing repeated windows of the same positive tuples; the
    structural cache pays a deep hash + equality walk per hit.
    """
    events, lineages = join_lineages

    def compute_repeated():
        computer = ProbabilityComputer(events, hash_cons=False)
        values = []
        for _round in range(5):
            values = [computer.probability(lineage) for lineage in lineages]
        return values

    values = benchmark(compute_repeated)
    assert all(0.0 <= value <= 1.0 for value in values)


@pytest.mark.benchmark(group="ablation-probability-memoisation")
def test_ablation_repeated_windows_hash_consed_cache(benchmark, join_lineages):
    """The memoised side of the delta: hash-consed identity cache.

    Interned sub-expressions make repeated probabilities one ``id()``
    lookup — the first step of the ROADMAP's incremental probability
    computation.  Compare against the structural-cache baseline in the same
    benchmark group.
    """
    events, lineages = join_lineages

    def compute_repeated():
        computer = ProbabilityComputer(events, hash_cons=True)
        values = []
        for _round in range(5):
            values = [computer.probability(lineage) for lineage in lineages]
        return values

    values = benchmark(compute_repeated)
    assert all(0.0 <= value <= 1.0 for value in values)


def test_memoised_probabilities_match_structural(join_lineages):
    """The hash-consed cache must be a pure speedup: values identical bitwise."""
    events, lineages = join_lineages
    structural = ProbabilityComputer(events, hash_cons=False)
    memoised = ProbabilityComputer(events, hash_cons=True)
    for lineage in lineages:
        assert memoised.probability(lineage) == structural.probability(lineage)


@pytest.mark.benchmark(group="ablation-probability")
def test_ablation_monte_carlo_200_samples(benchmark, join_lineages):
    events, lineages = join_lineages

    def estimate_all():
        estimator = MonteCarloEstimator(events, seed=1)
        return [estimator.estimate(lineage, samples=200).value for lineage in lineages]

    values = benchmark(estimate_all)
    assert all(0.0 <= value <= 1.0 for value in values)


@pytest.mark.benchmark(group="ablation-probability")
def test_ablation_monte_carlo_1000_samples(benchmark, join_lineages):
    events, lineages = join_lineages

    def estimate_all():
        estimator = MonteCarloEstimator(events, seed=1)
        return [estimator.estimate(lineage, samples=1000).value for lineage in lineages]

    values = benchmark(estimate_all)
    assert all(0.0 <= value <= 1.0 for value in values)


def test_join_lineages_are_read_once(join_lineages):
    """The structural property the exact fast path relies on holds for every lineage."""
    _events, lineages = join_lineages
    assert all(is_read_once(lineage) for lineage in lineages)
