"""Figure 6 — negating windows: NJ-WN, NJ-WUON and TA.

The paper's Fig. 6 measures the computation of negating windows on WebKit
(6a) and Meteo (6b): the TA baseline against NJ measured two ways — WUON
(the full window pipeline including the WUO prework) and WN (the LAWAN sweep
alone).  Reported shape: NJ-WUON is 4–10× faster than TA and NJ-WN is 12–20×
faster.

The three benchmark series below reproduce those measurements; compare the
group means (TA / NJ-WUON and TA / NJ-WN).
"""

from __future__ import annotations

import pytest

from repro.baselines import ta_wuon
from repro.core import nj_wn, nj_wuon, overlap_join
from repro.core.lawan import negating_windows


@pytest.mark.benchmark(group="fig6a-webkit-negating")
def test_fig6a_nj_wn_webkit(benchmark, webkit_window_workload):
    positive, negative, theta = webkit_window_workload
    # NJ-WN measures the LAWAN sweep itself, excluding the WUO prework: the
    # grouped overlap join is computed once outside the timed section.
    groups = overlap_join(positive, negative, theta)
    windows = benchmark(negating_windows, groups)
    assert windows


@pytest.mark.benchmark(group="fig6a-webkit-negating")
def test_fig6a_nj_wuon_webkit(benchmark, webkit_window_workload):
    positive, negative, theta = webkit_window_workload
    windows = benchmark(nj_wuon, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig6a-webkit-negating")
def test_fig6a_ta_webkit(benchmark, webkit_window_workload):
    positive, negative, theta = webkit_window_workload
    windows = benchmark(ta_wuon, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig6b-meteo-negating")
def test_fig6b_nj_wn_meteo(benchmark, meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    groups = overlap_join(positive, negative, theta)
    windows = benchmark(negating_windows, groups)
    assert windows


@pytest.mark.benchmark(group="fig6b-meteo-negating")
def test_fig6b_nj_wuon_meteo(benchmark, meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    windows = benchmark(nj_wuon, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig6b-meteo-negating")
def test_fig6b_ta_meteo(benchmark, meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    windows = benchmark(ta_wuon, positive, negative, theta)
    assert windows


def test_fig6_nj_and_ta_compute_the_same_negating_windows(webkit_window_workload):
    """Sanity check: the measured computations agree on the negating windows."""
    positive, negative, theta = webkit_window_workload
    nj = nj_wn(positive, negative, theta)
    ta = [w for w in ta_wuon(positive, negative, theta) if w.window_class.value == "negating"]
    assert len(nj) == len(ta)
