"""Tracing overhead: the same continuous join untraced vs. sampled vs. full.

Tracing claims the same near-zero-cost discipline as metrics: with tracing
off the worker loop is the verbatim uninstrumented loop (one ``is None``
test per element is the entire residue), and at the default 1% sampling
rate the added work — a deterministic accumulator tick at the source plus
three spans per sampled element — must be invisible in throughput.  This
benchmark holds that claim to a number.  For each configuration it replays
the Meteo-like workload through the continuous TP left outer join three
ways — tracing off, tracing at the default ``trace_sample_rate`` (1%), and
tracing every element (rate 1.0) — and reports

* **events/sec** for all three modes (best of ``--repeats`` runs each),
* ``trace_default_vs_off_throughput_ratio`` — the gated figure: the
  default-rate run must keep at least ``--gate-ratio`` (default 0.95) of
  the untraced throughput, where the ratio is paired *within* an attempt
  (the modes run back to back, so machine-wide drift cancels) and the
  best attempt counts,
* ``trace_full_vs_off_throughput_ratio`` — informational: what tracing
  *everything* costs, and
* the full-rate run's span count, as evidence the tracer was actually
  live while the ratios were measured.

All three modes must produce bitwise-identical settled output (canonical
lineage included) before any number is reported — the sampler is
deterministic precisely so that traced runs stay comparable.

Run with::

    python benchmarks/bench_trace_overhead.py             # default sizes
    python benchmarks/bench_trace_overhead.py --smoke     # CI-sized
    python benchmarks/bench_trace_overhead.py --sizes 2000 --repeats 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from conftest import bench_payload_base

from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import canonical
from repro.obs import DEFAULT_TRACE_SAMPLE_RATE
from repro.options import ExecutionOptions
from repro.relation import TPRelation
from repro.stream import StreamQuery

#: The three modes, keyed by sample rate (None = tracing off entirely).
MODES: tuple = (None, DEFAULT_TRACE_SAMPLE_RATE, 1.0)


def canonical_rows(relation: TPRelation) -> set:
    """Order-insensitive, lineage-canonical view of a join result."""
    return {
        (t.fact, t.start, t.end, str(canonical(t.lineage))) for t in relation
    }


def _run_query(size: int, disorder: int, partitions: int, seed: int, rate):
    """One full continuous-join run; returns the settled result."""
    positive, negative = meteo_pair(size, seed=seed)
    catalog = Catalog()
    catalog.register_stream(
        "r", stream_def(positive, ReplayConfig(disorder=disorder, seed=seed))
    )
    catalog.register_stream(
        "s", stream_def(negative, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    config = (
        ExecutionOptions(partitions=partitions)
        if rate is None
        else ExecutionOptions(
            partitions=partitions, trace=True, trace_sample_rate=rate
        )
    )
    query = StreamQuery(catalog, "left_outer", "r", "s", [("Metric", "Metric")],
                        config=config)
    return query.run(merge_seed=seed)


def run_one(size: int, disorder: int, partitions: int, repeats: int, seed: int) -> dict:
    """Measure one configuration in all three modes; returns the record."""
    best = {rate: 0.0 for rate in MODES}
    paired = {rate: 0.0 for rate in MODES[1:]}
    rows: dict = {}
    spans_full = 0
    # One untimed warm-up absorbs import and allocator cold-start, which
    # would otherwise tax whichever mode happens to run first.
    _run_query(size, disorder, partitions, seed, None)
    for attempt in range(repeats):
        # Rotate which mode goes first so cache warm-up cannot favour one.
        order = MODES[attempt % len(MODES):] + MODES[: attempt % len(MODES)]
        attempt_rates = {}
        for rate in order:
            result = _run_query(size, disorder, partitions, seed, rate)
            attempt_rates[rate] = result.events_per_second
            best[rate] = max(best[rate], result.events_per_second)
            rows.setdefault(rate, canonical_rows(result.relation))
            if rate is None:
                assert result.trace() is None, "tracing off leaked spans"
            elif rate == 1.0:
                aggregator = result.trace()
                assert aggregator is not None, "rate=1.0 recorded no spans"
                spans_full = len(aggregator)
        # Ratios are paired within the attempt: the modes ran back to back,
        # so machine-wide drift between attempts cancels out of the figure.
        for rate in MODES[1:]:
            paired[rate] = max(
                paired[rate], attempt_rates[rate] / attempt_rates[None]
            )

    for rate in MODES[1:]:
        if rows[rate] != rows[None]:
            raise AssertionError(
                f"traced output diverged at size={size} rate={rate}"
            )
    assert spans_full > 0, "the tracer was never live"

    return {
        "size": size,
        "disorder": disorder,
        "partitions": partitions,
        "repeats": repeats,
        "events_per_second_off": round(best[None], 1),
        "events_per_second_default": round(best[DEFAULT_TRACE_SAMPLE_RATE], 1),
        "events_per_second_full": round(best[1.0], 1),
        "default_ratio": round(paired[DEFAULT_TRACE_SAMPLE_RATE], 4),
        "full_ratio": round(paired[1.0], 4),
        "spans_full": spans_full,
        "outputs": len(rows[None]),
    }


def report_line(record: dict) -> str:
    return (
        f"size={record['size']:>6}  disorder={record['disorder']:>3}  "
        f"off={record['events_per_second_off']:>10.0f} ev/s  "
        f"1%={record['events_per_second_default']:>10.0f} ev/s  "
        f"100%={record['events_per_second_full']:>10.0f} ev/s  "
        f"ratio={record['default_ratio']:.3f}  "
        f"spans={record['spans_full']}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1000)"
    )
    parser.add_argument("--disorder", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per mode; best throughput counts"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=0.95,
        help="minimum default-rate / untraced throughput ratio (0 disables)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    repeats = arguments.repeats
    if arguments.smoke:
        sizes = [300]
        # Smoke runs are ~20ms per mode: scheduler noise swamps a single
        # attempt, so give the paired-ratio gate more attempts to find a
        # clean pair.
        repeats = max(repeats, 7)
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1000]

    records: List[dict] = []
    for size in sizes:
        record = run_one(
            size,
            arguments.disorder,
            arguments.partitions,
            repeats,
            arguments.seed,
        )
        records.append(record)
        print(report_line(record))

    worst = min(record["default_ratio"] for record in records)
    gated = arguments.gate_ratio > 0
    failed = gated and worst < arguments.gate_ratio

    if arguments.json_dir:
        metrics: dict = {
            "trace_default_vs_off_throughput_ratio": worst,
            "trace_full_vs_off_throughput_ratio": min(
                record["full_ratio"] for record in records
            ),
        }
        for record in records:
            prefix = f"s{record['size']}_d{record['disorder']}"
            metrics[f"{prefix}_outputs"] = record["outputs"]
            metrics[f"{prefix}_spans_count"] = record["spans_full"]
            metrics[f"{prefix}_events_per_second"] = record["events_per_second_off"]
        payload = bench_payload_base(
            "trace_overhead",
            "Tracing overhead: continuous join untraced vs. 1% vs. 100% sampled",
            seed=arguments.seed,
            metrics=metrics,
            trace_enabled=True,
            measurements=records,
            gate={
                "ratio_floor": arguments.gate_ratio if gated else None,
                "worst_ratio": worst,
                "passed": not failed,
            },
        )
        path = write_bench_file("trace_overhead", payload, arguments.json_dir)
        print(f"wrote {path}")

    if failed:
        print(
            f"FAIL: default-rate tracing kept only {worst:.3f}x of untraced "
            f"throughput (floor {arguments.gate_ratio})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
