"""Telemetry overhead: the same continuous join with metrics off vs. on.

The metrics subsystem claims a near-zero-cost hot path: counters are plain
attribute increments bound into the worker loop, the metrics-off branch is
the verbatim uninstrumented loop, and snapshots ride the existing frame
protocol.  This benchmark holds that claim to a number.  For each
configuration it replays the Meteo-like workload through the continuous TP
left outer join twice — once with ``metrics=False`` (the default) and once
with ``metrics=True`` — and reports

* **events/sec** for both modes (best of ``--repeats`` runs each, so a
  single scheduler hiccup cannot decide the comparison),
* ``metrics_on_vs_off_throughput_ratio`` — the gated figure: the
  instrumented run must keep at least ``--gate-ratio`` (default 0.95) of
  the uninstrumented throughput, and
* the instrumented run's aggregated counter totals, as evidence the
  telemetry was actually live while the ratio was measured.

Both runs must produce bitwise-identical settled output (canonical lineage
included) before any number is reported — instrumentation that changes the
answer would be a bug, not an overhead.

Run with::

    python benchmarks/bench_metrics_overhead.py             # default sizes
    python benchmarks/bench_metrics_overhead.py --smoke     # CI-sized
    python benchmarks/bench_metrics_overhead.py --sizes 2000 --repeats 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from conftest import bench_payload_base

from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import canonical
from repro.options import ExecutionOptions
from repro.relation import TPRelation
from repro.stream import StreamQuery


def canonical_rows(relation: TPRelation) -> set:
    """Order-insensitive, lineage-canonical view of a join result."""
    return {
        (t.fact, t.start, t.end, str(canonical(t.lineage))) for t in relation
    }


def _run_query(size: int, disorder: int, partitions: int, seed: int, metrics: bool):
    """One full continuous-join run; returns (result, aggregator)."""
    positive, negative = meteo_pair(size, seed=seed)
    catalog = Catalog()
    catalog.register_stream(
        "r", stream_def(positive, ReplayConfig(disorder=disorder, seed=seed))
    )
    catalog.register_stream(
        "s", stream_def(negative, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    query = StreamQuery(
        catalog,
        "left_outer",
        "r",
        "s",
        [("Metric", "Metric")],
        config=ExecutionOptions(partitions=partitions, metrics=metrics),
    )
    result = query.run(merge_seed=seed)
    return result, query.metrics()


def run_one(size: int, disorder: int, partitions: int, repeats: int, seed: int) -> dict:
    """Measure one configuration in both modes; returns the result record."""
    best = {False: 0.0, True: 0.0}
    rows = {}
    totals = None
    for attempt in range(repeats):
        # Alternate which mode goes first so cache warm-up cannot favour one.
        order = (False, True) if attempt % 2 == 0 else (True, False)
        for metrics in order:
            result, aggregator = _run_query(size, disorder, partitions, seed, metrics)
            best[metrics] = max(best[metrics], result.events_per_second)
            rows.setdefault(metrics, canonical_rows(result.relation))
            if metrics:
                assert aggregator is not None, "metrics=True produced no snapshots"
                totals = aggregator.totals()
            else:
                assert aggregator is None, "metrics=False leaked an aggregator"

    if rows[True] != rows[False]:
        raise AssertionError(
            f"instrumented output diverged at size={size} disorder={disorder}"
        )
    assert totals and totals["elements_routed"] > 0, "telemetry was never live"

    return {
        "size": size,
        "disorder": disorder,
        "partitions": partitions,
        "repeats": repeats,
        "events_per_second_off": round(best[False], 1),
        "events_per_second_on": round(best[True], 1),
        "ratio": round(best[True] / best[False], 4),
        "elements_routed": totals["elements_routed"],
        "revision_emits": totals.get("revision_emits", 0),
        "outputs": len(rows[True]),
    }


def report_line(record: dict) -> str:
    return (
        f"size={record['size']:>6}  disorder={record['disorder']:>3}  "
        f"off={record['events_per_second_off']:>10.0f} ev/s  "
        f"on={record['events_per_second_on']:>10.0f} ev/s  "
        f"ratio={record['ratio']:.3f}  "
        f"routed={record['elements_routed']}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1000)"
    )
    parser.add_argument("--disorder", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per mode; best throughput counts"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=0.95,
        help="minimum metrics-on / metrics-off throughput ratio (0 disables)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [300]
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1000]

    records: List[dict] = []
    for size in sizes:
        record = run_one(
            size,
            arguments.disorder,
            arguments.partitions,
            arguments.repeats,
            arguments.seed,
        )
        records.append(record)
        print(report_line(record))

    worst = min(record["ratio"] for record in records)
    gated = arguments.gate_ratio > 0
    failed = gated and worst < arguments.gate_ratio

    if arguments.json_dir:
        metrics: dict = {
            "metrics_on_vs_off_throughput_ratio": worst,
        }
        for record in records:
            prefix = f"s{record['size']}_d{record['disorder']}"
            metrics[f"{prefix}_outputs"] = record["outputs"]
            metrics[f"{prefix}_routed_count"] = record["elements_routed"]
            metrics[f"{prefix}_events_per_second"] = record["events_per_second_on"]
        payload = bench_payload_base(
            "metrics_overhead",
            "Telemetry overhead: continuous join with metrics off vs. on",
            seed=arguments.seed,
            metrics=metrics,
            metrics_enabled=True,
            measurements=records,
            gate={
                "ratio_floor": arguments.gate_ratio if gated else None,
                "worst_ratio": worst,
                "passed": not failed,
            },
        )
        path = write_bench_file("metrics_overhead", payload, arguments.json_dir)
        print(f"wrote {path}")

    if failed:
        print(
            f"FAIL: metrics-on kept only {worst:.3f}x of metrics-off throughput "
            f"(floor {arguments.gate_ratio})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
