"""Serving fan-out: subscribers × shared-vs-unshared standing queries.

The serving layer (:mod:`repro.serve`) claims two scaling properties:

* **Plan sharing** — Q structurally identical standing queries run as one
  merged dataflow (one operator set, one set of probability tables), so
  serving Q queries costs about one execution, not Q;
* **Sublinear fan-out** — delivering one revision stream to N subscribers
  costs one bounded ring append plus N cursor reads, so total wall time
  grows far slower than N× the single-subscriber run.

This benchmark measures both axes: Q identical queries served **shared**
(one :class:`~repro.serve.StandingQueryService`, one plan group) versus
**unshared** (one service per query — Q independent graph executions), at
increasing subscriber counts per query.  Every subscriber accumulates its
snapshot + live tail into a :class:`~repro.serve.ResultCache`, and every
accumulated state must equal the settled relation of a **direct
single-consumer** :meth:`~repro.dataflow.DataflowQuery.run` before any
number is reported — the benchmark cannot measure a wrong or incomplete
delivery.

On non-smoke runs two gates apply: shared serving must beat unshared
serving, and shared fan-out cost must stay sublinear in N
(``t(N) < N × t(1)``).  Results go to
``bench_results/BENCH_serving_fanout.json``.

Run with::

    python benchmarks/bench_serving_fanout.py             # default sizes
    python benchmarks/bench_serving_fanout.py --smoke     # CI-sized
    python benchmarks/bench_serving_fanout.py --subscribers 1,2,8
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List, Sequence

from conftest import bench_payload_base

from repro.dataflow import DataflowQuery, NodeSpec
from repro.dataflow.revision import Revision, RevisionKind
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.datasets.meteo import meteo_config
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import EventSpace
from repro.options import ExecutionOptions
from repro.parallel import available_cpus
from repro.relation import TPTuple
from repro.serve import ResultCache, StandingQueryService

ON = (("Metric", "Metric"),)


def build_catalog(size: int, disorder: int, seed: int) -> Catalog:
    """Two Meteo-like streams over one shared event space."""
    events = EventSpace()
    catalog = Catalog()
    for offset, name in enumerate(("r", "s")):
        relation = generate_relation(
            meteo_config(size, seed=seed + offset), events, name=name
        )
        catalog.register_stream(
            name,
            stream_def(relation, ReplayConfig(disorder=disorder, seed=seed + offset)),
        )
    return catalog


def query_nodes(index: int) -> List[NodeSpec]:
    """Structurally identical joins under per-query node names."""
    return [NodeSpec(f"join_q{index}", "left_outer", "r", "s", ON)]


def settled_keys(tuples: Sequence[TPTuple]) -> List[tuple]:
    return sorted(tp_tuple.key() for tp_tuple in tuples)


def run_direct(size: int, disorder: int, seed: int) -> dict:
    """The convergence reference: one single-consumer dataflow run."""
    catalog = build_catalog(size, disorder, seed)
    query = DataflowQuery(catalog, query_nodes(0), ExecutionOptions(early_emit=True))
    result = query.run(merge_seed=seed, backend="threads")
    return {
        "seconds": result.elapsed_seconds,
        "source_events": result.events_processed,
        "outputs": len(result.relation),
        "keys": settled_keys(result.relation.tuples),
    }


def _drain_into(subscription, cache: ResultCache, counters: List[int]) -> None:
    snapshot = subscription.snapshot or ()
    for tp_tuple in snapshot:
        cache.apply(Revision(RevisionKind.EMIT, tp_tuple))
    delivered = len(snapshot)
    for element in subscription:
        cache.apply(element)
        delivered += 1
    counters.append(delivered)


def run_served(
    size: int,
    disorder: int,
    seed: int,
    num_queries: int,
    subscribers: int,
    shared: bool,
    reference_keys: List[tuple],
) -> dict:
    """Serve ``num_queries`` identical queries to ``subscribers`` each.

    ``shared`` uses one service (one merged plan group); otherwise each
    query gets its own service and therefore its own graph execution.
    """
    config = ExecutionOptions(early_emit=True)

    def make_service() -> StandingQueryService:
        return StandingQueryService(
            build_catalog(size, disorder, seed),
            config=config,
            hub_capacity=8192,
            merge_seed=seed,
        )

    if shared:
        service = make_service()
        services = [service] * num_queries
    else:
        services = [make_service() for _ in range(num_queries)]
    for index in range(num_queries):
        services[index].register(f"q{index}", query_nodes(index))

    caches = [ResultCache() for _ in range(num_queries * subscribers)]
    delivered: List[int] = []
    threads: List[threading.Thread] = []
    started = time.perf_counter()
    for index in range(num_queries):
        for _ in range(subscribers):
            subscription = services[index].subscribe(f"q{index}")
            thread = threading.Thread(
                target=_drain_into,
                args=(subscription, caches[len(threads)], delivered),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    for service in {id(s): s for s in services}.values():
        service.shutdown()

    # Convergence gate: every subscriber's accumulated state (snapshot +
    # live tail) must equal the direct single-consumer settled relation.
    for position, cache in enumerate(caches):
        if settled_keys(cache.snapshot()) != reference_keys:
            raise AssertionError(
                f"subscriber {position} ({'shared' if shared else 'unshared'}, "
                f"N={subscribers}) diverged from the direct dataflow run: "
                f"{len(cache)} cached tuples vs {len(reference_keys)} settled"
            )
    total = sum(delivered)
    return {
        "mode": "shared" if shared else "unshared",
        "queries": num_queries,
        "subscribers": subscribers,
        "seconds": round(elapsed, 6),
        "delivered_elements": total,
        "delivered_per_second": round(total / elapsed, 1) if elapsed > 0 else float("inf"),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 800)"
    )
    parser.add_argument(
        "--subscribers",
        default="1,2,4,8",
        help="comma-separated subscriber counts per query (default 1,2,4,8)",
    )
    parser.add_argument("--queries", type=int, default=2, help="standing queries Q")
    parser.add_argument("--disorder", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI smoke runs")
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [200]
        subscriber_counts = [1, 4]
    else:
        sizes = (
            [int(part) for part in arguments.sizes.split(",") if part.strip()]
            if arguments.sizes
            else [800]
        )
        subscriber_counts = [
            int(part) for part in arguments.subscribers.split(",") if part.strip()
        ]
    if arguments.queries < 2:
        parser.error("sharing needs --queries >= 2")

    cpus = available_cpus()
    print(
        f"cpu_count={cpus}  Q={arguments.queries}  sizes={sizes}  "
        f"subscribers={subscriber_counts}  disorder={arguments.disorder}"
    )
    records: List[dict] = []
    metrics: Dict[str, float] = {}
    shared_seconds: Dict[int, float] = {}
    for size in sizes:
        direct = run_direct(size, arguments.disorder, arguments.seed)
        print(
            f"size={size:>6}  direct single-consumer run: "
            f"{direct['outputs']} outputs in {direct['seconds']:.3f}s"
        )
        metrics[f"s{size}_outputs"] = direct["outputs"]
        metrics[f"s{size}_source_events"] = direct["source_events"]
        for count in subscriber_counts:
            row = {"size": size, "direct_seconds": round(direct["seconds"], 6)}
            for shared in (True, False):
                run = run_served(
                    size,
                    arguments.disorder,
                    arguments.seed,
                    arguments.queries,
                    count,
                    shared,
                    direct["keys"],
                )
                row[run["mode"]] = run
            shared_run, unshared_run = row["shared"], row["unshared"]
            ratio = (
                unshared_run["seconds"] / shared_run["seconds"]
                if shared_run["seconds"] > 0
                else float("inf")
            )
            row["unshared_vs_shared_ratio"] = round(ratio, 3)
            records.append(row)
            shared_seconds[count] = shared_run["seconds"]
            prefix = f"s{size}_n{count}"
            metrics[f"{prefix}_shared_seconds"] = shared_run["seconds"]
            metrics[f"{prefix}_unshared_seconds"] = unshared_run["seconds"]
            metrics[f"{prefix}_shared_delivered_per_second"] = shared_run[
                "delivered_per_second"
            ]
            metrics[f"{prefix}_unshared_vs_shared_ratio"] = row[
                "unshared_vs_shared_ratio"
            ]
            print(
                f"size={size:>6}  N={count:>2}  shared={shared_run['seconds']:.3f}s  "
                f"unshared={unshared_run['seconds']:.3f}s  "
                f"(unshared/shared {row['unshared_vs_shared_ratio']:.2f}x)  "
                f"delivered={shared_run['delivered_per_second']:.0f} el/s"
            )
    print("every subscriber converged to the direct single-consumer settled state")

    # Sublinearity of fan-out: N subscribers must cost well under N times
    # the single-subscriber shared run.  Smoke sizes are dominated by
    # thread start-up, so the gate records numbers without enforcing them.
    skipped_reason = None
    failures: List[str] = []
    base = shared_seconds.get(1)
    top = max(subscriber_counts)
    if base and top > 1:
        sublinearity = shared_seconds[top] / (base * top)
        metrics[f"fanout_sublinearity_n{top}_ratio"] = round(sublinearity, 3)
        print(
            f"fan-out cost at N={top}: {sublinearity:.2f}x of linear "
            f"(sublinear < 1.0)"
        )
    if arguments.smoke:
        skipped_reason = (
            "smoke sizes measure start-up overhead, not steady-state "
            "fan-out cost; run default sizes for the gates"
        )
        print(f"SKIP fan-out gates: {skipped_reason}")
    else:
        if base and top > 1 and shared_seconds[top] >= base * top:
            failures.append(
                f"fan-out cost superlinear: t(N={top})={shared_seconds[top]:.3f}s "
                f">= {top} x t(1)={base:.3f}s"
            )
        for row in records:
            if row["unshared_vs_shared_ratio"] < 1.0:
                failures.append(
                    f"size={row['size']} N={row['shared']['subscribers']}: shared "
                    f"serving slower than unshared "
                    f"({row['unshared_vs_shared_ratio']:.2f}x)"
                )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if arguments.json_dir:
        payload = bench_payload_base(
            "serving_fanout",
            "Serving fan-out: subscribers x shared-vs-unshared standing queries",
            seed=arguments.seed,
            skipped_reason=skipped_reason,
            metrics=metrics,
            queries=arguments.queries,
            disorder=arguments.disorder,
            subscriber_counts=subscriber_counts,
            measurements=records,
        )
        path = write_bench_file("serving_fanout", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
