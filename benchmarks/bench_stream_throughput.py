"""Continuous-query throughput and emit latency vs. the batch re-run baseline.

For each disorder setting the benchmark replays a Meteo-like positive /
negative relation pair as out-of-order event streams and runs the continuous
TP left outer join to finalization, reporting

* **events/sec** — ingest throughput of the watermark-driven pipeline,
* **emit latency** — per positive tuple, the wall-clock span from the
  ingestion of its event to the emission of its finalized output windows
  (mean / p50 / p95 / max), and
* the **batch re-run baseline** — the cost of answering the same question
  the pre-streaming way: re-running ``tp_left_outer_join`` over the full
  accumulated relations once all data is in.  The baseline pays the whole
  join again on every refresh; the continuous operator pays each window
  once, when its watermark closes.

Each run asserts that the finalized stream output equals the batch join
output before reporting numbers, so the benchmark cannot silently measure a
wrong computation.  Results are printed and written to
``bench_results/BENCH_stream_throughput.json``.

Run with::

    python benchmarks/bench_stream_throughput.py              # default sizes
    python benchmarks/bench_stream_throughput.py --smoke      # CI-sized
    python benchmarks/bench_stream_throughput.py --sizes 2000 --disorder 0,4,16
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Sequence

from conftest import bench_payload_base

from repro.core import tp_left_outer_join
from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import canonical
from repro.options import ExecutionOptions
from repro.relation import EquiJoinCondition, TPRelation
from repro.stream import StreamQuery


def canonical_rows(relation: TPRelation) -> set:
    """Order-insensitive, lineage-canonical view of a join result."""
    return {
        (t.fact, t.start, t.end, str(canonical(t.lineage))) for t in relation
    }


def run_one(
    size: int, disorder: int, partitions: int, seed: int = 0
) -> dict:
    """Measure one (size, disorder) configuration; returns the result record."""
    positive, negative = meteo_pair(size, seed=seed)
    theta = EquiJoinCondition(
        positive.schema, negative.schema, (("Metric", "Metric"),)
    )

    # Batch re-run baseline: one full join over the accumulated relations.
    started = time.perf_counter()
    batch = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
    batch_seconds = time.perf_counter() - started

    catalog = Catalog()
    replay = ReplayConfig(disorder=disorder, seed=seed)
    catalog.register_stream("r", stream_def(positive, replay))
    catalog.register_stream(
        "s", stream_def(negative, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    query = StreamQuery(
        catalog,
        "left_outer",
        "r",
        "s",
        [("Metric", "Metric")],
        config=ExecutionOptions(partitions=partitions),
    )
    result = query.run(merge_seed=seed)

    if canonical_rows(result.relation) != canonical_rows(batch):
        raise AssertionError(
            f"stream output diverged from batch at size={size} disorder={disorder}"
        )

    latency = result.latency_summary()
    return {
        "size": size,
        "disorder": disorder,
        "partitions": result.partitions,
        "events": result.events_processed,
        "outputs": result.outputs_emitted,
        "late_dropped": result.late_dropped,
        "stream_seconds": round(result.elapsed_seconds, 6),
        "events_per_second": round(result.events_per_second, 1),
        "emit_latency_ms": {key: round(value, 4) for key, value in latency.items()},
        "batch_rerun_seconds": round(batch_seconds, 6),
    }


def report_line(record: dict) -> str:
    latency = record["emit_latency_ms"]
    return (
        f"size={record['size']:>6}  disorder={record['disorder']:>3}  "
        f"partitions={record['partitions']}  "
        f"{record['events_per_second']:>10.0f} ev/s  "
        f"emit p50={latency['p50_ms']:.2f}ms p95={latency['p95_ms']:.2f}ms  "
        f"batch re-run={record['batch_rerun_seconds'] * 1000:.1f}ms  "
        f"stream={record['stream_seconds'] * 1000:.1f}ms"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1000,4000)"
    )
    parser.add_argument(
        "--disorder", default="0,8", help="comma-separated disorder settings (default 0,8)"
    )
    parser.add_argument("--partitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [300]
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1000, 4000]
    disorders = [int(part) for part in arguments.disorder.split(",") if part.strip()]
    if len(disorders) < 2:
        parser.error("need at least two disorder settings to compare")

    records: List[dict] = []
    for size in sizes:
        for disorder in disorders:
            record = run_one(size, disorder, arguments.partitions, seed=arguments.seed)
            records.append(record)
            print(report_line(record))

    if arguments.json_dir:
        metrics: dict = {}
        for record in records:
            prefix = f"s{record['size']}_d{record['disorder']}"
            metrics[f"{prefix}_events"] = record["events"]
            metrics[f"{prefix}_outputs"] = record["outputs"]
            metrics[f"{prefix}_late_dropped_count"] = record["late_dropped"]
            metrics[f"{prefix}_events_per_second"] = record["events_per_second"]
            metrics[f"{prefix}_emit_p95_ms"] = record["emit_latency_ms"]["p95_ms"]
        payload = bench_payload_base(
            "stream_throughput",
            "Continuous TP left outer join: throughput and emit latency",
            seed=arguments.seed,
            metrics=metrics,
            measurements=records,
        )
        path = write_bench_file("stream_throughput", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
