"""Figure 5 — WUO: overlapping and unmatched windows, NJ vs TA.

The paper's Fig. 5 plots the runtime of computing the overlapping and
unmatched windows on the WebKit (5a) and Meteo (5b) datasets for input sizes
of 50K–200K tuples.  Both approaches are dominated by a conventional left
outer join; NJ executes it once, TA twice, so NJ is reported to be two to
four times faster with both growing near-linearly.

These benchmarks measure the same two computations (``nj_wuo`` vs ``ta_wuo``)
on the synthetic WebKit-like and Meteo-like workloads.  Compare the NJ and TA
means per dataset: the expected shape is TA/NJ ≈ 2–4.
"""

from __future__ import annotations

import pytest

from repro.baselines import ta_wuo
from repro.core import nj_wuo


@pytest.mark.benchmark(group="fig5a-webkit-wuo")
def test_fig5a_nj_webkit(benchmark, webkit_window_workload):
    positive, negative, theta = webkit_window_workload
    windows = benchmark(nj_wuo, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig5a-webkit-wuo")
def test_fig5a_ta_webkit(benchmark, webkit_window_workload):
    positive, negative, theta = webkit_window_workload
    windows = benchmark(ta_wuo, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig5b-meteo-wuo")
def test_fig5b_nj_meteo(benchmark, meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    windows = benchmark(nj_wuo, positive, negative, theta)
    assert windows


@pytest.mark.benchmark(group="fig5b-meteo-wuo")
def test_fig5b_ta_meteo(benchmark, meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    windows = benchmark(ta_wuo, positive, negative, theta)
    assert windows


def test_fig5_nj_and_ta_produce_the_same_window_multiset(webkit_window_workload):
    """Sanity check attached to the benchmark: both series compute the same WUO."""
    positive, negative, theta = webkit_window_workload
    nj = nj_wuo(positive, negative, theta)
    ta = ta_wuo(positive, negative, theta)
    assert len(nj) == len(ta)
