"""Early emission vs. watermark-only: emit latency and retraction rate.

The retractable dataflow subsystem (:mod:`repro.dataflow`) can publish a
window *before* the combined watermark closes it, at the price of
retract/refine traffic when late data corrects it.  This benchmark
quantifies that trade on a 3-way continuous join tree (a Meteo-like
``left_outer`` feeding a ``right_outer`` — one reverse-window node, as the
acceptance scenario requires), at two or more disorder settings:

* **wall-clock emit latency** — per positive group, ingestion to first
  publication (p50/p95 ms), in both modes;
* **event-time emit lag** — how far the input frontier (max event start
  seen) had progressed past a group's interval end at first publication.
  Watermark-only emission floors this at the configured watermark lag (the
  source lateness bound); early emission publishes *before* the frontier
  passes the group, so its p50 sits **below the watermark lag** — asserted,
  not just reported;
* **retraction rate** — output retractions per addition, the price paid.

Every configuration first proves convergence (settled output of every node
equals the batch re-run) before any number is reported, so the benchmark
cannot measure a wrong computation.  Results go to
``bench_results/BENCH_retraction_latency.json``.

Run with::

    python benchmarks/bench_retraction_latency.py              # default sizes
    python benchmarks/bench_retraction_latency.py --smoke      # CI-sized
    python benchmarks/bench_retraction_latency.py --sizes 2000 --disorder 4,16
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from conftest import bench_payload_base

from repro.dataflow import (
    DataflowQuery,
    NodeSpec,
    assert_converged,
    percentile,
    summarize_ms,
)
from repro.datasets.meteo import meteo_config
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import EventSpace
from repro.options import ExecutionOptions

TREE = [
    NodeSpec("n1", "left_outer", "r", "s", (("Metric", "Metric"),)),
    NodeSpec("n2", "right_outer", "n1", "t", (("Metric", "Metric"),)),
]


def build_catalog(size: int, disorder: int, seed: int) -> Catalog:
    """Three Meteo-like streams over one shared event space."""
    events = EventSpace()
    catalog = Catalog()
    for offset, name in enumerate(("r", "s", "t")):
        relation = generate_relation(
            meteo_config(size, seed=seed + offset), events, name=name
        )
        catalog.register_stream(
            name,
            stream_def(relation, ReplayConfig(disorder=disorder, seed=seed + offset)),
        )
    return catalog


def run_one(size: int, disorder: int, early: bool, seed: int, backend: str) -> dict:
    catalog = build_catalog(size, disorder, seed)
    # Small buffers on purpose: they bound how far a fast source edge can run
    # ahead of a chained operator's output (pipeline skew), so the event-time
    # lag measurement reflects operator behaviour, not queue depth.
    query = DataflowQuery(
        catalog,
        TREE,
        ExecutionOptions(
            early_emit=early, transport=backend, buffer_capacity=32, micro_batch_size=4
        ),
    )
    result = query.run(merge_seed=seed, backend=backend)
    # Refuse to report numbers for a run that did not converge.
    assert_converged(result, catalog, TREE, check_probabilities=False)

    latencies: List[float] = []
    lags: List[float] = []
    retracts = additions = 0
    for node in result.nodes.values():
        latencies.extend(node.emit_latencies)
        lags.extend(node.emit_event_lags)
        retracts += node.stats.retracts
        additions += node.stats.emits + node.stats.refines
    return {
        "size": size,
        "disorder": disorder,
        "watermark_lag": disorder,  # ReplayConfig defaults lateness = disorder
        "mode": "early_emit" if early else "watermark_only",
        "backend": result.backend,
        "events": result.events_processed,
        "outputs_settled": len(result.relation),
        "emit_latency_ms": {
            key: round(value, 4) for key, value in summarize_ms(latencies).items()
        },
        "emit_event_lag_p50": percentile(lags, 0.50),
        "emit_event_lag_p95": percentile(lags, 0.95),
        "retracts": retracts,
        "additions": additions,
        "retraction_rate": round(retracts / additions, 4) if additions else 0.0,
        "stream_seconds": round(result.elapsed_seconds, 6),
    }


def report_line(record: dict) -> str:
    latency = record["emit_latency_ms"]
    return (
        f"size={record['size']:>6}  disorder={record['disorder']:>3}  "
        f"{record['mode']:>14}  emit p50={latency['p50_ms']:>8.2f}ms "
        f"p95={latency['p95_ms']:>8.2f}ms  event-lag p50={record['emit_event_lag_p50']:>6.1f} "
        f"(lag bound {record['watermark_lag']})  retr={record['retraction_rate']:.2%}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1000)"
    )
    parser.add_argument(
        "--disorder", default="8,16", help="comma-separated disorder settings (default 8,16)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="threads", choices=("inline", "threads", "processes"))
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI smoke runs")
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [250]
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1000]
    disorders = [int(part) for part in arguments.disorder.split(",") if part.strip()]
    if len(disorders) < 2:
        parser.error("need at least two disorder settings to compare")
    if any(disorder <= 0 for disorder in disorders):
        parser.error("disorder settings must be positive (the lag bound is compared)")

    records: List[dict] = []
    failures: List[str] = []
    for size in sizes:
        for disorder in disorders:
            pair = {}
            for early in (False, True):
                record = run_one(size, disorder, early, arguments.seed, arguments.backend)
                records.append(record)
                pair[record["mode"]] = record
                print(report_line(record))
            early_lag = pair["early_emit"]["emit_event_lag_p50"]
            if early_lag >= disorder:
                failures.append(
                    f"size={size} disorder={disorder}: early-emit p50 event lag "
                    f"{early_lag} did not beat the watermark lag {disorder}"
                )
            if not pair["early_emit"]["retracts"]:
                failures.append(
                    f"size={size} disorder={disorder}: early emission produced "
                    "no retractions — nothing was actually provisional"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("all runs converged; early-emit p50 event lag below the watermark lag")

    if arguments.json_dir:
        metrics: dict = {}
        for record in records:
            prefix = f"s{record['size']}_d{record['disorder']}_{record['mode']}"
            metrics[f"{prefix}_outputs"] = record["outputs_settled"]
            metrics[f"{prefix}_events"] = record["events"]
            metrics[f"{prefix}_retraction_rate"] = record["retraction_rate"]
            metrics[f"{prefix}_emit_p50_ms"] = record["emit_latency_ms"]["p50_ms"]
        payload = bench_payload_base(
            "retraction_latency",
            "Early emission vs watermark-only: emit latency and retraction rate",
            seed=arguments.seed,
            metrics=metrics,
            tree=[spec.describe() for spec in TREE],
            measurements=records,
        )
        path = write_bench_file("retraction_latency", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
