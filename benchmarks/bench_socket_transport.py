"""Socket transport vs process queues: throughput and emit latency.

The runtime's socket transport replaces per-worker ``multiprocessing``
queues with TCP connections — the piece that makes execution *distributable*
— at the price of a protocol handshake and kernel socket hops on every
micro-batch.  This benchmark measures that price on localhost, where the
comparison is apples-to-apples: the same continuous TP join, the same
partition count, the same codecs, at two or more disorder settings —

* **processes** — partition workers over bounded ``multiprocessing`` queues;
* **sockets** — the same workers behind TCP endpoints (driver-spawned local
  processes by default; ``--entrypoint-workers N`` starts N external
  ``python -m repro.runtime.worker --listen`` processes and reaches them
  through a placement map instead — the exact topology a multi-host
  deployment uses).

Every run first proves its settled output equals the batch re-run tuple for
tuple (the continuous convergence contract) before any number is reported,
and records the backend that *actually* ran, so a silent fallback can never
masquerade as a socket measurement.  Results go to
``bench_results/BENCH_socket_transport.json``.

The committed baseline (and CI's ``distributed`` job, which the perf gate
compares against it) uses ``--entrypoint-workers 2``: long-lived workers
amortise start-up across runs, which is also the steady-state a real
deployment sees.  A plain ``--smoke`` run spawns fresh socket workers per
measurement and therefore reports several-times-lower socket throughput at
smoke sizes — expected, and not what the baseline gates.

Run with::

    python benchmarks/bench_socket_transport.py              # default sizes
    python benchmarks/bench_socket_transport.py --smoke      # CI-sized
    python benchmarks/bench_socket_transport.py --smoke --entrypoint-workers 2
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
from typing import List, Optional, Sequence

from conftest import bench_payload_base

from repro.core import tp_left_outer_join
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.datasets.meteo import meteo_config
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import EventSpace
from repro.options import ExecutionOptions
from repro.relation import EquiJoinCondition
from repro.runtime import Placement, available_cpus
from repro.stream import StreamQuery

ON = (("Metric", "Metric"),)


def build_catalog(size: int, disorder: int, seed: int):
    """One Meteo-like positive/negative stream pair over a shared event space."""
    events = EventSpace()
    catalog = Catalog()
    relations = {}
    for offset, name in enumerate(("r", "s")):
        relation = generate_relation(
            meteo_config(size, seed=seed + offset), events, name=name
        )
        relations[name] = relation
        catalog.register_stream(
            name,
            stream_def(relation, ReplayConfig(disorder=disorder, seed=seed + offset)),
        )
    return catalog, relations["r"], relations["s"]


def identity_rows(relation):
    """Order-insensitive row identities (facts may contain padding Nones)."""
    return {(t.fact, t.start, t.end, str(t.lineage)) for t in relation}


def run_transport(
    size: int,
    disorder: int,
    seed: int,
    partitions: int,
    transport: str,
    placement: Optional[Placement],
) -> dict:
    """One measured run of a continuous left-outer join on one transport."""
    catalog, left, right = build_catalog(size, disorder, seed)
    query = StreamQuery(
        catalog,
        "left_outer",
        "r",
        "s",
        ON,
        config=ExecutionOptions(
            partitions=partitions,
            transport=transport,
            placement=placement if transport == "sockets" else None,
        ),
    )
    result = query.run(merge_seed=seed)
    # Convergence gate: the settled output must equal the batch re-run
    # tuple for tuple before any throughput number is reported.
    theta = EquiJoinCondition(left.schema, right.schema, ON)
    batch = tp_left_outer_join(left, right, theta, compute_probabilities=False)
    if identity_rows(result.relation) != identity_rows(batch):
        raise AssertionError(
            f"{transport} output diverged from the batch re-run at "
            f"size={size} disorder={disorder}"
        )
    return {
        "requested": transport,
        "backend": result.workers,  # the transport that actually ran
        "seconds": round(result.elapsed_seconds, 6),
        "events": result.events_processed,
        "outputs": result.outputs_emitted,
        "events_per_second": round(result.events_per_second, 1),
        "p50_emit_ms": round(result.latency_summary()["p50_ms"], 3),
        "backpressure_blocks": result.backpressure_blocks,
    }


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def launch_entrypoint_workers(count: int):
    """Start ``count`` external worker servers via the CLI entry point."""
    ports = [free_port() for _ in range(count)]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    workers = []
    for port in ports:
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker",
                "--listen",
                f"127.0.0.1:{port}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        banner = worker.stdout.readline()
        if "listening on" not in banner:
            raise RuntimeError(f"worker on port {port} failed to start: {banner!r}")
        workers.append(worker)
    return workers, Placement(tuple(f"127.0.0.1:{port}" for port in ports))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated relation sizes (default 1500)"
    )
    parser.add_argument(
        "--disorder", default="4,16", help="comma-separated disorder settings (default 4,16)"
    )
    parser.add_argument(
        "--partitions", type=int, default=2, help="shard workers per transport"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--entrypoint-workers",
        type=int,
        default=0,
        metavar="N",
        help="serve the socket runs from N external `python -m "
        "repro.runtime.worker --listen` processes via a placement map "
        "(must equal --partitions) instead of driver-spawned workers",
    )
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI smoke runs")
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        sizes = [400]
    elif arguments.sizes:
        sizes = [int(part) for part in arguments.sizes.split(",") if part.strip()]
    else:
        sizes = [1500]
    disorders = [int(part) for part in arguments.disorder.split(",") if part.strip()]
    if len(disorders) < 2:
        parser.error("need at least two disorder settings to compare")
    if arguments.partitions < 2:
        parser.error("transport comparison needs --partitions >= 2")
    if arguments.entrypoint_workers and arguments.entrypoint_workers != arguments.partitions:
        parser.error("--entrypoint-workers must equal --partitions")

    workers: List = []
    placement = None
    if arguments.entrypoint_workers:
        workers, placement = launch_entrypoint_workers(arguments.entrypoint_workers)
        print(f"external workers: {placement.describe()}")

    cpus = available_cpus()
    print(
        f"cpu_count={cpus}  partitions={arguments.partitions}  sizes={sizes}  "
        f"disorder={disorders}  placement={'external' if placement else 'local-spawn'}"
    )
    records: List[dict] = []
    metrics: dict = {}
    effective_backends = set()
    try:
        for size in sizes:
            for disorder in disorders:
                record = {"size": size, "disorder": disorder}
                for transport in ("processes", "sockets"):
                    record[transport] = run_transport(
                        size,
                        disorder,
                        arguments.seed,
                        arguments.partitions,
                        transport,
                        placement,
                    )
                    effective_backends.add(record[transport]["backend"])
                record["socket_vs_process_ratio"] = round(
                    record["sockets"]["events_per_second"]
                    / record["processes"]["events_per_second"],
                    3,
                )
                records.append(record)
                print(
                    f"size={size:>6}  disorder={disorder:>3}  "
                    f"process={record['processes']['events_per_second']:>9.0f} ev/s "
                    f"(p50 {record['processes']['p50_emit_ms']:.1f} ms)  "
                    f"socket={record['sockets']['events_per_second']:>9.0f} ev/s "
                    f"(p50 {record['sockets']['p50_emit_ms']:.1f} ms)  "
                    f"ratio {record['socket_vs_process_ratio']:.2f}x"
                )
                prefix = f"s{size}_d{disorder}"
                metrics[f"{prefix}_outputs"] = record["sockets"]["outputs"]
                metrics[f"{prefix}_events"] = record["sockets"]["events"]
                metrics[f"{prefix}_socket_events_per_second"] = record["sockets"][
                    "events_per_second"
                ]
                metrics[f"{prefix}_process_events_per_second"] = record["processes"][
                    "events_per_second"
                ]
                # Informational (no gating suffix): the socket/process factor
                # and the p50 latencies are spawn-noise-dominated at smoke
                # sizes, so they are recorded but never fail the perf gate —
                # outputs/events gate exactly, throughput within the wall band.
                metrics[f"{prefix}_socket_vs_process"] = record[
                    "socket_vs_process_ratio"
                ]
                metrics[f"{prefix}_socket_p50_emit"] = record["sockets"]["p50_emit_ms"]
                metrics[f"{prefix}_process_p50_emit"] = record["processes"][
                    "p50_emit_ms"
                ]
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=10)
    print("all runs settled tuple-for-tuple equal to the batch re-run")

    # A fallback would record backend != requested transport; fail loudly —
    # a "socket" measurement that silently ran on threads is worthless.
    skipped_reason = None
    if effective_backends - {"processes", "sockets"}:
        print(f"FAIL: fallback backends ran: {sorted(effective_backends)}")
        return 1

    if arguments.json_dir:
        payload = bench_payload_base(
            "socket_transport",
            "Socket transport vs process queues: throughput and emit latency",
            seed=arguments.seed,
            skipped_reason=skipped_reason,
            metrics=metrics,
            partitions=arguments.partitions,
            placement=placement.describe() if placement else "local-spawn",
            effective_backends=sorted(effective_backends),
            measurements=records,
        )
        path = write_bench_file("socket_transport", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
