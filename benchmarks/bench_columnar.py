"""Columnar vs object hot path: throughput, parity, and wire-format cost.

The columnar layout (``ExecutionOptions(layout="columnar")``) re-lays the
window-maintainer state as per-key struct-of-arrays numpy columns and, on
the sockets transport, ships micro-batches as fixed-layout binary frames
instead of pickles.  This benchmark answers the three questions that
decide whether it earns its keep:

* **throughput** — the same continuous TP left outer join (the
  ``bench_stream_throughput`` workload, scaled up to the large
  bounded-lateness state the columnar sweeps are built for) under both
  layouts; the headline ``columnar_speedup`` is the events/s ratio.
* **parity** — no number is reported unless the two layouts' settled
  outputs are tuple-for-tuple identical (lineage-canonical, and with
  *bitwise-equal* probabilities in the materialized parity run), and the
  object run equals the batch re-run ground truth.
* **wire cost** — bytes/event and encode+decode µs/event of the binary
  micro-batch frames (:mod:`repro.runtime.wire`) against pickling the
  same batches, measured on synthetic batches shaped like real traffic.

Speedup is state-size dependent: the columnar layout wins when watermark
lag keeps many windows open per key (the default sizes here), and loses
a little at small windows where per-event numpy overhead dominates — see
the "Columnar hot path" section of the README.  Without numpy installed
the columnar run degrades to the object layout; this benchmark then skips
the speedup gate (``skipped_reason``) instead of reporting a fake 1.0x.

Run with::

    python benchmarks/bench_columnar.py              # default (large) sizes
    python benchmarks/bench_columnar.py --smoke      # CI-sized
"""

from __future__ import annotations

import argparse
import pickle
import sys
import time
import warnings
from typing import List, Sequence

from conftest import bench_payload_base

from repro.columnar import HAS_NUMPY
from repro.core import tp_left_outer_join
from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import canonical
from repro.options import ExecutionOptions
from repro.relation import EquiJoinCondition, TPRelation
from repro.runtime import wire
from repro.stream import StreamQuery

#: Wire microbench batch shape: the sockets transport default micro-batch.
WIRE_BATCH_SIZE = 64
WIRE_BATCHES = 200


def exact_rows(relation: TPRelation) -> List[str]:
    """Settled output as a repr-sorted multiset, probabilities unrounded.

    ``repr`` (not tuple ordering) because outer-join facts mix ``None``
    with strings; bitwise probability equality rides the float repr.
    """
    return sorted(
        repr((t.fact, t.start, t.end, str(canonical(t.lineage)), t.probability))
        for t in relation
    )


def run_layout(
    size: int,
    disorder: int,
    watermark_every: int,
    layout: str,
    seed: int,
    materialize: bool = False,
):
    """One measured continuous-join run under one layout."""
    positive, negative = meteo_pair(size, seed=seed)
    catalog = Catalog()
    catalog.register_stream(
        "r",
        stream_def(
            positive,
            ReplayConfig(disorder=disorder, watermark_every=watermark_every, seed=seed),
        ),
    )
    catalog.register_stream(
        "s",
        stream_def(
            negative,
            ReplayConfig(
                disorder=disorder, watermark_every=watermark_every, seed=seed + 1
            ),
        ),
    )
    query = StreamQuery(
        catalog,
        "left_outer",
        "r",
        "s",
        [("Metric", "Metric")],
        config=ExecutionOptions(
            layout=layout, materialize_probabilities=materialize
        ),
    )
    result = query.run(merge_seed=seed)
    record = {
        "layout": layout,
        "size": size,
        "disorder": disorder,
        "watermark_every": watermark_every,
        "events": result.events_processed,
        "outputs": result.outputs_emitted,
        "stream_seconds": round(result.elapsed_seconds, 6),
        "events_per_second": round(result.events_per_second, 1),
    }
    return record, result.relation


def batch_ground_truth(size: int, seed: int) -> set:
    """Lineage-canonical rows of the batch re-run (the referee's referee)."""
    positive, negative = meteo_pair(size, seed=seed)
    theta = EquiJoinCondition(positive.schema, negative.schema, (("Metric", "Metric"),))
    batch = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
    return {(t.fact, t.start, t.end, str(canonical(t.lineage))) for t in batch}


def synthetic_batch(offset: int) -> list:
    """One micro-batch shaped like real socket traffic: (channel, code)
    pairs of element events with a sprinkling of watermarks."""
    entries = []
    for i in range(WIRE_BATCH_SIZE):
        n = offset * WIRE_BATCH_SIZE + i
        if i % 21 == 20:
            entries.append((("node", 0, n % 4), ("w", n % 2, n)))
            continue
        code = (
            (f"metric-{n % 40}", float(n % 97)),
            ("v", f"e{n}"),
            n % 4096,
            n % 4096 + 1 + n % 7,
            0.5 + (n % 32) / 64.0,
        )
        entries.append(
            (("node", 0, n % 4), ("e", n % 2, n, code, n * 1e-3))
        )
    return entries


def wire_microbench() -> dict:
    """Bytes/event and encode+decode µs/event, wire frames vs pickle."""
    batches = [synthetic_batch(i) for i in range(WIRE_BATCHES)]
    events = WIRE_BATCH_SIZE * WIRE_BATCHES

    started = time.perf_counter()
    frames = [wire.encode_batch_frame("job", batch) for batch in batches]
    encode_seconds = time.perf_counter() - started
    started = time.perf_counter()
    decoded = [wire.decode_batch_frame(frame) for frame in frames]
    decode_seconds = time.perf_counter() - started
    for (key, entries), batch in zip(decoded, batches):
        assert key == "job" and entries == batch, "wire round-trip diverged"

    started = time.perf_counter()
    pickles = [pickle.dumps(("batch", "job", batch)) for batch in batches]
    pickle_encode_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for data in pickles:
        pickle.loads(data)
    pickle_decode_seconds = time.perf_counter() - started

    wire_bytes = sum(len(frame) for frame in frames)
    pickle_bytes = sum(len(data) for data in pickles)
    return {
        "events": events,
        "wire_bytes_per_event": round(wire_bytes / events, 2),
        "pickle_bytes_per_event": round(pickle_bytes / events, 2),
        "pickle_vs_wire_bytes_ratio": round(pickle_bytes / wire_bytes, 4),
        "wire_encode_us": round(encode_seconds / events * 1e6, 3),
        "wire_decode_us": round(decode_seconds / events * 1e6, 3),
        "pickle_encode_us": round(pickle_encode_seconds / events * 1e6, 3),
        "pickle_decode_us": round(pickle_decode_seconds / events * 1e6, 3),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--size", type=int, default=24000)
    parser.add_argument("--disorder", type=int, default=16384)
    parser.add_argument("--watermark-every", type=int, default=512)
    parser.add_argument(
        "--parity-size",
        type=int,
        default=1200,
        help="size of the materialized (bitwise-probability) parity run",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (small state)"
    )
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    size, disorder, watermark_every = (
        (4000, 2048, 256)
        if arguments.smoke
        else (arguments.size, arguments.disorder, arguments.watermark_every)
    )
    parity_size = min(arguments.parity_size, size)
    seed = arguments.seed

    records: List[dict] = []
    metrics: dict = {}
    skipped_reason = None

    object_record, object_relation = run_layout(
        size, disorder, watermark_every, "object", seed
    )
    records.append(object_record)
    print(report_line(object_record))

    if HAS_NUMPY:
        columnar_record, columnar_relation = run_layout(
            size, disorder, watermark_every, "columnar", seed
        )
        records.append(columnar_record)
        print(report_line(columnar_record))
        if exact_rows(columnar_relation) != exact_rows(object_relation):
            raise AssertionError(
                "columnar settled output diverged from the object layout"
            )
        speedup = (
            columnar_record["events_per_second"] / object_record["events_per_second"]
        )
        metrics["columnar_speedup"] = round(speedup, 4)
        metrics["columnar_events_per_second"] = columnar_record["events_per_second"]
        print(f"columnar speedup {speedup:.2f}x  (settled outputs identical)")

        # Materialized parity: probabilities computed inline under both
        # layouts must be *bitwise* equal, and the object run must equal
        # the batch re-run ground truth.
        parity, relations = {}, {}
        for layout in ("object", "columnar"):
            record, relation = run_layout(
                parity_size, 256, 64, layout, seed, materialize=True
            )
            parity[layout] = exact_rows(relation)
            relations[layout] = relation
            parity_outputs = record["outputs"]
        if parity["columnar"] != parity["object"]:
            raise AssertionError(
                "materialized probabilities diverged between layouts"
            )
        settled = {
            (t.fact, t.start, t.end, str(canonical(t.lineage)))
            for t in relations["object"]
        }
        if settled != batch_ground_truth(parity_size, seed):
            raise AssertionError("stream output diverged from the batch re-run")
        metrics["parity_outputs"] = parity_outputs
        print(
            f"parity run (size={parity_size}): bitwise-identical probabilities, "
            "batch ground truth matched"
        )
    else:
        skipped_reason = "numpy not installed: columnar degrades to object layout"
        print(f"SKIP columnar speedup gate: {skipped_reason}")

    wire_record = wire_microbench()
    records.append({"wire": wire_record})
    metrics.update(
        {name: value for name, value in wire_record.items() if name != "events"}
    )
    print(
        f"wire: {wire_record['wire_bytes_per_event']:.0f} B/event "
        f"(pickle {wire_record['pickle_bytes_per_event']:.0f}), "
        f"encode {wire_record['wire_encode_us']:.1f}us "
        f"decode {wire_record['wire_decode_us']:.1f}us per event"
    )

    metrics[f"s{size}_events"] = object_record["events"]
    metrics[f"s{size}_outputs"] = object_record["outputs"]
    metrics["object_events_per_second"] = object_record["events_per_second"]

    if arguments.json_dir:
        payload = bench_payload_base(
            "columnar",
            "Columnar hot path: layout speedup, parity gates, wire-format cost",
            seed=seed,
            metrics=metrics,
            measurements=records,
        )
        payload["skipped_reason"] = skipped_reason
        path = write_bench_file("columnar", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


def report_line(record: dict) -> str:
    return (
        f"layout={record['layout']:>8}  size={record['size']:>6}  "
        f"disorder={record['disorder']:>5}  wm={record['watermark_every']:>4}  "
        f"{record['events_per_second']:>10.0f} ev/s  "
        f"stream={record['stream_seconds'] * 1000:.1f}ms"
    )


if __name__ == "__main__":
    with warnings.catch_warnings():
        # A numpy-less run *intentionally* degrades; the skip is reported
        # through skipped_reason rather than a warning on stderr.
        warnings.simplefilter("ignore", RuntimeWarning)
        sys.exit(main())
