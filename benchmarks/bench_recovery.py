"""Shard-failure recovery: recovery cost vs checkpoint interval.

A socket seat is SIGKILLed late in a continuous left-outer join run (via
the reusable chaos harness, ``repro.recovery.chaos``) and the driver
re-executes the shard on a fresh seat.  The benchmark measures what that
recovery costs under different checkpointing policies:

* ``from-zero`` — ``checkpoint_interval=None``: no snapshots, the
  replacement seat replays the shard's whole history;
* ``ckpt`` — ``checkpoint_interval=0.0``: a state snapshot ships at every
  micro-batch boundary, so the replacement restores the latest checkpoint
  and replays only the post-checkpoint suffix.

Every chaos run must settle tuple-for-tuple identical to the unfailed run
before any number is reported (the recovery correctness contract), and the
payload asserts that checkpointed recovery replayed *strictly fewer*
elements than replay-from-zero.  A failure-free run through the recovering
driver is also measured against the plain router — the hot-path overhead
of buffering for replay (``hotpath_throughput_ratio``).

Results go to ``bench_results/BENCH_recovery.json``.  Run with::

    python benchmarks/bench_recovery.py              # default size
    python benchmarks/bench_recovery.py --smoke      # CI-sized
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from conftest import bench_payload_base

from repro import ExecutionOptions
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.datasets.meteo import meteo_config
from repro.engine import Catalog
from repro.harness.reporting import write_bench_file
from repro.lineage import EventSpace, canonical
from repro.recovery.chaos import ChaosInjector
from repro.runtime import available_cpus
from repro.stream import StreamQuery

ON = (("Metric", "Metric"),)


def build_catalog(size: int, disorder: int, seed: int) -> Catalog:
    """One Meteo-like stream pair over a shared event space."""
    events = EventSpace()
    catalog = Catalog()
    for offset, name in enumerate(("r", "s")):
        relation = generate_relation(
            meteo_config(size, seed=seed + offset), events, name=name
        )
        catalog.register_stream(
            name,
            stream_def(relation, ReplayConfig(disorder=disorder, seed=seed + offset)),
        )
    return catalog


def settled_rows(relation) -> List[str]:
    """Bitwise referee: fact, canonical lineage, interval, probability."""
    return sorted(
        repr((t.fact, str(canonical(t.lineage)), t.start, t.end, t.probability))
        for t in relation
    )


def run_once(
    size: int,
    disorder: int,
    seed: int,
    partitions: int,
    *,
    restart_limit: int,
    checkpoint_interval: Optional[float],
    kill_after: Optional[int],
) -> tuple[dict, List[str]]:
    """One measured socket run, optionally killing a seat mid-stream."""
    catalog = build_catalog(size, disorder, seed)
    options = ExecutionOptions(
        transport="sockets",
        partitions=partitions,
        micro_batch_size=16,
        restart_limit=restart_limit,
        checkpoint_interval=checkpoint_interval,
    )
    # With checkpointing on, hold the kill until a checkpoint frame has
    # actually reached the driver: this measures suffix replay, not the
    # (also correct) from-zero fallback a too-early kill would trigger.
    chaos = (
        ChaosInjector(
            [(kill_after, 1)],
            wait_for_checkpoint=checkpoint_interval is not None,
        )
        if kill_after
        else None
    )
    query = StreamQuery(catalog, "left_outer", "r", "s", ON, config=options)
    result = query.run(merge_seed=seed, chaos=chaos)
    if result.workers != "sockets":
        raise AssertionError(
            f"socket run fell back to {result.workers!r}; recovery numbers "
            "would be meaningless"
        )
    events = result.recoveries()
    if chaos is not None and len(events) != 1:
        raise AssertionError(
            f"expected exactly one recovery, saw {len(events)} "
            f"(kills signalled: {chaos.kills_signalled})"
        )
    record = {
        "checkpoint_interval": checkpoint_interval,
        "seconds": round(result.elapsed_seconds, 6),
        "events": result.events_processed,
        "outputs": result.outputs_emitted,
        "events_per_second": round(result.events_per_second, 1),
        "recoveries": [
            {
                "seat": event.seat,
                "cause": event.cause,
                "checkpoint_elements": event.checkpoint_elements,
                "elements_replayed": event.elements_replayed,
                "recovery_seconds": round(event.recovery_seconds, 6),
            }
            for event in events
        ],
    }
    return record, settled_rows(result.relation)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--size", type=int, default=None, help="tuples per relation")
    parser.add_argument("--disorder", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true", help="tiny size for CI smoke runs")
    parser.add_argument("--json-dir", default="bench_results")
    arguments = parser.parse_args(argv)

    size = arguments.size or (150 if arguments.smoke else 600)
    events_total = 2 * size
    # Kill late: the difference between replaying everything and replaying a
    # checkpointed suffix is largest near the end of the stream.
    kill_after = int(events_total * 0.8)
    print(
        f"cpu_count={available_cpus()}  size={size}  disorder={arguments.disorder}  "
        f"partitions={arguments.partitions}  kill_after={kill_after}"
    )

    # The referee: an unfailed run on the plain (non-recovering) router.
    plain, baseline_rows = run_once(
        size, arguments.disorder, arguments.seed, arguments.partitions,
        restart_limit=0, checkpoint_interval=None, kill_after=None,
    )
    print(
        f"plain router       {plain['events_per_second']:>9.0f} ev/s  "
        f"({plain['outputs']} outputs)"
    )

    # Hot path through the recovering driver, no failures injected.
    hot, hot_rows = run_once(
        size, arguments.disorder, arguments.seed, arguments.partitions,
        restart_limit=2, checkpoint_interval=None, kill_after=None,
    )
    if hot_rows != baseline_rows:
        print("FAIL: recovering driver changed the settled output on the hot path")
        return 1
    hotpath_ratio = round(
        hot["events_per_second"] / plain["events_per_second"], 3
    )
    print(
        f"recovering router  {hot['events_per_second']:>9.0f} ev/s  "
        f"(hot-path ratio {hotpath_ratio:.2f}x)"
    )

    # One late SIGKILL under each checkpointing policy.
    runs = {}
    for label, interval in (("fromzero", None), ("ckpt", 0.0)):
        record, rows = run_once(
            size, arguments.disorder, arguments.seed, arguments.partitions,
            restart_limit=2, checkpoint_interval=interval, kill_after=kill_after,
        )
        if rows != baseline_rows:
            print(f"FAIL: {label} recovery diverged from the unfailed run")
            return 1
        runs[label] = record
        (recovery,) = record["recoveries"]
        print(
            f"{label:<9} kill@{kill_after}: restored "
            f"checkpoint@{recovery['checkpoint_elements']}, replayed "
            f"{recovery['elements_replayed']} element(s) in "
            f"{recovery['recovery_seconds']:.3f}s"
        )

    fromzero = runs["fromzero"]["recoveries"][0]
    ckpt = runs["ckpt"]["recoveries"][0]
    # The point of checkpointing: strictly fewer elements cross the wire
    # again.  Asserted here and recorded in the payload.
    checkpoint_replays_fewer = (
        ckpt["elements_replayed"] < fromzero["elements_replayed"]
    )
    if not checkpoint_replays_fewer:
        print(
            f"FAIL: checkpointed recovery replayed {ckpt['elements_replayed']} "
            f"element(s), from-zero replayed {fromzero['elements_replayed']}"
        )
        return 1
    if ckpt["checkpoint_elements"] <= 0:
        print("FAIL: checkpointed recovery restored an empty checkpoint")
        return 1
    print("all chaos runs settled bitwise identical to the unfailed run")

    metrics = {
        # Deterministic given the seed: gated exactly.
        "settled_outputs": plain["outputs"],
        "ingested_events": plain["events"],
        # Relative figure, machine-shape independent: gated with the ratio band.
        "hotpath_throughput_ratio": hotpath_ratio,
        # Recovery figures depend on *when* the kill lands relative to
        # micro-batch flushes, so they are informational (no gating suffix).
        "fromzero_replayed": fromzero["elements_replayed"],
        "ckpt_replayed": ckpt["elements_replayed"],
        "ckpt_checkpoint_elements": ckpt["checkpoint_elements"],
        "fromzero_recovery_secs": fromzero["recovery_seconds"],
        "ckpt_recovery_secs": ckpt["recovery_seconds"],
    }
    if arguments.json_dir:
        payload = bench_payload_base(
            "recovery",
            "Shard-failure recovery: recovery cost vs checkpoint interval",
            seed=arguments.seed,
            metrics=metrics,
            partitions=arguments.partitions,
            size=size,
            kill_after=kill_after,
            checkpoint_replays_fewer=checkpoint_replays_fewer,
            measurements={"plain": plain, "hotpath": hot, **runs},
        )
        path = write_bench_file("recovery", payload, arguments.json_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
