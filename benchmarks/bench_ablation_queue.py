"""Ablation A1 — LAWAN's priority queue vs re-scanning the active matches.

LAWAN maintains the lineages of the currently valid negative tuples in a
priority queue keyed on end point; the straightforward alternative recomputes
the active set for every elementary segment.  Both produce identical negating
windows; the queue-based sweep does asymptotically less work per segment when
many matches are concurrently valid (the Meteo-like situation).
"""

from __future__ import annotations

import pytest

from repro.core import lawan_rescan, overlap_join
from repro.core.lawan import negating_windows
from repro.lineage import canonical


@pytest.fixture(scope="module")
def dense_groups(meteo_window_workload):
    positive, negative, theta = meteo_window_workload
    return overlap_join(positive, negative, theta)


@pytest.mark.benchmark(group="ablation-lawan-queue")
def test_ablation_priority_queue_sweep(benchmark, dense_groups):
    windows = benchmark(negating_windows, dense_groups)
    assert windows


@pytest.mark.benchmark(group="ablation-lawan-queue")
def test_ablation_rescan_sweep(benchmark, dense_groups):
    windows = benchmark(lawan_rescan, dense_groups)
    assert windows


def test_ablation_variants_produce_identical_windows(dense_groups):
    queue_based = {
        (w.fact_r, w.interval, str(canonical(w.lineage_s)))
        for w in negating_windows(dense_groups)
    }
    rescanned = {
        (w.fact_r, w.interval, str(canonical(w.lineage_s)))
        for w in lawan_rescan(dense_groups)
    }
    assert queue_based == rescanned
