"""Figure 7 — full TP left outer join, NJ vs TA.

The paper's Fig. 7 measures the complete TP left outer join.  TA's plan has
to union three sub-results, remove the twice-computed unmatched windows and
re-check θ, and its conventional join degenerates to a nested loop; the paper
reports NJ ahead by up to two orders of magnitude on WebKit and by 4–10× on
the less selective Meteo data.

These benchmarks time ``tp_left_outer_join`` (NJ) against
``ta_left_outer_join`` with the nested-loop plan, both without probability
materialisation (as in the paper, which measures the join computation).
"""

from __future__ import annotations

import pytest

from repro.baselines import ta_left_outer_join
from repro.core import tp_left_outer_join


def _nj(positive, negative, theta):
    return tp_left_outer_join(positive, negative, theta, compute_probabilities=False)


def _ta(positive, negative, theta):
    return ta_left_outer_join(
        positive, negative, theta, compute_probabilities=False, nested_loop=True
    )


@pytest.mark.benchmark(group="fig7a-webkit-left-outer")
def test_fig7a_nj_webkit(benchmark, webkit_join_workload):
    positive, negative, theta = webkit_join_workload
    result = benchmark(_nj, positive, negative, theta)
    assert len(result) > 0


@pytest.mark.benchmark(group="fig7a-webkit-left-outer")
def test_fig7a_ta_webkit(benchmark, webkit_join_workload):
    positive, negative, theta = webkit_join_workload
    result = benchmark(_ta, positive, negative, theta)
    assert len(result) > 0


@pytest.mark.benchmark(group="fig7b-meteo-left-outer")
def test_fig7b_nj_meteo(benchmark, meteo_join_workload):
    positive, negative, theta = meteo_join_workload
    result = benchmark(_nj, positive, negative, theta)
    assert len(result) > 0


@pytest.mark.benchmark(group="fig7b-meteo-left-outer")
def test_fig7b_ta_meteo(benchmark, meteo_join_workload):
    positive, negative, theta = meteo_join_workload
    result = benchmark(_ta, positive, negative, theta)
    assert len(result) > 0


def test_fig7_nj_and_ta_agree_on_the_result(webkit_join_workload):
    """Sanity check: both implementations compute the same join result."""
    positive, negative, theta = webkit_join_workload
    nj = _nj(positive, negative, theta)
    ta = _ta(positive, negative, theta)
    assert len(nj) == len(ta)
