"""Perf-regression gate: compare BENCH_*.json results against baselines.

Every benchmark writes a ``metrics`` mapping (the unified payload schema,
see ``benchmarks/conftest.py``).  This script compares freshly emitted
results in ``--results-dir`` against the committed baselines in
``--baselines-dir`` and exits non-zero when a metric regressed beyond its
tolerance band — the CI ``perf-regression`` job runs it on every PR.

Metric names choose the comparison policy:

* ``*_outputs`` / ``*_events`` / ``*_count`` — **exact**: these are
  deterministic given the recorded seed, so any drift means the computation
  changed, not the machine.
* ``*_speedup`` / ``*_rate`` / ``*_ratio`` — **ratio band**
  (``--tolerance``, default 0.5): machine-shape-independent relative
  figures; speedups and ratios must not drop, rates must not rise, by more
  than the band.
* ``*_seconds`` / ``*_ms`` / ``*_per_second`` — **wall-clock band**
  (``--time-tolerance``, default 1.0, i.e. a 2× budget): wall-clock figures
  vary across machines, so the band is wide by design — it catches
  order-of-magnitude regressions, while the exact and ratio classes do the
  precise gating.
* anything else — informational only (reported, never failing).

Regenerate the baselines after an intentional perf change with::

    python benchmarks/check_perf_baselines.py --update-baselines

which copies the current results over the committed baselines (the escape
hatch: review the diff like any other code change).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import List, Sequence

#: Near-zero guard: a baseline of exactly 0 compares absolutely against this.
EPSILON = 1e-9

EXACT_SUFFIXES = ("_outputs", "_events", "_count")
RATIO_SUFFIXES = ("_speedup", "_rate", "_ratio")
LOWER_BETTER_WALL = ("_seconds", "_ms")
HIGHER_BETTER_WALL = ("_per_second",)


def classify(name: str) -> str:
    """Comparison policy of one metric, chosen by its name suffix."""
    if name.endswith(EXACT_SUFFIXES):
        return "exact"
    if name.endswith(RATIO_SUFFIXES):
        return "ratio"
    if name.endswith(LOWER_BETTER_WALL):
        return "wall_lower"
    if name.endswith(HIGHER_BETTER_WALL):
        return "wall_higher"
    return "info"


def higher_is_better(name: str) -> bool:
    return name.endswith(("_speedup", "_ratio", "_per_second"))


def compare_metric(
    name: str, baseline: float, current: float, tolerance: float, time_tolerance: float
) -> str | None:
    """Return a failure description, or ``None`` when the metric passes."""
    policy = classify(name)
    if policy == "info":
        return None
    if policy == "exact":
        if current != baseline:
            return f"{name}: expected exactly {baseline}, got {current}"
        return None
    band = tolerance if policy == "ratio" else time_tolerance
    if higher_is_better(name):
        # Multiplicative band in both directions: tolerance 1.0 means "may
        # halve", mirroring the "may double" budget of lower-is-better.
        floor = baseline / (1.0 + band) if baseline > 0 else 0.0
        if current < floor - EPSILON:
            return (
                f"{name}: {current} fell below {floor:.6g} "
                f"(baseline {baseline}, tolerance {band:.0%})"
            )
    else:
        if baseline <= EPSILON:
            if current > EPSILON:
                return f"{name}: baseline was 0, got {current}"
            return None
        ceiling = baseline * (1.0 + band)
        if current > ceiling + EPSILON:
            return (
                f"{name}: {current} exceeded {ceiling:.6g} "
                f"(baseline {baseline}, tolerance {band:.0%})"
            )
    return None


def load_metrics(path: Path) -> dict:
    payload = json.loads(path.read_text())
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    return metrics


def check_file(
    result: Path, baseline: Path, tolerance: float, time_tolerance: float
) -> tuple[List[str], List[str]]:
    """Compare one result file against its baseline.

    Returns ``(failures, notes)`` — notes cover informational and missing
    metrics, which never fail the gate on their own.
    """
    failures: List[str] = []
    notes: List[str] = []
    current_metrics = load_metrics(result)
    baseline_metrics = load_metrics(baseline)
    if not current_metrics:
        notes.append(f"{result.name}: no metrics mapping (pre-schema payload?)")
        return failures, notes
    for name in sorted(current_metrics):
        if name not in baseline_metrics:
            notes.append(f"{result.name}: new metric {name} (no baseline yet)")
            continue
        failure = compare_metric(
            name,
            baseline_metrics[name],
            current_metrics[name],
            tolerance,
            time_tolerance,
        )
        if failure:
            failures.append(f"{result.name}: {failure}")
    for name in sorted(set(baseline_metrics) - set(current_metrics)):
        notes.append(f"{result.name}: baseline metric {name} no longer emitted")
    return failures, notes


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--results-dir", default="bench_results")
    parser.add_argument("--baselines-dir", default="bench_results/baselines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="relative band for ratio-class metrics (speedups, rates)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=1.0,
        help="relative band for wall-clock metrics (seconds, ms, events/s); "
        "wide by design, machines differ",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy the current results over the baselines instead of comparing "
        "(the escape hatch for intentional perf changes)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment names to restrict the check to",
    )
    arguments = parser.parse_args(argv)

    results_dir = Path(arguments.results_dir)
    baselines_dir = Path(arguments.baselines_dir)
    wanted = (
        {name.strip() for name in arguments.only.split(",") if name.strip()}
        if arguments.only
        else None
    )
    result_files = sorted(
        path
        for path in results_dir.glob("BENCH_*.json")
        if wanted is None or path.stem.removeprefix("BENCH_") in wanted
    )
    if not result_files:
        print(f"no BENCH_*.json files under {results_dir}", file=sys.stderr)
        return 2

    if arguments.update_baselines:
        baselines_dir.mkdir(parents=True, exist_ok=True)
        for path in result_files:
            shutil.copyfile(path, baselines_dir / path.name)
            print(f"baseline updated: {baselines_dir / path.name}")
        return 0

    failures: List[str] = []
    notes: List[str] = []
    checked = 0
    for path in result_files:
        baseline = baselines_dir / path.name
        if not baseline.exists():
            notes.append(
                f"{path.name}: no committed baseline (run --update-baselines)"
            )
            continue
        file_failures, file_notes = check_file(
            path, baseline, arguments.tolerance, arguments.time_tolerance
        )
        failures.extend(file_failures)
        notes.extend(file_notes)
        checked += 1
    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\n{len(failures)} perf regression(s) against {baselines_dir}:")
        for failure in failures:
            print(f"FAIL: {failure}")
        print(
            "\nIf the change is intentional, refresh the baselines with\n"
            "  python benchmarks/check_perf_baselines.py --update-baselines\n"
            "and commit the diff."
        )
        return 1
    print(f"perf gate passed: {checked} result file(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
