"""Live Meteo monitoring: the continuous variant of ``meteo_monitoring.py``.

The batch example asks, after the fact, at which times a metric was predicted
stable at the reference site while no other station corroborated it.  This
variant answers the same question *while the readings stream in*: events
arrive out of event-time order (bounded disorder, as from a batchy
collector), each source advances a watermark, and the continuous left outer
join emits every finalized answer tuple exactly once — no retraction, no
re-run — as soon as the watermarks pass it.

The example registers both streams and the continuous query against the
engine catalog, runs the query hash-partitioned across worker threads, shows
the continuous EXPLAIN plan, and cross-checks the finalized output against
the batch join over the same data.

Run with::

    python examples/meteo_monitoring_live.py [size]
"""

from __future__ import annotations

import sys

from repro.core import tp_left_outer_join
from repro.datasets import ReplayConfig, meteo_pair, stream_def
from repro.engine import Engine
from repro.lineage import canonical
from repro.options import ExecutionOptions
from repro.relation import EquiJoinCondition


def main(size: int = 600) -> None:
    reference, stations = meteo_pair(size, seed=3)

    engine = Engine()
    engine.register_stream(
        "reference", stream_def(reference, ReplayConfig(disorder=6, seed=1))
    )
    engine.register_stream(
        "stations", stream_def(stations, ReplayConfig(disorder=6, seed=2))
    )

    sql = (
        "SELECT * FROM STREAM reference TP LEFT OUTER JOIN STREAM stations "
        "ON reference.Metric = stations.Metric"
    )
    print(engine.explain_sql(sql))
    print()

    # Register the continuous query and run it across four worker threads.
    query = engine.continuous_query(
        "uncorroborated_stability",
        "left_outer",
        "reference",
        "stations",
        [("Metric", "Metric")],
        config=ExecutionOptions(partitions=4, micro_batch_size=32),
    )
    result = query.run(merge_seed=7)
    latency = result.latency_summary()
    print(
        f"{result.events_processed} events -> {result.outputs_emitted} finalized tuples "
        f"on {result.partitions} partitions"
    )
    print(
        f"throughput {result.events_per_second:,.0f} events/s, emit latency "
        f"p50 {latency['p50_ms']:.2f} ms / p95 {latency['p95_ms']:.2f} ms, "
        f"late events dropped: {result.late_dropped}"
    )

    uncorroborated = result.relation.filter(lambda t: t.fact[2] is None)
    print(
        f"\nuncorroborated stable periods: {len(uncorroborated)} "
        f"of {len(result.relation)} finalized tuples"
    )

    # The continuous run must agree exactly with the batch join over the
    # same data (the streaming subsystem's core guarantee).
    theta = EquiJoinCondition(reference.schema, stations.schema, (("Metric", "Metric"),))
    batch = tp_left_outer_join(reference, stations, theta, compute_probabilities=False)
    stream_rows = {
        (t.fact, t.start, t.end, str(canonical(t.lineage))) for t in result.relation
    }
    batch_rows = {(t.fact, t.start, t.end, str(canonical(t.lineage))) for t in batch}
    assert stream_rows == batch_rows, "continuous output must equal the batch join"
    print("continuous output verified against the batch join ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
