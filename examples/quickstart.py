"""Quickstart: build two TP relations and run every TP join with negation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Schema,
    TPRelation,
    equi_join_on,
    tp_anti_join,
    tp_full_outer_join,
    tp_left_outer_join,
    tp_right_outer_join,
)


def main() -> None:
    # A tiny sensor scenario: predictions that a machine is in use, and
    # predictions that a technician is on site, both uncertain and temporal.
    machines = TPRelation.from_rows(
        Schema.of("Machine", "Hall"),
        [
            ("press-1", "H1", "m1", 0, 12, 0.9),
            ("press-2", "H2", "m2", 3, 9, 0.6),
            ("lathe-1", "H1", "m3", 14, 20, 0.8),
        ],
        name="machines",
    )
    technicians = TPRelation.from_rows(
        Schema.of("Tech", "Hall"),
        [
            ("alice", "H1", "t1", 4, 10, 0.7),
            ("bob", "H1", "t2", 8, 16, 0.5),
            ("carol", "H3", "t3", 0, 20, 0.9),
        ],
        name="technicians",
    )
    theta = equi_join_on(machines.schema, technicians.schema, [("Hall", "Hall")])

    print("machines:")
    print(machines.pretty())
    print("\ntechnicians:")
    print(technicians.pretty())

    print("\nTP left outer join (machine in use, technician present or not):")
    print(tp_left_outer_join(machines, technicians, theta).pretty())

    print("\nTP anti join (machine in use with *no* technician in the hall):")
    print(tp_anti_join(machines, technicians, theta).pretty())

    print("\nTP right outer join:")
    print(tp_right_outer_join(machines, technicians, theta).pretty())

    print("\nTP full outer join:")
    print(tp_full_outer_join(machines, technicians, theta).pretty())


if __name__ == "__main__":
    main()
