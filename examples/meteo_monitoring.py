"""Meteo-style scenario: stable metrics with no corroborating station.

The paper's Meteo dataset records predictions that a metric does not vary by
more than 0.1 over an interval, joining tuples about the same metric at
different stations.  The monitoring question with negation: at which times is
a metric predicted stable at the reference site while *no other station*
corroborates it?  That is a TP left outer join whose padded part carries the
negated lineage of all corroborating stations.

The example runs the query through the SQL engine with both physical
strategies (NJ and TA), checks they agree, and then drills into one metric
with a timeslice query.

Run with::

    python examples/meteo_monitoring.py [size]
"""

from __future__ import annotations

import sys
import time

from repro.datasets import meteo_pair
from repro.engine import Engine


def main(size: int = 600) -> None:
    reference, stations = meteo_pair(size, seed=3)
    engine = Engine()
    engine.register("reference", reference)
    engine.register("stations", stations)

    query = (
        "SELECT * FROM reference TP LEFT OUTER JOIN stations "
        "ON reference.Metric = stations.Metric USING {}"
    )

    results = {}
    for strategy in ("NJ", "TA"):
        started = time.perf_counter()
        results[strategy] = engine.execute_sql(
            query.format(strategy), compute_probabilities=False
        )
        elapsed = time.perf_counter() - started
        print(f"{strategy}: {len(results[strategy])} tuples in {elapsed * 1000:.1f} ms")
    assert len(results["NJ"]) == len(results["TA"]), "both strategies must agree"

    uncorroborated = results["NJ"].filter(lambda t: t.fact[2] is None)
    print(f"\nuncorroborated stable periods: {len(uncorroborated)} "
          f"of {len(results['NJ'])} result tuples")

    # Drill into one metric over a narrow window, with probabilities.
    metric = reference.tuples[0].fact[0]
    drill = engine.execute_sql(
        "SELECT * FROM reference TP ANTI JOIN stations "
        f"ON reference.Metric = stations.Metric WHERE Metric = '{metric}' DURING [0, 40)"
    )
    print(f"\nanti join for metric {metric!r} during [0,40):")
    print(drill.pretty(max_rows=10))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
