"""WebKit-style scenario: which files changed while untested?

The paper's WebKit dataset records predictions that a file remains unchanged
over an interval.  A natural question with negation: over which periods was a
file predicted to be *changing* (i.e. its "unchanged" prediction uncertain)
while no CI run covered it — and with what probability?  That is a TP anti
join between the file-activity relation and the CI-coverage relation.

This example generates a WebKit-like synthetic workload, runs the anti join
with NJ and with the Temporal Alignment baseline, verifies they agree and
reports runtimes and the most at-risk files.

Run with::

    python examples/webkit_regression.py [size]
"""

from __future__ import annotations

import sys
import time

from repro import ta_anti_join, tp_anti_join
from repro.datasets import webkit_pair, workload_statistics
from repro.relation import EquiJoinCondition


def main(size: int = 1500) -> None:
    activity, coverage = webkit_pair(size, seed=7)
    theta = EquiJoinCondition(activity.schema, coverage.schema, (("File", "File"),))

    stats = workload_statistics(activity, "File")
    print(f"workload: {stats.cardinality} tuples, {stats.distinct_keys} distinct files, "
          f"mean interval length {stats.mean_interval_length:.1f}")

    started = time.perf_counter()
    nj_result = tp_anti_join(activity, coverage, theta, compute_probabilities=False)
    nj_seconds = time.perf_counter() - started

    started = time.perf_counter()
    ta_result = ta_anti_join(activity, coverage, theta, compute_probabilities=False)
    ta_seconds = time.perf_counter() - started

    print(f"\nNJ  (lineage-aware windows): {len(nj_result)} result tuples in {nj_seconds * 1000:.1f} ms")
    print(f"TA  (temporal alignment)  : {len(ta_result)} result tuples in {ta_seconds * 1000:.1f} ms")
    print(f"speedup TA/NJ: {ta_seconds / nj_seconds:.1f}x")
    assert len(nj_result) == len(ta_result), "NJ and TA must agree"

    # Rank the uncovered periods by probability mass (probability × duration).
    scored = nj_result.with_probabilities()
    ranked = sorted(
        scored,
        key=lambda t: t.probability * t.interval.duration,
        reverse=True,
    )
    print("\ntop 5 uncovered at-risk periods (file, interval, probability):")
    for tp_tuple in ranked[:5]:
        print(
            f"  {tp_tuple.fact[0]:>8}  {str(tp_tuple.interval):>10}  "
            f"p={tp_tuple.probability:.3f}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
