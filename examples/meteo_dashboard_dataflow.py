"""Early-emitting dashboard over a multi-way continuous join tree.

``meteo_monitoring_live.py`` waits for the watermark before showing an
answer — correct, but the dashboard lags the data by the watermark bound.
This example runs the retractable dataflow variant instead: a 3-way join
tree (``r ⟕ s`` feeding ``(…) ⟖ t``) with **early emission** on, so
provisional windows appear on the dashboard as soon as the events arrive
and are corrected (retracted / refined) when late readings land.

The example shows

* the compiled multi-join SQL plan with its ``[dataflow 2-node]`` marker,
* per-node revision traffic (emits / retracts / refines) and the
  first-publication latency that early emission buys,
* and the convergence check: once the final watermark closes everything,
  the settled output of every node equals the batch re-run, probabilities
  bitwise.

Run with::

    python examples/meteo_dashboard_dataflow.py [size]
"""

from __future__ import annotations

import sys

from repro.dataflow import DataflowQuery, NodeSpec, assert_converged
from repro.datasets import ReplayConfig, stream_def
from repro.datasets.generators import generate_relation
from repro.datasets.meteo import meteo_config
from repro.engine import Engine
from repro.lineage import EventSpace
from repro.options import ExecutionOptions

TREE = [
    NodeSpec("stable", "left_outer", "r", "s", (("Metric", "Metric"),)),
    NodeSpec("dashboard", "right_outer", "stable", "t", (("Metric", "Metric"),)),
]


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    events = EventSpace()
    engine = Engine(options=ExecutionOptions(early_emit=True))
    for offset, name in enumerate(("r", "s", "t")):
        relation = generate_relation(meteo_config(size, seed=offset), events, name=name)
        engine.register_stream(
            name, stream_def(relation, ReplayConfig(disorder=8, seed=offset))
        )

    sql = (
        "SELECT * FROM STREAM r TP LEFT OUTER JOIN STREAM s ON r.Metric = s.Metric "
        "TP RIGHT OUTER JOIN STREAM t ON r.Metric = t.Metric"
    )
    print(engine.explain_sql(sql))
    print()

    query: DataflowQuery = engine.dataflow_query("dashboard", TREE)
    result = query.run(merge_seed=0)
    for name, node in result.nodes.items():
        latency = node.latency_summary()
        print(
            f"{name:>10}  settled={len(node.relation):>5}  "
            f"emits={node.stats.emits:>5}  refines={node.stats.refines:>5}  "
            f"retracts={node.stats.retracts:>5} ({node.retraction_rate:.1%})  "
            f"first-publication p50={latency['p50_ms']:.2f}ms"
        )

    cardinalities = assert_converged(result, engine.catalog, TREE)
    print(
        f"\nconverged: every settled node equals its batch re-run "
        f"(bitwise probabilities) — {cardinalities}"
    )


if __name__ == "__main__":
    main()
