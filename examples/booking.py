"""The paper's running example (Fig. 1): the booking website.

Reproduces, step by step, the temporal-probabilistic outer join
``Q = a ⟕ b`` with ``θ : a.Loc = b.Loc`` from the paper — including the
intermediate generalized lineage-aware temporal windows of Fig. 2 — and shows
the same query executed through the SQL front end.

Run with::

    python examples/booking.py
"""

from __future__ import annotations

from repro import Schema, TPRelation, compute_windows, equi_join_on, tp_left_outer_join
from repro.engine import Engine


def build_relations() -> tuple[TPRelation, TPRelation]:
    """The base relations of the paper's Fig. 1a."""
    wants_to_visit = TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [
            ("Ann", "ZAK", "a1", 2, 8, 0.7),
            ("Jim", "WEN", "a2", 7, 10, 0.8),
        ],
        name="a",
    )
    hotel_availability = TPRelation.from_rows(
        Schema.of("Hotel", "Loc"),
        [
            ("hotel3", "SOR", "b1", 1, 4, 0.9),
            ("hotel2", "ZAK", "b2", 5, 8, 0.6),
            ("hotel1", "ZAK", "b3", 4, 6, 0.7),
        ],
        events=wants_to_visit.events,
        name="b",
    )
    return wants_to_visit, hotel_availability


def main() -> None:
    wants_to_visit, hotel_availability = build_relations()
    theta = equi_join_on(wants_to_visit.schema, hotel_availability.schema, [("Loc", "Loc")])

    print("a (wantsToVisit):")
    print(wants_to_visit.pretty())
    print("\nb (hotelAvailability):")
    print(hotel_availability.pretty())

    print("\nGeneralized lineage-aware temporal windows of a w.r.t. b (Fig. 2):")
    windows = compute_windows(wants_to_visit, hotel_availability, theta)
    for window in (*windows.unmatched_r, *windows.overlapping, *windows.negating_r):
        print(f"  {window}")

    print("\nQ = a ⟕ b with θ : a.Loc = b.Loc  (the paper's Fig. 1b):")
    result = tp_left_outer_join(wants_to_visit, hotel_availability, theta)
    print(result.pretty())

    print("\nThe same query through the SQL front end:")
    engine = Engine()
    engine.register("a", wants_to_visit)
    engine.register("b", hotel_availability)
    sql = "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc"
    print(f"  {sql}\n")
    print(engine.explain_sql(sql))
    print()
    print(engine.execute_sql(sql).pretty())


if __name__ == "__main__":
    main()
