"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so environments whose setuptools predates PEP 660 editable wheels (or
that lack the ``wheel`` package) can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
