"""Structural hashing and reference counting of shared subplans."""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowGraph, NodeSpec
from repro.serve import SubplanRegistry, graph_structural_keys, structural_key

from conftest import make_stream_catalog

ON = (("Key", "Key"),)


def graph_of(catalog, *nodes: NodeSpec) -> DataflowGraph:
    return DataflowGraph(catalog, list(nodes))


def test_structural_key_ignores_node_names():
    catalog = make_stream_catalog(seed=3)
    one = graph_of(catalog, NodeSpec("j1", "inner", "a", "b", ON))
    two = graph_of(catalog, NodeSpec("totally_else", "inner", "a", "b", ON))
    assert structural_key(one, "j1") == structural_key(two, "totally_else")


def test_structural_key_distinguishes_kind_theta_partitions():
    catalog = make_stream_catalog(seed=3)
    base = structural_key(
        graph_of(catalog, NodeSpec("j", "inner", "a", "b", ON)), "j"
    )
    for variant in (
        NodeSpec("j", "left_outer", "a", "b", ON),
        NodeSpec("j", "inner", "a", "c", ON),
        NodeSpec("j", "inner", "a", "b", (("Key", "Key"), ("Serial", "Serial"))),
        NodeSpec("j", "inner", "a", "b", ON, partitions=2),
    ):
        assert structural_key(graph_of(catalog, variant), "j") != base


def test_structural_key_of_sources_and_unknown_names():
    catalog = make_stream_catalog(seed=3)
    graph = graph_of(catalog, NodeSpec("j", "inner", "a", "b", ON))
    assert structural_key(graph, "a") == ("stream", "a")
    with pytest.raises(KeyError):
        structural_key(graph, "nope")


def test_chained_keys_embed_producer_keys():
    catalog = make_stream_catalog(seed=3)
    graph = graph_of(
        catalog,
        NodeSpec("j1", "inner", "a", "b", ON),
        NodeSpec("j2", "left_outer", "j1", "c", ON),
    )
    keys = graph_structural_keys(graph)
    assert keys["j2"][2] == keys["j1"]  # left input key is j1's own key


def test_acquire_twice_shares_one_entry_with_refcount_two():
    catalog = make_stream_catalog(seed=3)
    registry = SubplanRegistry(catalog)
    one = graph_of(catalog, NodeSpec("j1", "inner", "a", "b", ON))
    two = graph_of(catalog, NodeSpec("j9", "inner", "a", "b", ON))
    mapping_one = registry.acquire(one)
    mapping_two = registry.acquire(two)
    assert mapping_one["j1"] == mapping_two["j9"] == "j1"
    assert len(registry) == 1
    assert registry.refcount_of("j1") == 2
    assert registry.shared_names() == {"j1"}


def test_within_graph_cse_collapses_identical_siblings():
    catalog = make_stream_catalog(seed=3)
    registry = SubplanRegistry(catalog)
    graph = graph_of(
        catalog,
        NodeSpec("left_copy", "inner", "a", "b", ON),
        NodeSpec("right_copy", "inner", "a", "b", ON),
        NodeSpec("top", "full_outer", "left_copy", "right_copy", ON),
    )
    mapping = registry.acquire(graph)
    assert mapping["left_copy"] == mapping["right_copy"]
    assert len(registry) == 2  # the shared sibling plus the top join
    top = registry.entry_of(mapping["top"]).spec
    assert top.left == top.right == mapping["left_copy"]


def test_fresh_name_appends_suffix_on_clash():
    catalog = make_stream_catalog(seed=3)
    registry = SubplanRegistry(catalog)
    registry.acquire(graph_of(catalog, NodeSpec("j1", "inner", "a", "b", ON)))
    # A *different* subplan spelled with the same node name cannot steal the
    # canonical name already in use.
    mapping = registry.acquire(
        graph_of(catalog, NodeSpec("j1", "left_outer", "a", "b", ON))
    )
    assert mapping["j1"] == "j1~2"
    assert len(registry) == 2


def test_release_is_the_exact_inverse_of_acquire():
    catalog = make_stream_catalog(seed=3)
    registry = SubplanRegistry(catalog)
    shared = NodeSpec("j1", "inner", "a", "b", ON)
    one = graph_of(catalog, shared)
    two = graph_of(
        catalog,
        NodeSpec("j1", "inner", "a", "b", ON),
        NodeSpec("j2", "left_outer", "j1", "c", ON),
    )
    registry.acquire(one)
    mapping_two = registry.acquire(two)
    assert registry.refcount_of(mapping_two["j1"]) == 2
    registry.release(one)
    assert registry.refcount_of(mapping_two["j1"]) == 1
    assert registry.shared_names() == set()
    registry.release(two)
    assert len(registry) == 0
    assert registry.entry_of("j1") is None


def test_plan_nodes_returns_canonical_specs_in_topological_order():
    catalog = make_stream_catalog(seed=3)
    registry = SubplanRegistry(catalog)
    chain = graph_of(
        catalog,
        NodeSpec("j1", "inner", "a", "b", ON),
        NodeSpec("j2", "left_outer", "j1", "c", ON),
    )
    mapping = registry.acquire(chain)
    specs = registry.plan_nodes(mapping.values())
    assert [spec.name for spec in specs] == [mapping["j1"], mapping["j2"]]
    assert specs[1].left == mapping["j1"]
    # The canonical specs form a valid graph of their own.
    merged = DataflowGraph(catalog, specs)
    assert merged.sink == mapping["j2"]
