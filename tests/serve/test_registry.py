"""StandingQueryService: lifecycle, plan sharing, snapshots, late joiners."""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.dataflow import DataflowQuery, NodeSpec
from repro.dataflow.revision import Revision, RevisionKind
from repro.relation import TPTuple
from repro.serve import END_OF_STREAM, ServeError, StandingQueryService
from repro.stream.elements import Watermark
from repro.stream.query import StreamQueryConfig

from conftest import make_stream_catalog

ON = (("Key", "Key"),)
JOIN = NodeSpec("j1", "left_outer", "a", "b", ON)


def make_service(seed=5, **kwargs) -> StandingQueryService:
    return StandingQueryService(make_stream_catalog(seed=seed), **kwargs)


def make_gated_catalog(seed: int, gate: threading.Event):
    """A stream catalog whose sources yield nothing until ``gate`` is set.

    A plan group over this catalog provably cannot settle before the test
    releases the gate, which makes group-lifetime assertions (same group
    across a resubscribe, both queries landing in one running group)
    deterministic instead of a race against an in-memory replay.
    """
    catalog = make_stream_catalog(seed=seed)
    for name in ("a", "b", "c"):
        definition = catalog.lookup_stream(name)
        original_replay = definition.replay

        def gated_replay(inner=original_replay):
            elements = list(inner())

            def generate():
                assert gate.wait(timeout=30.0), "test never released the gate"
                yield from elements

            return generate()

        catalog.register_stream(
            name, dataclasses.replace(definition, replay=gated_replay), replace=True
        )
    return catalog


def settled_sorted(tuples) -> list:
    return sorted(tuples, key=TPTuple.key)


def drain(subscription, timeout=10.0) -> list:
    items = []
    deadline = time.monotonic() + timeout
    while True:
        item = subscription.read(timeout=max(0.01, deadline - time.monotonic()))
        assert item is not None, "unexpected subscription read timeout"
        if item is END_OF_STREAM:
            return items
        items.append(item)


def wait_for_operators(service, name, count, timeout=5.0) -> list:
    # Worker threads start asynchronously after subscribe(); poll until the
    # start-up probes have reported every partition's operator instance.
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        operators = service.operators_of(name)
        if len(operators) >= count:
            return operators
    raise AssertionError(f"probes never reported {count} operators for {name!r}")


def net_settled_state(elements) -> list:
    """Accumulate a revision stream into its net settled tuple set."""
    from repro.serve import ResultCache

    cache = ResultCache()
    for element in elements:
        cache.apply(element)
    return settled_sorted(cache.snapshot(settled_only=True))


def test_lifecycle_idle_until_first_subscriber_then_settles():
    service = make_service()
    service.register("q1", [JOIN])
    assert service.stats()["q1"]["running"] is False
    subscription = service.subscribe("q1")
    elements = drain(subscription)
    assert any(isinstance(e, Revision) for e in elements)
    assert any(isinstance(e, Watermark) for e in elements)
    record = service.lookup("q1")
    assert record.group.finished.wait(timeout=5.0)
    assert service.stats()["q1"]["running"] is False
    subscription.close()
    service.shutdown()


def test_settled_state_matches_direct_dataflow_run():
    config = StreamQueryConfig(early_emit=True)
    catalog = make_stream_catalog(seed=5)
    direct = DataflowQuery(catalog, [JOIN], config).run(backend="inline")
    service = StandingQueryService(make_stream_catalog(seed=5), config=config)
    service.register("q1", [JOIN])
    subscription = service.subscribe("q1")
    elements = drain(subscription)
    assert net_settled_state(elements) == settled_sorted(direct.relation.tuples)
    # The materialized cache converged to the same state.
    assert settled_sorted(service.snapshot("q1", settled_only=True)) == settled_sorted(
        direct.relation.tuples
    )
    service.shutdown()


def test_last_detach_stops_the_group_mid_flight():
    # A stalled subscriber holds the group open; detaching it must cancel
    # the run and close the hubs rather than leaving threads behind.
    service = make_service(policy="block", hub_capacity=4)
    service.register("q1", [JOIN])
    first = service.subscribe("q1")
    second = service.subscribe("q1")
    group = service.lookup("q1").group
    first.close()
    assert not group.cancel.is_set()  # one subscriber still attached
    second.close()
    assert group.cancel.is_set()
    assert group.join(timeout=5.0)
    service.shutdown()


def test_linger_keeps_the_group_alive_for_a_resubscribe():
    # Gated sources: the group cannot settle on its own, so the lingering
    # group is guaranteed to still be the one the resubscriber lands on.
    gate = threading.Event()
    service = StandingQueryService(
        make_gated_catalog(5, gate), linger_seconds=30.0
    )
    service.register("q1", [JOIN])
    first = service.subscribe("q1")
    group = service.lookup("q1").group
    first.close()
    assert not group.cancel.is_set()  # lingering, not stopped
    second = service.subscribe("q1")
    assert service.lookup("q1").group is group  # same run, no restart
    gate.set()
    elements = drain(second)  # the resubscriber still sees the full stream
    assert any(isinstance(e, Revision) for e in elements)
    second.close()
    group.join(timeout=10.0)
    service.shutdown()


def test_two_queries_sharing_a_subplan_execute_it_once():
    partitions = 2
    shared_spec = NodeSpec("j1", "left_outer", "a", "b", ON, partitions=partitions)
    config = StreamQueryConfig(early_emit=True, materialize_probabilities=True)
    # Gated sources: nothing is published (and the group cannot settle)
    # until both subscribers are attached, so both observe the full stream.
    gate = threading.Event()
    service = StandingQueryService(
        make_gated_catalog(5, gate), config=config, hub_capacity=4096
    )
    service.register("q1", [shared_spec])
    service.register("q2", [NodeSpec("other_name", "left_outer", "a", "b", ON, partitions=partitions)])
    assert service.shared_subplans() == {"j1"}
    one = service.subscribe("q1")
    two = service.subscribe("q2")
    gate.set()
    # Both standing queries landed in one plan group over one merged graph.
    assert service.lookup("q1").group is service.lookup("q2").group
    ops_one = wait_for_operators(service, "q1", partitions)
    ops_two = wait_for_operators(service, "q2", partitions)
    # One operator instance per partition — not per query.
    assert len(ops_one) == partitions
    assert all(a is b for a, b in zip(ops_one, ops_two))
    elements_one = drain(one)
    elements_two = drain(two)
    # Both subscribers observed the identical (non-empty) revision stream.
    state_one = net_settled_state(elements_one)
    assert state_one and state_one == net_settled_state(elements_two)
    # The per-key hash-cons probability tables are shared: the same key
    # resolves to the same interned computer object through either query.
    maintainer = ops_one[0].maintainer
    key = next(iter(service.snapshot("q1"))).fact[0]
    assert maintainer.computer_for((key,)) is ops_two[0].maintainer.computer_for((key,))
    service.shutdown()


def test_disjoint_queries_do_not_share_a_group():
    service = make_service()
    service.register("q1", [JOIN])
    service.register("q2", [NodeSpec("j2", "inner", "a", "c", ON)])
    assert service.shared_subplans() == set()
    one = service.subscribe("q1")
    two = service.subscribe("q2")
    assert service.lookup("q1").group is not service.lookup("q2").group
    drain(one)
    drain(two)
    service.shutdown()


def test_late_joiner_snapshot_plus_tail_equals_from_start_accumulation():
    service = make_service(hub_capacity=1024)
    service.register("q1", [JOIN])
    from_start = service.subscribe("q1")
    # Let the query make real progress before the late joiner arrives.
    early_elements = []
    while len([e for e in early_elements if isinstance(e, Revision)]) < 20:
        item = from_start.read(timeout=5.0)
        assert item is not None and item is not END_OF_STREAM
        early_elements.append(item)
    late = service.subscribe("q1")
    assert late.snapshot is not None
    tail = drain(late)
    remainder = drain(from_start)
    # Bitwise equality: the late joiner's snapshot + live tail accumulates
    # to exactly the from-start subscriber's accumulated settled state.
    from repro.serve import ResultCache

    from_start_cache = ResultCache()
    for element in early_elements + remainder:
        from_start_cache.apply(element)
    late_cache = ResultCache()
    for tp_tuple in late.snapshot:
        late_cache.apply(Revision(RevisionKind.EMIT, tp_tuple))
    for element in tail:
        late_cache.apply(element)
    assert settled_sorted(late_cache.snapshot()) == settled_sorted(
        from_start_cache.snapshot()
    )
    service.shutdown()


def test_subscribe_without_snapshot_carries_none():
    service = make_service()
    service.register("q1", [JOIN])
    subscription = service.subscribe("q1", snapshot=False)
    assert subscription.snapshot is None
    drain(subscription)
    service.shutdown()


def test_explain_marks_shared_subplans():
    service = make_service()
    service.register("q1", [JOIN])
    assert "shared=" not in service.explain("q1")
    service.register("q2", [NodeSpec("mine", "left_outer", "a", "b", ON)])
    plan = service.explain("q1")
    assert "shared=j1" in plan
    service.shutdown()


def test_register_conflicts_and_unregister():
    service = make_service()
    service.register("q1", [JOIN])
    with pytest.raises(ServeError):
        service.register("q1", [JOIN])
    service.register("q1", [NodeSpec("j1", "inner", "a", "b", ON)], replace=True)
    assert service.lookup("q1").query.graph.nodes[0].kind == "inner"
    with pytest.raises(ServeError, match="unknown standing query"):
        service.lookup("nope")
    service.unregister("q1")
    with pytest.raises(ServeError):
        service.unregister("q1")
    assert service.names() == []


def test_catalog_standing_query_namespace():
    catalog = make_stream_catalog(seed=5)
    service = StandingQueryService(catalog)
    service.register("q1", [JOIN])
    assert catalog.standing_query_names() == ["q1"]
    assert catalog.lookup_standing_query("q1") is service.lookup("q1").query
    service.unregister("q1")
    assert catalog.standing_query_names() == []
    with pytest.raises(Exception, match="q1"):
        catalog.lookup_standing_query("q1")


def test_service_rejects_bad_policy_and_transport():
    catalog = make_stream_catalog(seed=5)
    with pytest.raises(ValueError, match="policy"):
        StandingQueryService(catalog, policy="nope")
    with pytest.raises(ValueError, match="transport"):
        StandingQueryService(catalog, transport="sockets")
