"""Fan-out hub: cursors, eviction, and the three slow-subscriber policies.

The satellite coverage this PR promised: one fast and one stalled
subscriber under each policy, asserting settled revisions are never
dropped and cursors never regress.
"""

from __future__ import annotations

import threading

import pytest

from repro.lineage import Var
from repro.relation import TPTuple
from repro.serve import END_OF_STREAM, FanoutHub, SlowSubscriberDisconnected
from repro.serve.hub import droppable
from repro.dataflow.revision import Revision, RevisionKind
from repro.stream.elements import Watermark
from repro.temporal import Interval


def revision(serial: int, kind=RevisionKind.EMIT, provisional=False) -> Revision:
    tp_tuple = TPTuple((f"k{serial}", f"s{serial}"), Var(f"e{serial}"), Interval(0, 1), 0.5)
    return Revision(kind, tp_tuple, provisional=provisional)


def drain(subscription) -> list:
    items = []
    while True:
        item = subscription.read(timeout=5.0)
        assert item is not None, "unexpected read timeout"
        if item is END_OF_STREAM:
            return items
        items.append(item)


def test_fanout_delivers_every_element_to_every_subscriber():
    hub = FanoutHub(capacity=16)
    first = hub.attach()
    second = hub.attach()
    elements = [revision(index) for index in range(10)]
    for element in elements:
        assert hub.publish(element)
    hub.close()
    assert drain(first) == elements
    assert drain(second) == elements


def test_late_attach_sees_only_the_tail():
    hub = FanoutHub(capacity=16)
    early = hub.attach()
    hub.publish(revision(0))
    hub.publish(revision(1))
    late = hub.attach()
    hub.publish(revision(2))
    hub.close()
    assert len(drain(early)) == 3
    assert drain(late) == [revision(2)]


def test_shared_ring_retires_entries_consumed_by_all():
    hub = FanoutHub(capacity=16)
    first = hub.attach()
    second = hub.attach()
    for index in range(8):
        hub.publish(revision(index))
    assert hub.ring_size() == 8
    for _ in range(8):
        first.read(timeout=1.0)
    # first consumed everything, second nothing: all entries still retained.
    assert hub.ring_size() == 8
    for _ in range(5):
        second.read(timeout=1.0)
    assert hub.ring_size() == 3


def test_detached_subscriber_releases_its_entries():
    hub = FanoutHub(capacity=16)
    fast = hub.attach()
    slow = hub.attach()
    for index in range(6):
        hub.publish(revision(index))
    for _ in range(6):
        fast.read(timeout=1.0)
    assert hub.ring_size() == 6
    slow.close()
    assert hub.ring_size() == 0
    with pytest.raises(ValueError):
        slow.read(timeout=0.1)


def test_block_policy_backpressures_and_loses_nothing():
    import time

    hub = FanoutHub(capacity=4, policy="block")
    fast = hub.attach()
    stalled = hub.attach()
    elements = [revision(index, provisional=index % 2 == 0) for index in range(12)]
    received_fast = []
    cursors_fast = []
    fast_done = threading.Event()

    def fast_consumer():
        while True:
            item = fast.read(timeout=10.0)
            if item is END_OF_STREAM:
                break
            received_fast.append(item)
            cursors_fast.append(fast.cursor)
        fast_done.set()

    def publisher():
        for element in elements:
            hub.publish(element)
        hub.close()

    threading.Thread(target=fast_consumer, daemon=True).start()
    threading.Thread(target=publisher, daemon=True).start()
    # The stalled subscriber pins the ring at 4 entries, so the publisher is
    # guaranteed to park on the 5th element.  Wait for that, then catch up.
    deadline = time.monotonic() + 10.0
    while hub.publish_blocks == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert hub.publish_blocks > 0
    received_stalled = drain(stalled)
    assert fast_done.wait(timeout=10.0)
    # Nothing was dropped for either subscriber, order preserved end to end.
    assert received_fast == elements
    assert received_stalled == elements
    assert cursors_fast == sorted(cursors_fast)
    assert hub.dropped_provisional == 0


def test_drop_provisional_drops_only_droppables_and_keeps_order():
    hub = FanoutHub(capacity=4, policy="drop_provisional")
    fast = hub.attach()
    stalled = hub.attach()
    settled = [revision(index, provisional=False) for index in range(4)]
    provisionals = [revision(100 + index, provisional=True) for index in range(5)]
    # s0 p0 s1 p1 s2 p2 s3 p3 p4 against capacity 4 with a fully stalled
    # subscriber: provisionals are evicted (or dropped on arrival) to make
    # room, settled revisions always find space — no publish ever blocks.
    sequence = [
        settled[0], provisionals[0], settled[1], provisionals[1],
        settled[2], provisionals[2], settled[3], provisionals[3], provisionals[4],
    ]
    for element in sequence:
        hub.publish(element)
    hub.close()
    assert hub.dropped_provisional > 0
    stalled_before = stalled.cursor
    stalled_items = drain(stalled)
    # Every settled revision survived for the stalled laggard, in order.
    assert [r for r in stalled_items if not droppable(r)] == settled
    assert stalled.cursor >= stalled_before
    # The fast subscriber (reading after the fact) sees the same settled set.
    fast_items = drain(fast)
    assert [r for r in fast_items if not droppable(r)] == settled


def test_drop_provisional_never_drops_watermark_only_progress_to_cache():
    # Watermarks are droppable; dropping one must not lose cache progress.
    from repro.serve import ResultCache

    hub = FanoutHub(capacity=1, policy="drop_provisional")
    cache = ResultCache()
    stalled = hub.attach()
    hub.publish(revision(0), update=cache.apply)  # fills the ring
    hub.publish(Watermark(7.0), update=cache.apply)  # dropped, cache still sees it
    assert cache.last_watermark == 7.0
    assert hub.dropped_provisional == 1
    assert stalled.cursor == 0


def test_disconnect_policy_cuts_the_slowest_and_keeps_the_fast_stream_exact():
    hub = FanoutHub(capacity=4, policy="disconnect")
    fast = hub.attach()
    stalled = hub.attach()
    elements = [revision(index) for index in range(12)]
    received = []
    # Lock-step: the fast subscriber consumes each element as published, so
    # it is deterministically ahead when the ring fills and the stalled one
    # (pinned at cursor 0) is unambiguously the slowest.
    for element in elements:
        assert hub.publish(element)
        received.append(fast.read(timeout=1.0))
    hub.close()
    assert fast.read(timeout=1.0) is END_OF_STREAM
    assert received == elements  # the fast subscriber lost nothing
    assert hub.disconnects == 1
    with pytest.raises(SlowSubscriberDisconnected):
        stalled.read(timeout=1.0)


def test_publish_without_subscribers_updates_cache_only():
    from repro.serve import ResultCache

    hub = FanoutHub(capacity=4)
    cache = ResultCache()
    assert not hub.publish(revision(0), update=cache.apply)
    assert len(cache) == 1
    assert hub.ring_size() == 0


def test_close_unblocks_a_parked_publisher():
    hub = FanoutHub(capacity=1, policy="block")
    hub.attach()  # never reads
    hub.publish(revision(0))
    result = {}

    def publisher():
        result["delivered"] = hub.publish(revision(1))

    thread = threading.Thread(target=publisher, daemon=True)
    thread.start()
    thread.join(timeout=0.2)
    assert thread.is_alive()  # parked on the full ring
    hub.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert result["delivered"] is False


def test_snapshot_fn_runs_atomically_with_cursor_placement():
    from repro.serve import ResultCache

    hub = FanoutHub(capacity=16)
    cache = ResultCache()
    reader = hub.attach()
    for index in range(4):
        hub.publish(revision(index), update=cache.apply)
    late = hub.attach(snapshot_fn=cache.snapshot)
    hub.publish(revision(4), update=cache.apply)
    hub.close()
    assert len(late.snapshot) == 4
    assert drain(late) == [revision(4)]
    assert len(drain(reader)) == 5
