"""Fixtures for the serving-layer tests."""

from __future__ import annotations

import random

import pytest

from repro import Schema, TPRelation
from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog


def make_relation(
    prefix: str,
    size: int,
    seed: int,
    num_keys: int = 3,
    time_span: int = 30,
    max_duration: int = 8,
) -> TPRelation:
    """One random constraint-valid TP relation with ``prefix``-unique events."""
    rng = random.Random(seed)
    rows = []
    for index in range(size):
        key = f"k{rng.randrange(num_keys)}"
        start = rng.randrange(0, time_span)
        end = start + rng.randrange(1, max_duration)
        probability = round(rng.uniform(0.05, 0.95), 3)
        rows.append(
            (key, f"{prefix}{index}", f"{prefix}{index}", start, end, probability)
        )
    return TPRelation.from_rows(Schema.of("Key", "Serial"), rows, name=prefix)


def make_stream_catalog(
    seed: int,
    sizes: tuple[int, int, int] = (20, 20, 15),
    disorder: int = 5,
    num_keys: int = 3,
    watermark_every: int = 4,
) -> Catalog:
    """A catalog with three registered streams ``a``/``b``/``c``."""
    catalog = Catalog()
    for offset, (name, size) in enumerate(zip("abc", sizes)):
        relation = make_relation(name, size, seed * 101 + offset, num_keys)
        catalog.register_stream(
            name,
            stream_def(
                relation,
                ReplayConfig(
                    disorder=disorder,
                    seed=seed * 13 + offset,
                    watermark_every=watermark_every,
                ),
            ),
        )
    return catalog


@pytest.fixture()
def serve_catalog_factory():
    """Fixture exposing :func:`make_stream_catalog` to tests."""
    return make_stream_catalog
