"""End-to-end NDJSON/TCP serving: register, subscribe, snapshot, detach."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.dataflow import NodeSpec
from repro.dataflow.revision import Revision, RevisionKind
from repro.relation import TPTuple
from repro.serve import ResultCache, ServeClient, ServeError, ServeServer, StandingQueryService
from repro.serve.server import element_from_payload, node_from_payload, node_payload

from conftest import make_stream_catalog

ON = (("Key", "Key"),)
JOIN = NodeSpec("j1", "left_outer", "a", "b", ON)


@pytest.fixture()
def serving():
    """A StandingQueryService behind a live TCP server on a loopback port."""
    service = StandingQueryService(make_stream_catalog(seed=5))
    server = ServeServer(service)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def host():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()
        loop.run_until_complete(server.close())
        loop.close()

    thread = threading.Thread(target=host, name="serve-test-loop", daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0)
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10.0)
    service.shutdown()


def test_node_payload_roundtrip():
    spec = NodeSpec("j2", "anti", "a", "b", (("Key", "Key"), ("Serial", "Serial")), partitions=3)
    assert node_from_payload(node_payload(spec)) == spec


def test_register_list_explain_over_tcp(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        response = client.register("q1", [JOIN])
        assert response["type"] == "ok"
        assert client.list_queries() == ["q1"]
        assert "dataflow" in client.explain("q1")
        with pytest.raises(ServeError, match="already registered"):
            client.register("q1", [JOIN])
        with pytest.raises(ServeError, match="unknown op"):
            client.request({"op": "frobnicate"})


def test_subscribe_streams_revisions_until_settled(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
        snapshot = client.subscribe("q1")
        assert snapshot == []  # idle query: nothing materialized yet
        cache = ResultCache()
        end = None
        for message in client.events():
            if message["type"] == "end":
                end = message
                break
            cache.apply(element_from_payload(message))
        assert end is not None and end["reason"] == "settled"
        assert cache.last_watermark == float("inf")
        assert len(cache) > 0
        # The decoded net state equals the server-side materialized cache.
        server_state = serving.service.snapshot("q1")
        assert sorted(cache.snapshot(), key=TPTuple.key) == sorted(
            server_state, key=TPTuple.key
        )


def test_late_joiner_snapshot_over_tcp(serving):
    with ServeClient("127.0.0.1", serving.port) as register_client:
        register_client.register("q1", [JOIN])

    with ServeClient("127.0.0.1", serving.port) as from_start:
        assert from_start.subscribe("q1") == []
        from_start_cache = ResultCache()
        revisions_seen = 0
        late_cache = None
        for message in from_start.events():
            if message["type"] == "end":
                break
            from_start_cache.apply(element_from_payload(message))
            if message["type"] == "revision":
                revisions_seen += 1
            if revisions_seen == 10 and late_cache is None:
                # A second connection joins mid-stream: its snapshot must
                # reflect everything published so far, atomically.
                with ServeClient("127.0.0.1", serving.port) as late:
                    late_cache = ResultCache()
                    for tp_tuple in late.subscribe("q1"):
                        late_cache.apply(Revision(RevisionKind.EMIT, tp_tuple))
                    for late_message in late.events():
                        if late_message["type"] == "end":
                            break
                        late_cache.apply(element_from_payload(late_message))
    assert late_cache is not None
    assert sorted(late_cache.snapshot(), key=TPTuple.key) == sorted(
        from_start_cache.snapshot(), key=TPTuple.key
    )


def test_detach_ends_the_stream_without_settling(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
        client.subscribe("q1")
        client.detach()
        reasons = [m["reason"] for m in client.events() if m["type"] == "end"]
        assert reasons == ["detached"] or reasons == ["settled"]
    # The subscriber is gone either way; the service winds the group down.
    record = serving.service.lookup("q1")
    assert record.group.finished.wait(timeout=10.0)


def test_snapshot_op_on_a_fresh_connection(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
        with ServeClient("127.0.0.1", serving.port) as subscriber:
            subscriber.subscribe("q1")
            for message in subscriber.events():
                if message["type"] == "end":
                    break
        tuples = client.snapshot("q1")
        assert len(tuples) > 0
        assert all(isinstance(tp_tuple, TPTuple) for tp_tuple in tuples)


def test_error_responses_do_not_kill_the_connection(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        with pytest.raises(ServeError, match="unknown standing query"):
            client.request({"op": "snapshot", "name": "ghost"})
        with pytest.raises(ServeError, match="no active subscription"):
            client.request({"op": "detach"})
        # The connection is still usable after errors.
        assert client.list_queries() == []
