"""Replay generator tests: disorder bounds, determinism, stream definitions."""

from __future__ import annotations

import pytest

from repro.datasets import (
    ReplayConfig,
    arrival_order,
    meteo_pair,
    meteo_stream_pair,
    replay_source,
    stream_def,
    webkit_stream_pair,
)
from repro.stream import StreamEvent, Watermark


def test_zero_disorder_replays_in_event_time_order():
    relation, _ = meteo_pair(200, seed=5)
    ordered = arrival_order(relation, disorder=0, seed=0)
    starts = [t.start for t in ordered]
    assert starts == sorted(starts)
    assert sorted(t.key() for t in ordered) == sorted(t.key() for t in relation)


@pytest.mark.parametrize("disorder", [1, 5, 20])
def test_disorder_displacement_is_bounded(disorder):
    relation, _ = meteo_pair(300, seed=7)
    ordered = arrival_order(relation, disorder=disorder, seed=3)
    max_start_seen = float("-inf")
    for tp_tuple in ordered:
        # No tuple arrives more than `disorder` behind the furthest start.
        assert tp_tuple.start >= max_start_seen - disorder
        max_start_seen = max(max_start_seen, tp_tuple.start)


def test_disorder_actually_reorders():
    relation, _ = meteo_pair(300, seed=7)
    starts = [t.start for t in arrival_order(relation, disorder=20, seed=3)]
    assert starts != sorted(starts)


def test_arrival_order_is_deterministic_per_seed():
    relation, _ = meteo_pair(100, seed=1)
    first = arrival_order(relation, disorder=9, seed=4)
    second = arrival_order(relation, disorder=9, seed=4)
    other = arrival_order(relation, disorder=9, seed=5)
    assert first == second
    assert first != other


def test_replay_source_with_matched_lateness_evicts_nothing():
    relation, _ = meteo_pair(250, seed=2)
    source = replay_source(relation, ReplayConfig(disorder=12, seed=6))
    events = [e for e in source if isinstance(e, StreamEvent)]
    assert len(events) == len(relation)
    assert source.stats.late_evicted == 0


def test_stream_def_replay_is_repeatable():
    relation, _ = meteo_pair(80, seed=9)
    definition = stream_def(relation, ReplayConfig(disorder=4, seed=2), name="m")
    first = [e.tuple.key() for e in definition.replay() if isinstance(e, StreamEvent)]
    second = [e.tuple.key() for e in definition.replay() if isinstance(e, StreamEvent)]
    assert first == second
    assert definition.name == "m"
    assert definition.schema == relation.schema


def test_stream_pairs_share_config_but_differ_in_jitter():
    for builder in (meteo_stream_pair, webkit_stream_pair):
        left, right = builder(60, ReplayConfig(disorder=5, seed=11))
        left_elements = list(left.replay())
        right_elements = list(right.replay())
        assert any(isinstance(e, Watermark) for e in left_elements)
        assert left_elements[-1].closes and right_elements[-1].closes


def test_negative_disorder_rejected():
    relation, _ = meteo_pair(10, seed=0)
    with pytest.raises(ValueError):
        arrival_order(relation, disorder=-1)
