"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DISTINCT_METRICS,
    IntervalLengthDistribution,
    KeyDistribution,
    WorkloadConfig,
    generate_pair,
    generate_relation,
    mean_matches_per_tuple,
    meteo_pair,
    uniform_subset,
    webkit_pair,
    workload_statistics,
)
from repro.relation import EquiJoinCondition


class TestGenerateRelation:
    def test_size_and_schema(self):
        config = WorkloadConfig(size=50, distinct_keys=5, seed=1)
        relation = generate_relation(config, name="t")
        assert len(relation) == 50
        assert relation.schema.attributes == ("Key", "Payload")

    def test_determinism(self):
        config = WorkloadConfig(size=40, distinct_keys=4, seed=7)
        first = generate_relation(config, name="x")
        second = generate_relation(config, name="x")
        assert [t.key() for t in first] == [t.key() for t in second]

    def test_different_seeds_differ(self):
        base = WorkloadConfig(size=40, distinct_keys=4, seed=7)
        first = generate_relation(base, name="x")
        second = generate_relation(base.with_seed(8), name="x")
        assert [t.key() for t in first] != [t.key() for t in second]

    def test_constraint_holds(self):
        config = WorkloadConfig(size=200, distinct_keys=3, seed=3)
        generate_relation(config, name="t").check_duplicate_free()

    def test_probabilities_within_configured_range(self):
        config = WorkloadConfig(
            size=100, distinct_keys=5, min_probability=0.3, max_probability=0.6, seed=2
        )
        relation = generate_relation(config, name="t")
        for tp_tuple in relation:
            assert 0.3 <= tp_tuple.probability <= 0.6

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_relation(WorkloadConfig(size=0, distinct_keys=1))
        with pytest.raises(ValueError):
            generate_relation(WorkloadConfig(size=5, distinct_keys=0))

    @pytest.mark.parametrize(
        "distribution",
        [
            IntervalLengthDistribution.UNIFORM,
            IntervalLengthDistribution.GEOMETRIC,
            IntervalLengthDistribution.LONG_TAIL,
        ],
    )
    def test_all_interval_distributions_produce_valid_intervals(self, distribution):
        config = WorkloadConfig(
            size=100, distinct_keys=10, interval_distribution=distribution, seed=5
        )
        relation = generate_relation(config, name="t")
        assert all(t.interval.duration >= 1 for t in relation)

    @pytest.mark.parametrize(
        "distribution", [KeyDistribution.UNIFORM, KeyDistribution.ZIPF]
    )
    def test_key_distributions(self, distribution):
        config = WorkloadConfig(size=200, distinct_keys=10, key_distribution=distribution, seed=5)
        relation = generate_relation(config, name="t")
        keys = set(relation.attribute_values("Key"))
        assert 1 <= len(keys) <= 10

    def test_generate_pair_shares_one_event_space(self):
        config = WorkloadConfig(size=30, distinct_keys=3, seed=1)
        left, right = generate_pair(config, config.with_seed(2))
        assert left.events is right.events
        left.validate_lineages()
        right.validate_lineages()


class TestUniformSubset:
    def test_subset_size(self):
        relation = generate_relation(WorkloadConfig(size=100, distinct_keys=5, seed=1), name="t")
        assert len(uniform_subset(relation, 20, seed=3)) == 20

    def test_subset_larger_than_relation_returns_relation(self):
        relation = generate_relation(WorkloadConfig(size=10, distinct_keys=5, seed=1), name="t")
        assert uniform_subset(relation, 100) is relation

    def test_subset_is_deterministic(self):
        relation = generate_relation(WorkloadConfig(size=100, distinct_keys=5, seed=1), name="t")
        first = uniform_subset(relation, 30, seed=9)
        second = uniform_subset(relation, 30, seed=9)
        assert [t.key() for t in first] == [t.key() for t in second]

    def test_subset_preserves_distinct_value_ratio_roughly(self):
        relation = generate_relation(WorkloadConfig(size=2000, distinct_keys=20, seed=1), name="t")
        subset = uniform_subset(relation, 500, seed=2)
        stats_full = workload_statistics(relation, "Key")
        stats_subset = workload_statistics(subset, "Key")
        assert stats_subset.distinct_keys == pytest.approx(stats_full.distinct_keys, abs=2)


class TestPaperWorkloads:
    def test_webkit_is_selective_meteo_is_not(self):
        webkit_r, _ = webkit_pair(800, seed=1)
        meteo_r, _ = meteo_pair(800, seed=1)
        webkit_stats = workload_statistics(webkit_r, "File")
        meteo_stats = workload_statistics(meteo_r, "Metric")
        # WebKit-like: many distinct keys; Meteo-like: few (fixed) keys.
        assert webkit_stats.distinct_keys > 2 * meteo_stats.distinct_keys
        assert meteo_stats.distinct_keys <= DISTINCT_METRICS

    def test_meteo_distinct_keys_stay_fixed_while_webkit_grows_with_size(self):
        small_webkit, _ = webkit_pair(300, seed=1)
        large_webkit, _ = webkit_pair(1200, seed=1)
        small_meteo, _ = meteo_pair(300, seed=1)
        large_meteo, _ = meteo_pair(1200, seed=1)
        assert (
            workload_statistics(large_webkit, "File").distinct_keys
            > 1.5 * workload_statistics(small_webkit, "File").distinct_keys
        )
        assert (
            workload_statistics(large_meteo, "Metric").distinct_keys
            == workload_statistics(small_meteo, "Metric").distinct_keys
            == DISTINCT_METRICS
        )

    def test_meteo_has_denser_matching_than_webkit(self):
        webkit_r, webkit_s = webkit_pair(600, seed=2)
        meteo_r, meteo_s = meteo_pair(600, seed=2)
        webkit_theta = EquiJoinCondition(webkit_r.schema, webkit_s.schema, (("File", "File"),))
        meteo_theta = EquiJoinCondition(meteo_r.schema, meteo_s.schema, (("Metric", "Metric"),))
        assert mean_matches_per_tuple(meteo_r, meteo_s, meteo_theta) > mean_matches_per_tuple(
            webkit_r, webkit_s, webkit_theta
        )

    def test_pairs_are_constraint_valid_and_lineage_complete(self):
        for relation in (*webkit_pair(300, seed=3), *meteo_pair(300, seed=3)):
            relation.check_duplicate_free()
            relation.validate_lineages()

    def test_statistics_report_fields(self):
        relation, _ = webkit_pair(200, seed=4)
        stats = workload_statistics(relation, "File")
        exported = stats.as_dict()
        assert exported["cardinality"] == 200
        assert 0 < exported["selectivity_ratio"] <= 1
        assert exported["mean_interval_length"] > 0

    def test_empty_relation_statistics(self):
        from repro.relation import Schema, TPRelation

        stats = workload_statistics(TPRelation(Schema.of("Key")), "Key")
        assert stats.cardinality == 0
