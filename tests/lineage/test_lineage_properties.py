"""Property-based tests for lineage expressions and probability computation."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage import (
    EventSpace,
    Var,
    canonical,
    equivalent,
    lineage_and,
    lineage_not,
    lineage_or,
    probability,
    restrict,
    to_nnf,
)

VARIABLE_NAMES = ["v0", "v1", "v2", "v3", "v4"]


def expressions(max_leaves: int = 5):
    """Hypothesis strategy producing small lineage expressions."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(lambda a, b: lineage_and(a, b), children, children),
            st.builds(lambda a, b: lineage_or(a, b), children, children),
            st.builds(lineage_not, children),
        ),
        max_leaves=max_leaves,
    )


def event_space_for(seed: int) -> EventSpace:
    rng = random.Random(seed)
    return EventSpace({name: round(rng.uniform(0.05, 0.95), 3) for name in VARIABLE_NAMES})


def brute_force_probability(expr, events: EventSpace) -> float:
    """Reference probability by summing over all possible worlds."""
    names = sorted(expr.variables())
    total = 0.0
    for mask in range(2 ** len(names)):
        assignment = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
        weight = 1.0
        for name in names:
            marginal = events.probability(name)
            weight *= marginal if assignment[name] else (1.0 - marginal)
        if expr.evaluate(assignment):
            total += weight
    return total


@given(expressions(), st.integers(min_value=0, max_value=50))
@settings(max_examples=80)
def test_probability_matches_brute_force_enumeration(expr, seed):
    events = event_space_for(seed)
    assert abs(probability(expr, events) - brute_force_probability(expr, events)) < 1e-9


@given(expressions())
@settings(max_examples=80)
def test_probability_is_within_unit_interval(expr):
    events = event_space_for(1)
    value = probability(expr, events)
    assert -1e-12 <= value <= 1.0 + 1e-12


@given(expressions())
@settings(max_examples=80)
def test_negation_complements_probability(expr):
    events = event_space_for(2)
    assert abs(probability(expr, events) + probability(lineage_not(expr), events) - 1.0) < 1e-9


@given(expressions(), expressions())
@settings(max_examples=60)
def test_inclusion_exclusion(left, right):
    events = event_space_for(3)
    p_or = probability(lineage_or(left, right), events)
    p_and = probability(lineage_and(left, right), events)
    assert abs(p_or + p_and - probability(left, events) - probability(right, events)) < 1e-9


@given(expressions())
@settings(max_examples=80)
def test_nnf_and_canonical_preserve_semantics(expr):
    assert equivalent(expr, to_nnf(expr))
    assert equivalent(expr, canonical(expr))


@given(expressions(), st.sampled_from(VARIABLE_NAMES), st.booleans())
@settings(max_examples=80)
def test_restriction_eliminates_the_variable(expr, name, value):
    restricted = restrict(expr, {name: value})
    assert name not in restricted.variables()


@given(expressions(), st.sampled_from(VARIABLE_NAMES))
@settings(max_examples=60)
def test_shannon_expansion_identity(expr, name):
    events = event_space_for(4)
    marginal = events.probability(name)
    expanded = marginal * probability(restrict(expr, {name: True}), events) + (
        1 - marginal
    ) * probability(restrict(expr, {name: False}), events)
    assert abs(probability(expr, events) - expanded) < 1e-9
