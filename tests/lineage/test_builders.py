"""Tests for repro.lineage.builders."""

from __future__ import annotations

from repro.lineage import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    and_not,
    conjunction_of,
    disjunction_of,
    lineage_and,
    lineage_not,
    lineage_or,
    var,
)


class TestAnd:
    def test_identity_true_removed(self):
        assert lineage_and(Var("a"), TRUE) == Var("a")

    def test_annihilator_false(self):
        assert lineage_and(Var("a"), FALSE) == FALSE

    def test_flattening(self):
        nested = lineage_and(Var("a"), lineage_and(Var("b"), Var("c")))
        assert isinstance(nested, And)
        assert nested.operands == (Var("a"), Var("b"), Var("c"))

    def test_duplicates_removed(self):
        assert lineage_and(Var("a"), Var("a")) == Var("a")

    def test_empty_is_true(self):
        assert lineage_and() == TRUE

    def test_single_operand_unwrapped(self):
        assert lineage_and(Var("a")) == Var("a")


class TestOr:
    def test_identity_false_removed(self):
        assert lineage_or(Var("a"), FALSE) == Var("a")

    def test_annihilator_true(self):
        assert lineage_or(Var("a"), TRUE) == TRUE

    def test_flattening(self):
        nested = lineage_or(Var("a"), lineage_or(Var("b"), Var("c")))
        assert isinstance(nested, Or)
        assert nested.operands == (Var("a"), Var("b"), Var("c"))

    def test_duplicates_removed(self):
        assert lineage_or(Var("a"), Var("a"), Var("b")) == Or((Var("a"), Var("b")))

    def test_empty_is_false(self):
        assert lineage_or() == FALSE


class TestNot:
    def test_double_negation_removed(self):
        assert lineage_not(lineage_not(Var("a"))) == Var("a")

    def test_constants_folded(self):
        assert lineage_not(TRUE) == FALSE
        assert lineage_not(FALSE) == TRUE

    def test_plain_negation(self):
        assert lineage_not(Var("a")) == Not(Var("a"))


class TestConvenience:
    def test_var(self):
        assert var("a1") == Var("a1")

    def test_and_not_builds_the_negating_lineage(self):
        expr = and_not(Var("a1"), lineage_or(Var("b3"), Var("b2")))
        assert str(expr) == "a1 ∧ ¬(b3 ∨ b2)"

    def test_and_not_with_false_negative_side(self):
        assert and_not(Var("a1"), FALSE) == Var("a1")

    def test_disjunction_of_empty(self):
        assert disjunction_of([]) == FALSE

    def test_conjunction_of_empty(self):
        assert conjunction_of([]) == TRUE

    def test_disjunction_of_iterable(self):
        assert disjunction_of([Var("x"), Var("y")]) == Or((Var("x"), Var("y")))

    def test_order_preserved_first_occurrence(self):
        expr = lineage_or(Var("b3"), Var("b2"), Var("b3"))
        assert isinstance(expr, Or)
        assert expr.operands == (Var("b3"), Var("b2"))
