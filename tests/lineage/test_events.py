"""Tests for repro.lineage.events."""

from __future__ import annotations

import pytest

from repro.lineage import (
    EventSpace,
    InvalidProbabilityError,
    UnknownEventError,
    Var,
    lineage_and,
)


class TestRegistration:
    def test_register_and_lookup(self):
        space = EventSpace()
        space.register("a1", 0.7)
        assert space.probability("a1") == 0.7
        assert "a1" in space
        assert len(space) == 1

    def test_constructor_mapping(self):
        space = EventSpace({"a1": 0.7, "b1": 0.2})
        assert space.probability("b1") == 0.2

    def test_invalid_probability(self):
        space = EventSpace()
        with pytest.raises(InvalidProbabilityError):
            space.register("a1", 1.5)
        with pytest.raises(InvalidProbabilityError):
            space.register("a1", -0.1)

    def test_boundary_probabilities_allowed(self):
        space = EventSpace({"certain": 1.0, "impossible": 0.0})
        assert space.probability("certain") == 1.0
        assert space.probability("impossible") == 0.0

    def test_reregistering_same_probability_is_idempotent(self):
        space = EventSpace({"a1": 0.7})
        space.register("a1", 0.7)
        assert len(space) == 1

    def test_reregistering_different_probability_raises(self):
        space = EventSpace({"a1": 0.7})
        with pytest.raises(ValueError):
            space.register("a1", 0.8)

    def test_unknown_event(self):
        with pytest.raises(UnknownEventError):
            EventSpace().probability("missing")


class TestOperations:
    def test_merge_combines_disjoint_spaces(self):
        merged = EventSpace({"a1": 0.7}).merge(EventSpace({"b1": 0.2}))
        assert merged.probability("a1") == 0.7
        assert merged.probability("b1") == 0.2

    def test_merge_conflicting_probability_raises(self):
        with pytest.raises(ValueError):
            EventSpace({"a1": 0.7}).merge(EventSpace({"a1": 0.2}))

    def test_merge_does_not_mutate_inputs(self):
        left = EventSpace({"a1": 0.7})
        left.merge(EventSpace({"b1": 0.2}))
        assert "b1" not in left

    def test_names_sorted(self):
        assert EventSpace({"b": 0.1, "a": 0.2}).names() == ["a", "b"]

    def test_as_dict_returns_copy(self):
        space = EventSpace({"a": 0.5})
        exported = space.as_dict()
        exported["a"] = 0.9
        assert space.probability("a") == 0.5

    def test_validate_lineage(self):
        space = EventSpace({"a1": 0.7})
        space.validate_lineage(Var("a1"))
        with pytest.raises(UnknownEventError):
            space.validate_lineage(lineage_and(Var("a1"), Var("b9")))

    def test_restrict(self):
        space = EventSpace({"a": 0.1, "b": 0.2, "c": 0.3})
        restricted = space.restrict(["a", "c"])
        assert set(restricted.names()) == {"a", "c"}
        with pytest.raises(UnknownEventError):
            space.restrict(["zz"])

    def test_iteration(self):
        assert set(iter(EventSpace({"a": 0.1, "b": 0.2}))) == {"a", "b"}
