"""Tests for repro.lineage.sampling."""

from __future__ import annotations

import pytest

from repro.lineage import (
    EventSpace,
    MonteCarloEstimator,
    Var,
    and_not,
    lineage_or,
    probability,
)


@pytest.fixture()
def events() -> EventSpace:
    return EventSpace({"a1": 0.7, "b2": 0.6, "b3": 0.7})


class TestEstimator:
    def test_estimate_close_to_exact(self, events):
        expr = and_not(Var("a1"), lineage_or(Var("b3"), Var("b2")))
        exact = probability(expr, events)
        estimate = MonteCarloEstimator(events, seed=7).estimate(expr, samples=20_000)
        assert estimate.contains(exact)
        assert abs(estimate.value - exact) < 0.02

    def test_estimate_deterministic_given_seed(self, events):
        expr = lineage_or(Var("b3"), Var("b2"))
        first = MonteCarloEstimator(events, seed=11).estimate(expr, samples=2_000)
        second = MonteCarloEstimator(events, seed=11).estimate(expr, samples=2_000)
        assert first.value == second.value

    def test_different_seeds_generally_differ(self, events):
        expr = lineage_or(Var("b3"), Var("b2"))
        first = MonteCarloEstimator(events, seed=1).estimate(expr, samples=501)
        second = MonteCarloEstimator(events, seed=2).estimate(expr, samples=501)
        assert first.samples == second.samples == 501

    def test_confidence_interval_clamped(self, events):
        certain = EventSpace({"x": 1.0})
        estimate = MonteCarloEstimator(certain, seed=3).estimate(Var("x"), samples=100)
        assert estimate.value == 1.0
        assert estimate.upper <= 1.0
        assert estimate.lower >= 0.0

    def test_invalid_samples(self, events):
        with pytest.raises(ValueError):
            MonteCarloEstimator(events).estimate(Var("a1"), samples=0)

    def test_invalid_confidence(self, events):
        with pytest.raises(ValueError):
            MonteCarloEstimator(events).estimate(Var("a1"), samples=10, confidence=1.5)

    def test_unknown_event_raises(self, events):
        with pytest.raises(KeyError):
            MonteCarloEstimator(events).estimate(Var("nope"), samples=10)

    def test_wider_confidence_gives_wider_interval(self, events):
        expr = lineage_or(Var("b3"), Var("b2"))
        narrow = MonteCarloEstimator(events, seed=5).estimate(expr, samples=1_000, confidence=0.8)
        wide = MonteCarloEstimator(events, seed=5).estimate(expr, samples=1_000, confidence=0.99)
        assert wide.half_width > narrow.half_width
