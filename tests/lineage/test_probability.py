"""Tests for repro.lineage.probability."""

from __future__ import annotations

import pytest

from repro.lineage import (
    FALSE,
    TRUE,
    EventSpace,
    ProbabilityComputer,
    Var,
    and_not,
    conditional_probability,
    lineage_and,
    lineage_not,
    lineage_or,
    probabilities,
    probability,
)


@pytest.fixture()
def events() -> EventSpace:
    return EventSpace({"a1": 0.7, "a2": 0.8, "b1": 0.9, "b2": 0.6, "b3": 0.7})


class TestBasics:
    def test_constants(self, events):
        assert probability(TRUE, events) == 1.0
        assert probability(FALSE, events) == 0.0

    def test_single_variable(self, events):
        assert probability(Var("a1"), events) == pytest.approx(0.7)

    def test_negation(self, events):
        assert probability(lineage_not(Var("a1")), events) == pytest.approx(0.3)

    def test_unknown_variable_raises(self, events):
        with pytest.raises(KeyError):
            probability(Var("zz"), events)


class TestIndependentDecomposition:
    def test_conjunction_of_independent_events(self, events):
        assert probability(lineage_and(Var("a1"), Var("b3")), events) == pytest.approx(0.49)

    def test_disjunction_of_independent_events(self, events):
        expected = 1 - (1 - 0.6) * (1 - 0.7)
        assert probability(lineage_or(Var("b2"), Var("b3")), events) == pytest.approx(expected)

    def test_paper_negating_lineage(self, events):
        # ('Ann, ZAK, -', a1 ∧ ¬(b3 ∨ b2), [5,6), 0.084) from Fig. 1b.
        expr = and_not(Var("a1"), lineage_or(Var("b3"), Var("b2")))
        assert probability(expr, events) == pytest.approx(0.084)

    def test_paper_single_negation_lineages(self, events):
        assert probability(and_not(Var("a1"), Var("b3")), events) == pytest.approx(0.21)
        assert probability(and_not(Var("a1"), Var("b2")), events) == pytest.approx(0.28)

    def test_three_way_conjunction(self, events):
        expr = lineage_and(Var("a1"), Var("a2"), Var("b1"))
        assert probability(expr, events) == pytest.approx(0.7 * 0.8 * 0.9)


class TestSharedVariables:
    def test_idempotent_conjunction(self, events):
        assert probability(lineage_and(Var("a1"), Var("a1")), events) == pytest.approx(0.7)

    def test_tautology_via_shannon(self, events):
        expr = lineage_or(Var("a1"), lineage_not(Var("a1")))
        assert probability(expr, events) == pytest.approx(1.0)

    def test_contradiction_via_shannon(self, events):
        expr = lineage_and(Var("a1"), lineage_not(Var("a1")))
        assert probability(expr, events) == pytest.approx(0.0)

    def test_shared_variable_between_operands(self, events):
        # P((a1 ∧ b1) ∨ (a1 ∧ b2)) = P(a1) * P(b1 ∨ b2)
        expr = lineage_or(lineage_and(Var("a1"), Var("b1")), lineage_and(Var("a1"), Var("b2")))
        expected = 0.7 * (1 - (1 - 0.9) * (1 - 0.6))
        assert probability(expr, events) == pytest.approx(expected)

    def test_projection_style_lineage_collapses_to_source(self, events):
        # (a1 ∧ b3) ∨ (a1 ∧ ¬b3) == a1
        expr = lineage_or(lineage_and(Var("a1"), Var("b3")), and_not(Var("a1"), Var("b3")))
        assert probability(expr, events) == pytest.approx(0.7)

    def test_exclusive_cases_sum(self, events):
        # P(a1 ∧ b3) + P(a1 ∧ ¬b3) = P(a1)
        left = probability(lineage_and(Var("a1"), Var("b3")), events)
        right = probability(and_not(Var("a1"), Var("b3")), events)
        assert left + right == pytest.approx(0.7)


class TestComputerAndHelpers:
    def test_computer_reuses_cache(self, events):
        computer = ProbabilityComputer(events)
        expr = lineage_or(lineage_and(Var("a1"), Var("b1")), lineage_and(Var("a1"), Var("b2")))
        first = computer.probability(expr)
        second = computer.probability(expr)
        assert first == second

    def test_probabilities_bulk(self, events):
        values = probabilities({"x": Var("a1"), "y": Var("b1")}, events)
        assert values == {"x": pytest.approx(0.7), "y": pytest.approx(0.9)}

    def test_conditional_probability(self, events):
        value = conditional_probability(Var("a1"), Var("b1"), events)
        assert value == pytest.approx(0.7)  # independent events

    def test_conditional_probability_zero_condition(self, events):
        space = EventSpace({"z": 0.0, "a1": 0.7})
        with pytest.raises(ZeroDivisionError):
            conditional_probability(Var("a1"), Var("z"), space)

    def test_events_property(self, events):
        assert ProbabilityComputer(events).events is events

    def test_probability_in_unit_interval_for_deep_expression(self, events):
        expr = lineage_or(
            lineage_and(Var("a1"), Var("b1"), Var("b2")),
            and_not(Var("a2"), lineage_or(Var("b1"), Var("b3"))),
            lineage_not(Var("b2")),
        )
        value = probability(expr, events)
        assert 0.0 <= value <= 1.0
