"""Tests for repro.lineage.simplify."""

from __future__ import annotations

from repro.lineage import (
    FALSE,
    TRUE,
    Not,
    Var,
    and_not,
    canonical,
    equivalent,
    implies,
    is_contradiction,
    is_read_once,
    is_tautology,
    lineage_and,
    lineage_not,
    lineage_or,
    restrict,
    to_nnf,
)


class TestRestrict:
    def test_restrict_variable(self):
        assert restrict(Var("a"), {"a": True}) == TRUE
        assert restrict(Var("a"), {"a": False}) == FALSE
        assert restrict(Var("a"), {"b": True}) == Var("a")

    def test_restrict_simplifies_connectives(self):
        expr = lineage_and(Var("a"), Var("b"))
        assert restrict(expr, {"a": True}) == Var("b")
        assert restrict(expr, {"a": False}) == FALSE

    def test_restrict_negation(self):
        assert restrict(lineage_not(Var("a")), {"a": True}) == FALSE

    def test_restrict_leaves_unassigned_symbolic(self):
        expr = lineage_or(Var("a"), lineage_and(Var("b"), Var("c")))
        restricted = restrict(expr, {"b": True})
        assert restricted == lineage_or(Var("a"), Var("c"))


class TestSemanticChecks:
    def test_tautology(self):
        assert is_tautology(lineage_or(Var("a"), lineage_not(Var("a"))))
        assert not is_tautology(Var("a"))
        assert is_tautology(TRUE)

    def test_contradiction(self):
        assert is_contradiction(lineage_and(Var("a"), lineage_not(Var("a"))))
        assert not is_contradiction(Var("a"))
        assert is_contradiction(FALSE)

    def test_equivalent_structural_shortcut(self):
        assert equivalent(Var("a"), Var("a"))

    def test_equivalent_commuted_operands(self):
        assert equivalent(lineage_or(Var("b3"), Var("b2")), lineage_or(Var("b2"), Var("b3")))

    def test_equivalent_de_morgan(self):
        left = lineage_not(lineage_or(Var("a"), Var("b")))
        right = lineage_and(lineage_not(Var("a")), lineage_not(Var("b")))
        assert equivalent(left, right)

    def test_not_equivalent(self):
        assert not equivalent(Var("a"), Var("b"))
        assert not equivalent(lineage_and(Var("a"), Var("b")), lineage_or(Var("a"), Var("b")))

    def test_equivalent_absorption(self):
        left = lineage_or(Var("a"), lineage_and(Var("a"), Var("b")))
        assert equivalent(left, Var("a"))

    def test_implies(self):
        assert implies(lineage_and(Var("a"), Var("b")), Var("a"))
        assert not implies(Var("a"), lineage_and(Var("a"), Var("b")))
        assert implies(FALSE, Var("a"))
        assert implies(Var("a"), TRUE)


class TestNormalForms:
    def test_to_nnf_pushes_negation_inward(self):
        expr = lineage_not(lineage_and(Var("a"), Var("b")))
        nnf = to_nnf(expr)
        assert nnf == lineage_or(lineage_not(Var("a")), lineage_not(Var("b")))
        assert equivalent(expr, nnf)

    def test_to_nnf_double_negation(self):
        assert to_nnf(lineage_not(lineage_not(Var("a")))) == Var("a")

    def test_to_nnf_keeps_literal_negations(self):
        assert to_nnf(lineage_not(Var("a"))) == Not(Var("a"))

    def test_to_nnf_preserves_semantics_on_nested_expression(self):
        expr = lineage_not(lineage_or(lineage_and(Var("a"), Var("b")), lineage_not(Var("c"))))
        assert equivalent(expr, to_nnf(expr))

    def test_canonical_sorts_commutative_operands(self):
        assert canonical(lineage_or(Var("b3"), Var("b2"))) == canonical(
            lineage_or(Var("b2"), Var("b3"))
        )

    def test_canonical_recurses(self):
        left = and_not(Var("a1"), lineage_or(Var("b3"), Var("b2")))
        right = and_not(Var("a1"), lineage_or(Var("b2"), Var("b3")))
        assert canonical(left) == canonical(right)

    def test_canonical_preserves_semantics(self):
        expr = lineage_or(lineage_and(Var("c"), Var("a")), lineage_not(Var("b")))
        assert equivalent(expr, canonical(expr))


class TestReadOnce:
    def test_join_lineages_are_read_once(self):
        assert is_read_once(and_not(Var("a1"), lineage_or(Var("b3"), Var("b2"))))
        assert is_read_once(lineage_and(Var("a1"), Var("b3")))

    def test_repeated_variable_is_not_read_once(self):
        expr = lineage_or(lineage_and(Var("a"), Var("b")), lineage_and(Var("a"), Var("c")))
        assert not is_read_once(expr)
