"""Tests for repro.lineage.expr."""

from __future__ import annotations

import pytest

from repro.lineage import FALSE, TRUE, And, LineageError, Not, Or, Var


class TestConstants:
    def test_true_and_false_evaluate_to_themselves(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_constants_have_no_variables(self):
        assert TRUE.variables() == frozenset()
        assert FALSE.variables() == frozenset()

    def test_constants_are_recognised(self):
        assert TRUE.is_constant()
        assert FALSE.is_constant()
        assert not Var("a").is_constant()

    def test_str(self):
        assert str(TRUE) == "true"
        assert str(FALSE) == "false"


class TestVar:
    def test_requires_a_name(self):
        with pytest.raises(LineageError):
            Var("")

    def test_variables(self):
        assert Var("a1").variables() == frozenset({"a1"})

    def test_evaluate(self):
        assert Var("a1").evaluate({"a1": True}) is True
        assert Var("a1").evaluate({"a1": False}) is False

    def test_evaluate_missing_assignment_raises(self):
        with pytest.raises(LineageError):
            Var("a1").evaluate({"b1": True})

    def test_equality_and_hash_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert len({Var("x"), Var("x")}) == 1

    def test_str(self):
        assert str(Var("b2")) == "b2"


class TestConnectives:
    def test_and_requires_two_operands(self):
        with pytest.raises(LineageError):
            And((Var("a"),))

    def test_or_requires_two_operands(self):
        with pytest.raises(LineageError):
            Or((Var("a"),))

    def test_and_evaluation(self):
        expr = And((Var("a"), Var("b")))
        assert expr.evaluate({"a": True, "b": True}) is True
        assert expr.evaluate({"a": True, "b": False}) is False

    def test_or_evaluation(self):
        expr = Or((Var("a"), Var("b")))
        assert expr.evaluate({"a": False, "b": False}) is False
        assert expr.evaluate({"a": False, "b": True}) is True

    def test_not_evaluation(self):
        assert Not(Var("a")).evaluate({"a": True}) is False
        assert Not(Var("a")).evaluate({"a": False}) is True

    def test_variables_are_unioned(self):
        expr = And((Var("a"), Or((Var("b"), Var("c")))))
        assert expr.variables() == frozenset({"a", "b", "c"})

    def test_children(self):
        inner = Or((Var("b"), Var("c")))
        expr = And((Var("a"), inner))
        assert expr.children() == (Var("a"), inner)
        assert Not(Var("a")).children() == (Var("a"),)
        assert Var("a").children() == ()

    def test_walk_and_size(self):
        expr = And((Var("a"), Not(Var("b"))))
        assert expr.size() == 4
        assert Var("a") in list(expr.walk())

    def test_str_renders_paper_notation(self):
        expr = And((Var("a1"), Not(Or((Var("b3"), Var("b2"))))))
        assert str(expr) == "a1 ∧ ¬(b3 ∨ b2)"


class TestOperatorSugar:
    def test_and_operator(self):
        assert (Var("a") & Var("b")).evaluate({"a": True, "b": True}) is True

    def test_or_operator(self):
        assert (Var("a") | Var("b")).evaluate({"a": False, "b": True}) is True

    def test_invert_operator(self):
        assert (~Var("a")).evaluate({"a": False}) is True

    def test_combined_expression(self):
        expr = Var("a1") & ~(Var("b3") | Var("b2"))
        assert expr.variables() == frozenset({"a1", "b2", "b3"})
        assert expr.evaluate({"a1": True, "b2": False, "b3": False}) is True
        assert expr.evaluate({"a1": True, "b2": True, "b3": False}) is False
