"""Shared helpers for the recovery test suite.

Chaos tests compare a failure-injected run against an unfailed one, so the
referee must be exact: :func:`settled_rows` renders every settled tuple —
fact, canonical lineage, interval and probability — through ``repr``, which
round-trips floats bit-for-bit.  Two runs agree here iff their settled
outputs are tuple-for-tuple, bitwise-probability identical.

(``repr`` keys rather than raw tuples because outer-join padding puts
``None`` next to strings in the fact, which plain tuple ordering rejects.)
"""

from __future__ import annotations

from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog
from repro.lineage import canonical
from tests.conftest import make_random_relations


def query_catalog(
    seed: int,
    left_size: int = 90,
    right_size: int = 90,
    num_keys: int = 5,
    disorder: int = 4,
    watermark_every: int = 4,
):
    """A catalog with two registered streams ``l``/``r`` over random data."""
    left, right, _theta = make_random_relations(
        seed, left_size=left_size, right_size=right_size, num_keys=num_keys
    )
    catalog = Catalog()
    catalog.register_stream(
        "l",
        stream_def(
            left,
            ReplayConfig(disorder=disorder, seed=seed, watermark_every=watermark_every),
        ),
    )
    catalog.register_stream(
        "r",
        stream_def(
            right,
            ReplayConfig(
                disorder=disorder, seed=seed + 1, watermark_every=watermark_every
            ),
        ),
    )
    return catalog, left, right


def settled_rows(relation) -> list[str]:
    """Exact, order-insensitive rendering of a settled output relation."""
    return sorted(
        repr((t.fact, str(canonical(t.lineage)), t.start, t.end, t.probability))
        for t in relation
    )
