"""Checkpoint codec: snapshot + suffix replay ≡ the uninterrupted run.

These tests drive :class:`repro.runtime.worker.Worker` instances directly
(no transport): one worker consumes the whole element sequence, a second
is snapshotted mid-stream, and a third — fresh — is restored from that
snapshot and fed only the suffix.  The restored worker must finish with
settled output and operator statistics identical to the uninterrupted one,
bit for bit.
"""

from __future__ import annotations

import pytest

from repro.lineage import canonical
from repro.parallel.stream_exec import StreamShardSpec
from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_elements,
    restore_worker,
    snapshot_worker,
)
from repro.runtime.worker import SOURCE_CHANNEL, Worker
from repro.stream.elements import Watermark

from tests.recovery.conftest import query_catalog

ON = (("Key", "Key"),)
SEED = 41


class _NullEmitter:
    """Stream shards collect outputs locally; nothing goes downstream."""

    def send(self, target, channel, tagged) -> None:  # pragma: no cover
        raise AssertionError("stream shards have no downstream")

    def done(self, target) -> None:
        pass

    def flush(self) -> None:
        pass


def _elements(seed: int = SEED):
    from repro.stream.source import merge_tagged

    catalog, _left, _right = query_catalog(seed, left_size=60, right_size=60)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    merged = list(merge_tagged(left_def.replay(), right_def.replay(), seed=seed))
    return catalog, merged


def _spec(catalog, kind: str, materialize: bool = False) -> StreamShardSpec:
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    event_probabilities = None
    if materialize:
        merged_events = left_def.events.merge(right_def.events)
        event_probabilities = {
            name: merged_events.probability(name) for name in merged_events.names()
        }
    return StreamShardSpec(
        kind,
        left_def.schema.attributes,
        right_def.schema.attributes,
        ON,
        event_probabilities=event_probabilities,
    )


def _feed(worker: Worker, elements) -> None:
    for tagged in elements:
        channel = SOURCE_CHANNEL if isinstance(tagged.element, Watermark) else None
        worker.accept(channel, tagged)


def _rows(report) -> list[str]:
    return sorted(
        repr((t.fact, str(canonical(t.lineage)), t.start, t.end, t.probability))
        for t in report.outputs
    )


@pytest.mark.parametrize("kind", ("anti", "left_outer", "full_outer"))
@pytest.mark.parametrize("cut_fraction", (0.25, 0.5, 0.9))
def test_snapshot_plus_suffix_equals_uninterrupted_run(kind, cut_fraction):
    """Snapshot at any boundary, restore into a fresh worker, feed the
    suffix: settled output and stats match the straight-through run.
    full_outer covers the mirrored reverse maintainer; probabilities are
    materialized so the per-key computer caches ride the snapshot too."""
    catalog, merged = _elements()
    spec = _spec(catalog, kind, materialize=True)
    cut = int(len(merged) * cut_fraction)

    straight = Worker(spec, _NullEmitter())
    _feed(straight, merged)
    expected = straight.finish()

    original = Worker(spec, _NullEmitter())
    _feed(original, merged[:cut])
    payload = snapshot_worker(original, cut)
    assert checkpoint_elements(payload) == cut

    restored = Worker(spec, _NullEmitter())
    assert restore_worker(restored, payload) == cut
    _feed(restored, merged[cut:])
    resumed = restored.finish()

    assert _rows(resumed) == _rows(expected)
    # Latency values are wall-clock, but one is recorded per settled emit —
    # the restored worker must account for every pre-checkpoint emit too.
    assert len(resumed.emit_latencies) == len(expected.emit_latencies)
    assert resumed.late_dropped == expected.late_dropped


def test_snapshot_is_picklable_and_made_of_primitives():
    """Checkpoint frames ride the socket transport's pickle framing, so the
    payload must round-trip through pickle without custom classes doing the
    heavy lifting (compact codecs, not per-node class metadata)."""
    import pickle

    catalog, merged = _elements()
    spec = _spec(catalog, "left_outer")
    worker = Worker(spec, _NullEmitter())
    _feed(worker, merged[: len(merged) // 2])
    payload = snapshot_worker(worker, len(merged) // 2)
    clone = pickle.loads(pickle.dumps(payload))
    assert clone == payload
    assert clone[0] == CHECKPOINT_VERSION


def test_version_mismatch_is_rejected_loudly():
    catalog, merged = _elements()
    spec = _spec(catalog, "anti")
    worker = Worker(spec, _NullEmitter())
    _feed(worker, merged[:20])
    payload = snapshot_worker(worker, 20)
    stale = (CHECKPOINT_VERSION + 1,) + payload[1:]
    fresh = Worker(spec, _NullEmitter())
    with pytest.raises(ValueError, match="checkpoint version"):
        restore_worker(fresh, stale)


def test_non_collecting_workers_are_not_checkpointable():
    """Dataflow node workers (peer edges, no locally collected outputs)
    must be refused — a single-worker snapshot cannot capture in-flight
    elements on their edges."""
    catalog, merged = _elements()
    spec = _spec(catalog, "left_outer")
    worker = Worker(spec, _NullEmitter())
    _feed(worker, merged[:10])
    worker._outputs = None  # what a non-collecting spec produces
    with pytest.raises(ValueError, match="checkpointable"):
        snapshot_worker(worker, 10)


def test_checkpoint_elements_of_none_is_zero():
    assert checkpoint_elements(None) == 0
