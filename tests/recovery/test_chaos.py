"""Chaos tests: SIGKILL socket workers mid-run, demand bitwise-equal output.

The referee for every test is :func:`tests.recovery.conftest.settled_rows`:
the failure-injected run must settle tuple-for-tuple, bitwise-probability
identical to an unfailed run of the same query.  Small micro-batches keep
the driver's emitter flushing frequently, so kills are detected promptly
and checkpoints actually ship before the axe falls.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExecutionOptions
from repro.recovery import SeatFailure
from repro.recovery.chaos import ChaosInjector, random_kill_plan
from repro.stream import StreamQuery

from tests.recovery.conftest import query_catalog, settled_rows

SEED = 29
ON = (("Key", "Key"),)
#: Every way the driver may classify a SIGKILLed seat, depending on whether
#: the send, the result wait, or the connection itself surfaced the death.
CAUSES = ("connection_lost", "connection_failure", "timeout", "worker_error")
#: Events both streams contribute in total (two 90-tuple relations).
EVENTS_TOTAL = 180


def _options(**overrides) -> ExecutionOptions:
    base = dict(
        transport="sockets",
        partitions=3,
        micro_batch_size=8,
        materialize_probabilities=True,
        restart_limit=3,
    )
    base.update(overrides)
    return ExecutionOptions(**base)


def _run(kind: str, options: ExecutionOptions, chaos=None):
    catalog, _left, _right = query_catalog(SEED)
    query = StreamQuery(catalog, kind, "l", "r", ON, config=options)
    return query.run(merge_seed=SEED, chaos=chaos)


_BASELINES: dict[str, list[str]] = {}


def _baseline_rows(kind: str) -> list[str]:
    """The unfailed settled output, computed once per kind (sockets,
    recovery disabled — the pre-recovery code path)."""
    if kind not in _BASELINES:
        result = _run(kind, _options(restart_limit=0))
        assert result.workers == "sockets"
        _BASELINES[kind] = settled_rows(result.relation)
    return _BASELINES[kind]


def test_unfailed_run_through_the_recovering_router_is_identical():
    """restart_limit > 0 routes through the recovering driver even when
    nothing dies — the hot path must not change the settled output."""
    result = _run("left_outer", _options())
    assert result.workers == "sockets"
    assert result.recoveries() == []
    assert settled_rows(result.relation) == _baseline_rows("left_outer")


def test_from_zero_recovery_settles_bitwise_identical():
    chaos = ChaosInjector([(13, 0), (97, 1)])
    result = _run("left_outer", _options(), chaos=chaos)
    assert chaos.kills_signalled == 2
    events = result.recoveries()
    assert len(events) == 2
    assert {event.seat for event in events} == {0, 1}
    for event in events:
        # No checkpointing configured: every recovery replays from zero.
        assert event.checkpoint_elements == 0
        assert event.elements_replayed > 0
        assert event.cause in CAUSES
        # Even locally spawned seats report the endpoint they lived at.
        assert event.address and ":" in event.address
    assert settled_rows(result.relation) == _baseline_rows("left_outer")
    # The recovery surfaces in the run report too.
    report = result.explain_analyze()
    assert "recoveries: 2" in report and "from-zero" in report


def test_checkpointed_recovery_replays_only_the_suffix():
    """checkpoint_interval=0.0 snapshots at every micro-batch boundary, so
    a late kill restores a non-empty checkpoint and replays strictly less
    than the shard's history.  full_outer exercises the mirrored reverse
    maintainer and the per-key probability caches in the snapshot.
    wait_for_checkpoint holds the kill until the driver actually received
    a checkpoint frame — under CPU contention the victim worker can lag
    the router by a whole micro-batch, and a pre-checkpoint kill
    legitimately (but uninterestingly) recovers from zero."""
    chaos = ChaosInjector([(150, 2)], wait_for_checkpoint=True)
    result = _run("full_outer", _options(checkpoint_interval=0.0), chaos=chaos)
    assert chaos.kills_signalled == 1
    (event,) = result.recoveries()
    assert event.seat == 2
    assert event.checkpoint_elements > 0
    assert event.elements_replayed > 0
    assert settled_rows(result.relation) == _baseline_rows("full_outer")
    assert f"checkpoint@{event.checkpoint_elements}" in result.explain_analyze()


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_kill_plans_settle_bitwise_identical(seed: int):
    """Hypothesis-seeded chaos: kill 1..K-1 of the K=3 seats at random
    points; the settled output never changes."""
    plan = random_kill_plan(seed, seats=3, events_total=EVENTS_TOTAL)
    chaos = ChaosInjector(plan)
    result = _run("left_outer", _options(checkpoint_interval=0.0), chaos=chaos)
    assert chaos.kills_signalled == len(plan)
    assert len(result.recoveries()) == len(plan)
    assert settled_rows(result.relation) == _baseline_rows("left_outer")


def test_restart_limit_exhaustion_raises_the_seat_failure():
    """Killing the same logical seat more times than restart_limit allows
    surfaces the SeatFailure itself — with the seat and its placement
    address — instead of recovering silently forever.  Driven through the
    router directly (micro_batch_size=1: one frame per element) so each
    kill is detected at a controlled point."""
    from repro.recovery.driver import RecoveringStreamRouter
    from repro.runtime.transport import RuntimeJob
    from repro.parallel.stream_exec import StreamShardSpec
    from repro.stream.elements import Watermark
    from repro.stream.source import merge_tagged

    catalog, _left, _right = query_catalog(SEED)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    elements = list(merge_tagged(left_def.replay(), right_def.replay(), seed=SEED))
    spec = StreamShardSpec(
        "left_outer", left_def.schema.attributes, right_def.schema.attributes, ON
    )
    options = ExecutionOptions(
        transport="sockets", partitions=1, micro_batch_size=1, restart_limit=1
    )
    job = RuntimeJob((spec,), micro_batch_size=1)
    router = RecoveringStreamRouter((spec,), options, job)

    def route(tagged) -> None:
        if isinstance(tagged.element, Watermark):
            router.route_watermark(tagged)
        else:
            router.route_event(0, tagged)

    try:
        iterator = iter(elements)
        for _ in range(10):
            route(next(iterator))
        assert router.kill_seat(0)
        # One frame per element: the broken connection surfaces within a
        # couple of sends and the (single allowed) recovery runs inline.
        # The pacing sleep lets the driver's reader thread observe the
        # seat's FIN — without it, all remaining frames can be sent before
        # the reader ever wakes up.
        for tagged in iterator:
            route(tagged)
            if router.recoveries:
                break
            time.sleep(0.002)
        assert len(router.recoveries) == 1, "first kill was never recovered"
        # Kill the replacement seat.  (No assert: if the replacement
        # already died on its own the exhaustion below triggers anyway.)
        router.kill_seat(0)
        with pytest.raises(SeatFailure) as excinfo:
            for tagged in iterator:
                route(tagged)
            router.done(0)
            router.finish_seat(0)
        failure = excinfo.value
        assert failure.seat == 0
        assert failure.address and ":" in failure.address
        assert failure.cause in CAUSES
    finally:
        router.release()


# --------------------------------------------------------------------------- #
# injector / plan unit tests (no sockets)
# --------------------------------------------------------------------------- #
def test_random_kill_plan_is_deterministic_and_bounded():
    plan = random_kill_plan(7, seats=4, events_total=500)
    assert plan == random_kill_plan(7, seats=4, events_total=500)
    points = [after for after, _seat in plan]
    victims = [seat for _after, seat in plan]
    assert points == sorted(points) and len(set(points)) == len(points)
    assert len(set(victims)) == len(victims)
    assert 1 <= len(plan) <= 3  # at least one of the 4 seats survives
    assert all(0 < after < 500 for after in points)
    assert all(0 <= seat < 4 for seat in victims)


def test_random_kill_plan_rejects_single_seat():
    with pytest.raises(ValueError):
        random_kill_plan(1, seats=1, events_total=100)


def test_injector_records_misses_without_a_router():
    chaos = ChaosInjector([(5, 0)])
    chaos.on_event(4)
    assert chaos.executed == []
    chaos.on_event(5)
    assert chaos.executed == [(5, 0, False)]
    assert chaos.kills_signalled == 0
