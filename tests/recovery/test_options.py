"""The unified ExecutionOptions surface, its shims, and symmetric results.

Covers the API-redesign satellites: legacy ``StreamQueryConfig`` /
``ParallelConfig`` / ``Engine(stream_config=...)`` spellings keep working
behind DeprecationWarnings, validation rejects nonsense knobs loudly,
StreamQuery and DataflowQuery results expose the identical introspection
surface (``metrics()``/``trace()``/``recoveries()``/``explain_analyze()``),
EXPLAIN renders the recovery marker, and the socket transport honours the
configurable result-frame timeout with the seat's address in the error.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOptions
from repro.dataflow import DataflowQuery, NodeSpec
from repro.engine import Engine, JoinStrategy
from repro.parallel import ParallelConfig
from repro.stream import StreamQuery, StreamQueryConfig

from tests.dataflow.conftest import make_stream_catalog
from tests.recovery.conftest import query_catalog

ON = (("Key", "Key"),)


# --------------------------------------------------------------------------- #
# construction + validation
# --------------------------------------------------------------------------- #
def test_options_defaults_are_the_historical_ones():
    options = ExecutionOptions()
    assert options.transport == "threads"
    assert options.workers == "threads"  # legacy read-only alias
    assert options.partitions == 1
    assert options.checkpoint_interval is None
    assert options.restart_limit == 0
    assert options.seat_timeout is None
    assert not options.recovery_enabled


@pytest.mark.parametrize(
    "kwargs",
    (
        {"transport": "carrier-pigeons"},
        {"partitions": 0},
        {"micro_batch_size": 0},
        {"buffer_capacity": -1},
        {"trace_sample_rate": 1.5},
        {"checkpoint_interval": -0.1},
        {"restart_limit": -1},
        {"seat_timeout": 0.0},
    ),
)
def test_options_validation_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        ExecutionOptions(**kwargs)


def test_recovery_requires_sockets_and_a_restart_budget():
    assert ExecutionOptions(transport="sockets", restart_limit=1).recovery_enabled
    assert not ExecutionOptions(transport="sockets").recovery_enabled
    assert not ExecutionOptions(transport="threads", restart_limit=1).recovery_enabled


def test_options_is_frozen_and_importable_from_the_package_root():
    import repro

    assert repro.ExecutionOptions is ExecutionOptions
    with pytest.raises(Exception):
        ExecutionOptions().partitions = 2  # type: ignore[misc]


# --------------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------------- #
def test_stream_query_config_shim_returns_options_and_warns():
    with pytest.warns(DeprecationWarning, match="StreamQueryConfig"):
        options = StreamQueryConfig(
            partitions=2,
            workers="sockets",
            early_emit=True,
            checkpoint_interval=1.5,
            restart_limit=2,
            seat_timeout=30.0,
        )
    assert isinstance(options, ExecutionOptions)
    assert options.transport == "sockets"
    assert options.workers == "sockets"
    assert options.partitions == 2
    assert options.early_emit
    # The recovery knobs flow straight through the legacy spelling too.
    assert options.checkpoint_interval == 1.5
    assert options.restart_limit == 2
    assert options.seat_timeout == 30.0
    assert options.recovery_enabled


def test_parallel_config_moved_kwargs_warn_but_still_work():
    with pytest.warns(DeprecationWarning, match="ParallelConfig"):
        config = ParallelConfig(max_workers=3, transport="processes")
    assert config.max_workers == 3
    assert config.transport == "processes"


def test_parallel_config_without_moved_kwargs_is_silent():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ParallelConfig(max_workers=3)


def test_engine_stream_config_kwarg_warns_and_is_honoured():
    options = ExecutionOptions(partitions=2, early_emit=True)
    with pytest.warns(DeprecationWarning, match="stream_config"):
        engine = Engine(stream_config=options)
    assert engine._stream_config is options


# --------------------------------------------------------------------------- #
# symmetric result introspection
# --------------------------------------------------------------------------- #
INTROSPECTION = ("metrics", "trace", "recoveries", "explain_analyze", "explain_tuple")


def test_stream_and_dataflow_results_share_the_introspection_surface():
    catalog, *_ = query_catalog(23, left_size=30, right_size=30)
    stream_result = StreamQuery(
        catalog, "left_outer", "l", "r", ON, config=ExecutionOptions()
    ).run(merge_seed=23)

    graph_catalog, *_ = make_stream_catalog(23, sizes=(20, 20, 15), disorder=3)
    graph_result = DataflowQuery(
        graph_catalog,
        [NodeSpec("n1", "left_outer", "a", "b", ON)],
        ExecutionOptions(early_emit=True),
    ).run(backend="inline", merge_seed=23)

    for result in (stream_result, graph_result):
        for name in INTROSPECTION:
            assert callable(getattr(result, name)), name
        # No instrumentation, no failures: the quiet answers agree too.
        assert result.metrics() is None
        assert result.trace() is None
        assert result.recoveries() == []
        assert isinstance(result.explain_analyze(), str)

    # Graph runs never recover (multi-node in-flight edges are not
    # checkpointable), so the surface is present but permanently empty.
    assert graph_result.recovery_events == []


def test_stream_result_reports_recoveries_in_explain_analyze():
    from repro.recovery.chaos import ChaosInjector

    catalog, *_ = query_catalog(23)
    options = ExecutionOptions(
        transport="sockets", partitions=2, micro_batch_size=8, restart_limit=2
    )
    result = StreamQuery(catalog, "anti", "l", "r", ON, config=options).run(
        merge_seed=23, chaos=ChaosInjector([(40, 1)])
    )
    events = result.recoveries()
    assert len(events) == 1
    report = result.explain_analyze()
    assert "recoveries: 1" in report
    assert events[0].describe() in report


# --------------------------------------------------------------------------- #
# EXPLAIN marker
# --------------------------------------------------------------------------- #
SQL = "SELECT * FROM STREAM sl TP LEFT OUTER JOIN STREAM sr ON sl.Key = sr.Key"


def _explain_with(options) -> str:
    from repro.datasets import ReplayConfig, stream_def

    catalog, left, right = query_catalog(23, left_size=20, right_size=20)
    engine = Engine(default_strategy=JoinStrategy.NJ, options=options)
    engine.register_stream("sl", stream_def(left, ReplayConfig(disorder=3, seed=23)))
    engine.register_stream("sr", stream_def(right, ReplayConfig(disorder=3, seed=24)))
    return engine.explain_sql(SQL)


def test_explain_marks_checkpointed_recovery():
    plan = _explain_with(
        ExecutionOptions(
            transport="sockets", partitions=2, restart_limit=1, checkpoint_interval=2.0
        )
    )
    assert "[recoverable ckpt=2s]" in plan


def test_explain_marks_replay_from_zero_recovery():
    plan = _explain_with(
        ExecutionOptions(transport="sockets", partitions=2, restart_limit=1)
    )
    assert "[recoverable replay-from-zero]" in plan


def test_explain_has_no_marker_without_a_restart_budget():
    plan = _explain_with(ExecutionOptions(transport="sockets", partitions=2))
    assert "recoverable" not in plan


# --------------------------------------------------------------------------- #
# configurable seat timeout
# --------------------------------------------------------------------------- #
def test_socket_seat_timeout_raises_with_the_seat_address():
    from repro.parallel.stream_exec import StreamShardSpec
    from repro.recovery import SeatFailure
    from repro.runtime.sockets import SocketSession
    from repro.runtime.transport import RuntimeJob

    catalog, *_ = query_catalog(23, left_size=10, right_size=10)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    spec = StreamShardSpec(
        "left_outer", left_def.schema.attributes, right_def.schema.attributes, ON
    )
    session = SocketSession(
        RuntimeJob((spec,), micro_batch_size=1, result_timeout=0.3)
    )
    try:
        # Never send done(): the worker keeps waiting for elements, so the
        # driver's result wait must trip the configured timeout instead of
        # blocking forever (the historical behaviour of timeout=None).
        with pytest.raises(SeatFailure) as excinfo:
            session.finish_seat(0)
        failure = excinfo.value
        assert failure.seat == 0
        assert failure.cause == "timeout"
        assert failure.address and ":" in failure.address
        assert "produced no result" in str(failure)
    finally:
        session.release()


def test_seat_timeout_option_flows_through_a_full_socket_run():
    """A generous seat_timeout must not disturb a healthy run — the knob is
    plumbed from ExecutionOptions through the job into every session."""
    catalog, *_ = query_catalog(23, left_size=30, right_size=30)
    options = ExecutionOptions(
        transport="sockets", partitions=2, micro_batch_size=8, seat_timeout=60.0
    )
    result = StreamQuery(catalog, "left_outer", "l", "r", ON, config=options).run(
        merge_seed=23
    )
    assert result.workers == "sockets"
    assert result.outputs_emitted > 0
