"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Schema, TPRelation, equi_join_on
from repro.lineage import canonical
from repro.relation import EquiJoinCondition


# --------------------------------------------------------------------------- #
# the paper's running example (Fig. 1a)
# --------------------------------------------------------------------------- #
@pytest.fixture()
def wants_to_visit() -> TPRelation:
    """Relation ``a`` (wantsToVisit) of the paper's Fig. 1a."""
    return TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [
            ("Ann", "ZAK", "a1", 2, 8, 0.7),
            ("Jim", "WEN", "a2", 7, 10, 0.8),
        ],
        name="a",
    )


@pytest.fixture()
def hotel_availability() -> TPRelation:
    """Relation ``b`` (hotelAvailability) of the paper's Fig. 1a."""
    return TPRelation.from_rows(
        Schema.of("Hotel", "Loc"),
        [
            ("hotel3", "SOR", "b1", 1, 4, 0.9),
            ("hotel2", "ZAK", "b2", 5, 8, 0.6),
            ("hotel1", "ZAK", "b3", 4, 6, 0.7),
        ],
        name="b",
    )


@pytest.fixture()
def loc_theta(wants_to_visit, hotel_availability) -> EquiJoinCondition:
    """The paper's join condition θ: a.Loc = b.Loc."""
    return equi_join_on(
        wants_to_visit.schema, hotel_availability.schema, [("Loc", "Loc")]
    )


# --------------------------------------------------------------------------- #
# random relation factory (shared by several test modules)
# --------------------------------------------------------------------------- #
def make_random_relations(
    seed: int,
    left_size: int = 12,
    right_size: int = 12,
    num_keys: int = 3,
    time_span: int = 30,
) -> tuple[TPRelation, TPRelation, EquiJoinCondition]:
    """Build a random but constraint-valid pair of TP relations and a θ.

    Same-fact tuples are laid out on disjoint intervals per key timeline; the
    payload attribute is a serial so facts are unique, which keeps the TP
    constraint trivially satisfied while still exercising multiple tuples per
    join key.
    """
    rng = random.Random(seed)

    def build(prefix: str, size: int) -> TPRelation:
        schema = Schema.of("Key", "Serial")
        rows = []
        for index in range(size):
            key = f"k{rng.randrange(num_keys)}"
            start = rng.randrange(0, time_span)
            end = start + rng.randrange(1, 8)
            probability = round(rng.uniform(0.05, 0.95), 3)
            rows.append((key, f"{prefix}{index}", f"{prefix}{index}", start, end, probability))
        return TPRelation.from_rows(schema, rows, name=prefix)

    left = build("l", left_size)
    right = build("r", right_size)
    theta = equi_join_on(left.schema, right.schema, [("Key", "Key")])
    return left, right, theta


@pytest.fixture()
def random_relation_factory():
    """Fixture exposing :func:`make_random_relations` to tests."""
    return make_random_relations


# --------------------------------------------------------------------------- #
# result comparison helpers
# --------------------------------------------------------------------------- #
def canonical_rows(relation: TPRelation, with_probability: bool = True) -> set[tuple]:
    """A canonical, order-insensitive representation of a join result.

    Lineages are canonicalised (commutative operands sorted) so results that
    differ only in operand order compare equal; probabilities are rounded to
    absorb floating-point noise.
    """
    rows = set()
    for tp_tuple in relation:
        probability = (
            None
            if (not with_probability or tp_tuple.probability is None)
            else round(tp_tuple.probability, 9)
        )
        rows.add(
            (
                tp_tuple.fact,
                tp_tuple.interval.start,
                tp_tuple.interval.end,
                str(canonical(tp_tuple.lineage)),
                probability,
            )
        )
    return rows


def assert_same_result(left: TPRelation, right: TPRelation, with_probability: bool = True) -> None:
    """Assert that two join results contain the same tuples (order-insensitive)."""
    assert canonical_rows(left, with_probability) == canonical_rows(right, with_probability)
