"""DataflowGraph validation, schema inference and topology accessors."""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowGraph, GraphError, NodeSpec
from repro.stream import LEFT, RIGHT


NODES = [
    NodeSpec("n1", "anti", "a", "b", (("Key", "Key"),)),
    NodeSpec("n2", "full_outer", "n1", "c", (("Key", "Key"),)),
]


def test_graph_resolves_sources_and_sink(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(1)
    graph = DataflowGraph(catalog, NODES)
    assert graph.source_names == ["a", "b", "c"]
    assert graph.node_names == ["n1", "n2"]
    assert graph.sink == "n2"
    assert graph.consumers_of("n1") == [("n2", LEFT)]
    assert graph.consumers_of("c") == [("n2", RIGHT)]


def test_schema_chains_with_node_name_prefixes(stream_catalog_factory):
    catalog, a, _b, c = stream_catalog_factory(2)
    graph = DataflowGraph(catalog, NODES)
    assert graph.schema_of("n1") == a.schema  # anti join keeps the left schema
    combined = graph.schema_of("n2")
    assert combined.attributes == ("Key", "Serial", "c.Key", "c.Serial")


def test_unknown_input_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(3)
    with pytest.raises(GraphError):
        DataflowGraph(catalog, [NodeSpec("n1", "anti", "a", "nope", ())])


def test_unknown_kind_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(4)
    with pytest.raises(GraphError):
        DataflowGraph(catalog, [NodeSpec("n1", "semi", "a", "b", ())])


def test_duplicate_node_name_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(5)
    with pytest.raises(GraphError):
        DataflowGraph(
            catalog,
            [
                NodeSpec("n1", "anti", "a", "b", ()),
                NodeSpec("n1", "anti", "a", "c", ()),
            ],
        )


def test_node_name_clashing_with_stream_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(6)
    with pytest.raises(GraphError):
        DataflowGraph(catalog, [NodeSpec("c", "anti", "a", "b", ())])


def test_out_of_order_nodes_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(7)
    with pytest.raises(GraphError):
        DataflowGraph(catalog, list(reversed(NODES)))


def test_empty_graph_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(8)
    with pytest.raises(GraphError):
        DataflowGraph(catalog, [])


def test_merged_events_cover_all_sources(stream_catalog_factory):
    catalog, a, b, c = stream_catalog_factory(9)
    graph = DataflowGraph(catalog, NODES)
    names = set(graph.merged_events().names())
    for relation in (a, b, c):
        for name in relation.events.names():
            assert name in names


def test_describe_lists_nodes(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(10)
    text = DataflowGraph(catalog, NODES).describe()
    assert "2 nodes" in text and "sink=n2" in text
    assert "anti(a, b)" in text and "full_outer(n1, c)" in text
