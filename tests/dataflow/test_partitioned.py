"""Partitioned dataflow stages: routing, watermarks, determinism.

The partition axis must be *invisible* in the settled output: for any
partition degree and backend, the same graph over the same replays settles
to the identical canonical tuple sequence with bitwise-equal probabilities.
These tests pin that, plus the two local rules the axis is built from —
stable key routing and the min-over-partitions stage watermark.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import Schema
from repro.dataflow import (
    ChannelWatermarks,
    DataflowGraph,
    DataflowQuery,
    GraphError,
    NodeSpec,
    RevisionJoin,
    assert_converged,
    identity_rows,
    route_partition,
    stage_watermark,
)
from repro.parallel.plan import stable_hash
from repro.stream import LEFT, RIGHT, StreamQueryConfig, Tagged, Watermark
from repro.stream.elements import StreamEvent

from tests.dataflow.conftest import make_relation, make_stream_catalog

PARTITIONED_TREE = [
    NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),), partitions=2),
    NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),), partitions=3),
]


# --------------------------------------------------------------------------- #
# graph validation
# --------------------------------------------------------------------------- #
def test_partition_degree_must_be_positive(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(1)
    with pytest.raises(GraphError, match="partitions must be at least 1"):
        DataflowGraph(
            catalog,
            [NodeSpec("n1", "anti", "a", "b", (("Key", "Key"),), partitions=0)],
        )


def test_partitioning_requires_an_equi_key(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(1)
    with pytest.raises(GraphError, match="needs an equi-join condition"):
        DataflowGraph(catalog, [NodeSpec("n1", "anti", "a", "b", (), partitions=2)])


def test_partition_counts_accessors(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(1)
    graph = DataflowGraph(catalog, PARTITIONED_TREE)
    assert graph.partition_counts == [2, 3]
    assert graph.partitions_of("n1") == 2
    assert graph.partitions_of("a") == 1  # sources are never partitioned
    with pytest.raises(GraphError):
        graph.partitions_of("nope")


# --------------------------------------------------------------------------- #
# key routing
# --------------------------------------------------------------------------- #
def test_routing_is_stable_and_key_consistent():
    schema = Schema.of("Key", "Serial")
    join = RevisionJoin("inner", schema, schema, (("Key", "Key"),))
    relation = make_relation("x", 32, seed=5, num_keys=7)
    for tp_tuple in relation:
        event = StreamEvent(tp_tuple)
        partition = route_partition(join, LEFT, event, 4)
        # Emits and the retractions that must unwind them land together.
        assert partition == route_partition(join, LEFT, event, 4)
        assert partition == stable_hash((tp_tuple.fact[0],)) % 4
    # A single partition never routes anywhere else.
    assert route_partition(join, RIGHT, StreamEvent(next(iter(relation))), 1) == 0


# --------------------------------------------------------------------------- #
# stage watermark = min over partitions
# --------------------------------------------------------------------------- #
def test_stage_watermark_is_min_over_partition_watermarks():
    schema = Schema.of("Key", "Serial")
    partitions = [
        RevisionJoin("inner", schema, schema, (("Key", "Key"),)) for _ in range(3)
    ]
    # No input yet: every derived watermark is -inf, so the stage's is too.
    assert stage_watermark(partitions) == float("-inf")
    for join, (left, right) in zip(partitions, ((10.0, 12.0), (5.0, 9.0), (7.0, 7.0))):
        join.process(Tagged(LEFT, Watermark(left)))
        join.process(Tagged(RIGHT, Watermark(right)))
    assert [join.derived_watermark() for join in partitions] == [10.0, 5.0, 7.0]
    assert stage_watermark(partitions) == 5.0
    # Advancing the laggard partition advances the stage watermark.
    partitions[1].process(Tagged(LEFT, Watermark(11.0)))
    assert stage_watermark(partitions) == 7.0


def test_channel_watermarks_merge_min_and_ignore_regressions():
    tracker = ChannelWatermarks(["p0", "p1"])
    assert tracker.update("p0", 10.0) is None  # p1 still at -inf
    assert tracker.update("p1", 4.0) == 4.0
    assert tracker.merged == 4.0
    assert tracker.update("p1", 3.0) is None  # regressions are ignored
    assert tracker.update("p1", 8.0) == 8.0
    assert tracker.update("p0", math.inf) is None  # min still held by p1
    assert tracker.update("p1", math.inf) == math.inf


# --------------------------------------------------------------------------- #
# settled-output determinism across degrees and backends
# --------------------------------------------------------------------------- #
def _settled_rows(catalog, tree, backend: str, merge_seed: int):
    query = DataflowQuery(catalog, tree, StreamQueryConfig(early_emit=True))
    result = query.run(merge_seed=merge_seed, backend=backend)
    assert_converged(result, catalog, tree)
    return {
        spec.name: identity_rows(result.nodes[spec.name].relation.with_probabilities())
        for spec in tree
    }


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    disorder=st.integers(min_value=0, max_value=10),
    merge_seed=st.integers(min_value=0, max_value=100),
    backend=st.sampled_from(["inline", "threads", "processes", "sockets"]),
)
def test_partitioned_routing_is_deterministic_across_degrees(
    seed, disorder, merge_seed, backend
):
    """K ∈ {1, 2, 4} settle to the identical rows, probabilities bitwise."""
    reference = None
    for degree in (1, 2, 4):
        catalog, *_ = make_stream_catalog(seed, sizes=(14, 14, 10), disorder=disorder)
        tree = [
            NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),), partitions=degree),
            NodeSpec(
                "n2", "full_outer", "n1", "c", (("Key", "Key"),), partitions=degree
            ),
        ]
        rows = _settled_rows(catalog, tree, backend, merge_seed)
        if reference is None:
            reference = rows
        else:
            assert rows == reference


def test_inline_backend_supports_partitioned_graphs(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(3, sizes=(25, 25, 15), disorder=6)
    query = DataflowQuery(catalog, PARTITIONED_TREE, StreamQueryConfig(early_emit=True))
    result = query.run(merge_seed=9, backend="inline")
    assert result.backend == "inline"
    assert_converged(result, catalog, PARTITIONED_TREE)


def test_partitioned_stats_merge_across_partitions(stream_catalog_factory):
    """Partitioned and serial runs agree on the aggregate emit counters."""
    serial_tree = [
        NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),)),
        NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),)),
    ]
    catalog, *_ = stream_catalog_factory(11, sizes=(20, 20, 12), disorder=4)
    serial = DataflowQuery(catalog, serial_tree, StreamQueryConfig()).run(merge_seed=2)
    catalog, *_ = stream_catalog_factory(11, sizes=(20, 20, 12), disorder=4)
    partitioned = DataflowQuery(
        catalog, PARTITIONED_TREE, StreamQueryConfig()
    ).run(merge_seed=2)
    for name in ("n1", "n2"):
        assert (
            partitioned.nodes[name].stats.emits == serial.nodes[name].stats.emits
        )
        assert (
            partitioned.nodes[name].stats.groups_settled
            == serial.nodes[name].stats.groups_settled
        )
