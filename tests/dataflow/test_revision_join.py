"""Unit semantics of the retractable RevisionJoin operator."""

from __future__ import annotations

import pytest

from repro import Schema, TPRelation
from repro.dataflow import Revision, RevisionJoin, RevisionKind
from repro.stream import LEFT, RIGHT, Tagged, Watermark


def rel(prefix, rows):
    return TPRelation.from_rows(Schema.of("Key", "Serial"), rows, name=prefix)


@pytest.fixture()
def tiny():
    left = rel("l", [("k", "l0", "l0", 2, 8, 0.7), ("k", "l1", "l1", 10, 14, 0.5)])
    right = rel("r", [("k", "r0", "r0", 4, 6, 0.9)])
    return left, right


def emit(side, tp_tuple):
    return Tagged(side, Revision(RevisionKind.EMIT, tp_tuple))


def retract(side, tp_tuple):
    return Tagged(side, Revision(RevisionKind.RETRACT, tp_tuple))


def additions(elements):
    return [e for e in elements if isinstance(e, Revision) and e.adds]


def retractions(elements):
    return [
        e for e in elements if isinstance(e, Revision) and e.kind is RevisionKind.RETRACT
    ]


def watermarks(elements):
    return [e for e in elements if isinstance(e, Watermark)]


def test_watermark_only_mode_emits_nothing_before_finalization(tiny):
    left, right = tiny
    join = RevisionJoin("left_outer", left.schema, right.schema, [("Key", "Key")])
    l0 = left.tuples[0]
    assert join.process(emit(LEFT, l0)) == []
    out = join.process(Tagged(LEFT, Watermark(9))) + join.process(
        Tagged(RIGHT, Watermark(9))
    )
    # l0 ends at 8 <= 9: settled exactly once, never provisional.
    settled = additions(out)
    assert settled and all(not r.provisional for r in settled)
    assert not retractions(out)
    assert join.stats.groups_settled == 1


def test_early_emit_publishes_provisionally_then_refines(tiny):
    left, right = tiny
    join = RevisionJoin(
        "left_outer", left.schema, right.schema, [("Key", "Key")], early_emit=True
    )
    l0 = left.tuples[0]
    r0 = right.tuples[0]
    first = join.process(emit(LEFT, l0))
    # The whole interval is published provisionally as a single unmatched window.
    assert [r.kind for r in additions(first)] == [RevisionKind.EMIT]
    assert additions(first)[0].provisional
    assert additions(first)[0].tuple.interval == l0.interval
    # The matching negative splits the window: stale retracted, refined emitted.
    second = join.process(emit(RIGHT, r0))
    assert retractions(second), "stale provisional window must be retracted"
    assert all(r.kind is RevisionKind.REFINE for r in additions(second))
    # Settlement produces no further change: provisional state was already exact.
    final = join.process(Tagged(LEFT, Watermark(20))) + join.process(
        Tagged(RIGHT, Watermark(20))
    )
    assert not retractions(final)
    assert join.stats.groups_settled >= 1


def test_input_retraction_unwinds_published_windows(tiny):
    left, right = tiny
    join = RevisionJoin(
        "left_outer", left.schema, right.schema, [("Key", "Key")], early_emit=True
    )
    l0 = left.tuples[0]
    r0 = right.tuples[0]
    join.process(emit(LEFT, l0))
    join.process(emit(RIGHT, r0))
    before = dict(join.settled_outputs)
    # Two unmatched segments, the overlapping window and the negating window.
    assert len(before) == 4
    # Retracting the negative restores the single unmatched window.
    out = join.process(retract(RIGHT, r0))
    assert retractions(out)
    assert len(join.settled_outputs) == 1
    only = next(iter(join.settled_outputs.values()))
    assert only.interval == l0.interval
    assert join.maintainer.indexed_negatives == 0


def test_positive_retraction_withdraws_the_whole_group(tiny):
    left, right = tiny
    join = RevisionJoin(
        "anti", left.schema, right.schema, [("Key", "Key")], early_emit=True
    )
    l0 = left.tuples[0]
    join.process(emit(LEFT, l0))
    assert join.settled_outputs
    out = join.process(retract(LEFT, l0))
    assert retractions(out)
    assert not join.settled_outputs
    assert join.maintainer.open_positives == 0
    assert join.maintainer.stats.positives_retracted == 1


def test_derived_watermark_accounts_for_open_groups(tiny):
    left, right = tiny
    join = RevisionJoin("left_outer", left.schema, right.schema, [("Key", "Key")])
    l0, l1 = left.tuples
    join.process(emit(LEFT, l0))  # starts at 2
    join.process(emit(LEFT, l1))  # starts at 10
    out = join.process(Tagged(LEFT, Watermark(12)))
    out += join.process(Tagged(RIGHT, Watermark(12)))
    # l0 (ends 8) settled; l1 (ends 14) still open and starts at 10: the
    # derived watermark may not pass 10 even though inputs reached 12.
    marks = watermarks(out)
    assert marks and marks[-1].value == 10
    assert join.derived_watermark() == 10


def test_revisions_precede_their_covering_watermark(tiny):
    left, right = tiny
    join = RevisionJoin("left_outer", left.schema, right.schema, [("Key", "Key")])
    join.process(emit(LEFT, left.tuples[0]))
    join.process(Tagged(RIGHT, Watermark(20)))
    out = join.process(Tagged(LEFT, Watermark(20)))
    kinds = [type(element).__name__ for element in out]
    assert kinds.index("Revision") < kinds.index("Watermark")


def test_close_settles_everything(tiny):
    left, right = tiny
    join = RevisionJoin(
        "full_outer", left.schema, right.schema, [("Key", "Key")], early_emit=True
    )
    for tp_tuple in left.tuples:
        join.process(emit(LEFT, tp_tuple))
    for tp_tuple in right.tuples:
        join.process(emit(RIGHT, tp_tuple))
    out = join.close()
    assert watermarks(out)[-1].value == float("inf")
    assert join.maintainer.open_positives == 0
    assert join.reverse_maintainer.open_positives == 0


def test_unknown_kind_rejected(tiny):
    left, right = tiny
    with pytest.raises(ValueError):
        RevisionJoin("semi", left.schema, right.schema, [("Key", "Key")])


def test_materialize_requires_events(tiny):
    left, right = tiny
    with pytest.raises(ValueError):
        RevisionJoin(
            "anti",
            left.schema,
            right.schema,
            [("Key", "Key")],
            materialize_probabilities=True,
        )
