"""Live single-consumer revision iteration on a dataflow query."""

from __future__ import annotations

import pytest

from repro.dataflow import (
    DataflowQuery,
    MultipleConsumerError,
    NodeSpec,
    Revision,
)
from repro.relation import TPTuple
from repro.stream.elements import Watermark
from repro.stream.query import StreamQueryConfig

from conftest import make_stream_catalog

ON = (("Key", "Key"),)


def make_query(seed=11, kind="left_outer", backend_config=None) -> DataflowQuery:
    catalog, _a, _b, _c = make_stream_catalog(seed)
    config = backend_config or StreamQueryConfig(early_emit=True)
    return DataflowQuery(catalog, [NodeSpec("j1", kind, "a", "b", ON)], config)


def net_state(elements) -> list:
    entries = {}
    for element in elements:
        if isinstance(element, Revision):
            if element.adds:
                entries[element.tuple.key()] = element.tuple
            else:
                entries.pop(element.tuple.key(), None)
    return sorted(entries.values(), key=TPTuple.key)


def test_live_iteration_matches_settled_run():
    elements = list(make_query().iter_revisions(merge_seed=3))
    settled = make_query().run(merge_seed=3, backend="inline")
    assert net_state(elements) == sorted(settled.relation.tuples, key=TPTuple.key)
    assert any(isinstance(e, Revision) for e in elements)


def test_watermarks_are_min_merged_and_monotone():
    # Two sink partitions: the iterator must min-merge their watermarks.
    catalog, _a, _b, _c = make_stream_catalog(11)
    query = DataflowQuery(
        catalog,
        [NodeSpec("j1", "left_outer", "a", "b", ON, partitions=2)],
        StreamQueryConfig(early_emit=True),
    )
    marks = [
        e.value for e in query.iter_revisions(merge_seed=3) if isinstance(e, Watermark)
    ]
    assert marks, "expected watermarks on the sink stream"
    assert marks == sorted(marks)
    assert marks[-1] == float("inf")


def test_second_consumer_is_rejected_loudly():
    query = make_query()
    iterator = query.iter_revisions()
    next(iterator)  # the stream is live
    with pytest.raises(MultipleConsumerError) as exc_info:
        query.iter_revisions()
    # The error routes users to the serving layer by name.
    assert "repro.serve.StandingQueryService" in str(exc_info.value)
    iterator.close()
    # Abandoning the first consumer frees the query for a fresh iteration.
    assert any(isinstance(e, Revision) for e in query.iter_revisions())


def test_abandoning_the_iterator_cancels_the_run():
    query = make_query()
    iterator = query.iter_revisions()
    next(iterator)
    iterator.close()  # must not hang or leak the driver thread
    assert list(query.iter_revisions())  # and the query remains usable


def test_out_of_process_backends_are_rejected():
    query = make_query()
    with pytest.raises(ValueError, match="in-process"):
        query.iter_revisions(backend="sockets")
