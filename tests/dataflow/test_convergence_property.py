"""Property-based convergence: random out-of-order replays settle exactly.

The subsystem's acceptance property: for *any* random workload, disorder
bound, watermark cadence, interleaving seed and **runtime transport**
(inline / threads / processes / sockets — drawn by hypothesis), running a
3-way join tree (including a reverse-window node) with early emission on,
the settled output of **every** node equals the batch re-run tuple for
tuple with bitwise-equal probabilities, once all retractions have settled.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.dataflow import DataflowQuery, NodeSpec, assert_converged
from repro.stream import StreamQueryConfig

from tests.dataflow.conftest import make_stream_catalog

#: One reverse-window kind (right/full outer) in every drawn tree.
TREES = [
    [
        NodeSpec("n1", "anti", "a", "b", (("Key", "Key"),)),
        NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),)),
    ],
    [
        NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),)),
        NodeSpec("n2", "full_outer", "n1", "c", (("Key", "Key"),)),
    ],
    [
        NodeSpec("n1", "full_outer", "a", "b", (("Key", "Key"),)),
        NodeSpec("n2", "inner", "n1", "c", (("Key", "Key"),)),
    ],
]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    tree=st.sampled_from(TREES),
    disorder=st.integers(min_value=0, max_value=12),
    watermark_every=st.integers(min_value=1, max_value=6),
    backend=st.sampled_from(["inline", "threads", "processes", "sockets"]),
    merge_seed=st.integers(min_value=0, max_value=100),
    partitions=st.tuples(
        st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3)
    ),
)
def test_random_replays_converge_on_every_node(
    seed, tree, disorder, watermark_every, backend, merge_seed, partitions
):
    catalog, *_ = make_stream_catalog(
        seed,
        sizes=(12, 12, 10),
        disorder=disorder,
        watermark_every=watermark_every,
    )
    # Partitioned stages must be invisible in the settled output: the same
    # convergence property holds for any per-node partition degree.
    tree = [
        replace(spec, partitions=degree) for spec, degree in zip(tree, partitions)
    ]
    query = DataflowQuery(
        catalog, tree, StreamQueryConfig(early_emit=True)
    )
    result = query.run(merge_seed=merge_seed, backend=backend)
    # assert_converged checks every node, probabilities bitwise.
    cardinalities = assert_converged(result, catalog, tree)
    assert set(cardinalities) == {"n1", "n2"}


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    disorder=st.integers(min_value=0, max_value=12),
)
def test_watermark_only_mode_never_retracts_and_converges(seed, disorder):
    tree = TREES[seed % len(TREES)]
    catalog, *_ = make_stream_catalog(seed, sizes=(12, 12, 10), disorder=disorder)
    query = DataflowQuery(catalog, tree, StreamQueryConfig(early_emit=False))
    result = query.run(merge_seed=seed)
    assert_converged(result, catalog, tree)
    for node in result.nodes.values():
        assert node.stats.retracts == 0
        assert node.retraction_rate == 0.0
