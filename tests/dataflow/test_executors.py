"""Graph executors: inline / threads / processes agree and converge."""

from __future__ import annotations

import pytest

from repro.dataflow import (
    DataflowQuery,
    NodeSpec,
    assert_converged,
    identity_rows,
)
from repro.lineage import ProbabilityComputer
from repro.stream import StreamQueryConfig

TREE = [
    NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),)),
    NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),)),
]


@pytest.mark.parametrize("backend", ["inline", "threads", "processes", "sockets"])
@pytest.mark.parametrize("early", [False, True])
def test_every_backend_converges_to_batch(stream_catalog_factory, backend, early):
    catalog, *_ = stream_catalog_factory(21)
    query = DataflowQuery(catalog, TREE, StreamQueryConfig(early_emit=early))
    result = query.run(merge_seed=5, backend=backend)
    cardinalities = assert_converged(result, catalog, TREE)
    assert cardinalities["n2"] > 0
    assert result.events_processed > 0


def test_backends_agree_tuple_for_tuple(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(22)
    rows = {}
    for backend in ("inline", "threads", "processes", "sockets"):
        query = DataflowQuery(
            catalog, TREE, StreamQueryConfig(early_emit=True)
        )
        result = query.run(merge_seed=9, backend=backend)
        rows[backend] = {
            name: identity_rows(node.relation, with_probability=False)
            for name, node in result.nodes.items()
        }
    assert (
        rows["inline"] == rows["threads"] == rows["processes"] == rows["sockets"]
    )


def test_early_emission_retracts_and_still_converges(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(23, disorder=8)
    query = DataflowQuery(catalog, TREE, StreamQueryConfig(early_emit=True))
    result = query.run(merge_seed=3)
    assert_converged(result, catalog, TREE)
    stats = result.nodes["n1"].stats
    assert stats.retracts > 0, "early emission over disorder must retract"
    assert result.nodes["n2"].stats.inputs_retracted > 0, (
        "the downstream node must actually consume retractions"
    )


def test_tiny_buffers_backpressure_without_deadlock(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(24, sizes=(40, 40, 30))
    config = StreamQueryConfig(
        early_emit=True, buffer_capacity=4, micro_batch_size=2
    )
    query = DataflowQuery(catalog, TREE, config)
    result = query.run(merge_seed=1, backend="threads")
    assert_converged(result, catalog, TREE)
    assert result.backpressure_blocks > 0, "tiny buffers must actually block"


def test_materialized_probabilities_are_bitwise_identical(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(25)
    config = StreamQueryConfig(early_emit=True, materialize_probabilities=True)
    query = DataflowQuery(catalog, TREE, config)
    result = query.run(merge_seed=2)
    assert_converged(result, catalog, TREE)
    events = query.graph.merged_events()
    checked = 0
    for node in result.nodes.values():
        for tp_tuple in node.relation:
            fresh = ProbabilityComputer(events).probability(tp_tuple.lineage)
            assert tp_tuple.probability == fresh  # bitwise, not approx
            checked += 1
    assert checked > 0


def test_latencies_and_lags_are_recorded_per_group(stream_catalog_factory):
    catalog, a, _b, c = stream_catalog_factory(26)
    query = DataflowQuery(catalog, TREE, StreamQueryConfig(early_emit=True))
    result = query.run(merge_seed=4)
    n2 = result.nodes["n2"]
    # right_outer records one latency per forward group (from n1's output)
    # and one per reverse group (c's tuples).
    assert len(n2.emit_latencies) == len(n2.emit_event_lags)
    assert len(n2.emit_latencies) >= len(c)
    assert all(latency >= 0.0 for latency in n2.emit_latencies)


def test_unknown_backend_rejected(stream_catalog_factory):
    catalog, *_ = stream_catalog_factory(27)
    query = DataflowQuery(catalog, TREE)
    with pytest.raises(ValueError):
        query.run(backend="fibers")
