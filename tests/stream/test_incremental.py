"""Incremental window maintainer: finalization timing, eviction, lateness."""

from __future__ import annotations

from repro.core.windows import WindowClass
from repro.core.lawan import iter_lawan
from repro.relation import Schema, TPRelation, equi_join_on
from repro.stream import IncrementalWindowMaintainer
from repro.temporal import Interval


def _relation(name, *rows):
    return TPRelation.from_rows(
        Schema.of("Key", "Serial"),
        [
            (key, f"{name}{i}", f"{name}{i}", start, end, 0.5)
            for i, (key, start, end) in enumerate(rows)
        ],
        name=name,
    )


def _theta(left, right):
    return equi_join_on(left.schema, right.schema, [("Key", "Key")])


def test_nothing_finalizes_before_the_combined_watermark_passes_a_tuple():
    left = _relation("l", ("k", 0, 10))
    right = _relation("r", ("k", 2, 5))
    maintainer = IncrementalWindowMaintainer(_theta(left, right))
    maintainer.add_positive(left.tuples[0])
    maintainer.add_negative(right.tuples[0])
    # Combined watermark is min(left, right): one side alone is not enough.
    assert maintainer.advance_left(50) == []
    assert maintainer.advance_right(9) == []
    assert maintainer.open_positives == 1
    finalized = maintainer.advance_right(10)
    assert len(finalized) == 1
    assert maintainer.open_positives == 0


def test_finalized_group_reproduces_the_batch_windows():
    left = _relation("l", ("k", 0, 10))
    right = _relation("r", ("k", 2, 5), ("k", 4, 7))
    maintainer = IncrementalWindowMaintainer(_theta(left, right))
    # Deliver negatives out of event-time order.
    maintainer.add_negative(right.tuples[1])
    maintainer.add_positive(left.tuples[0])
    maintainer.add_negative(right.tuples[0])
    (finalized,) = maintainer.advance_left(10) + maintainer.advance_right(10)
    windows = list(iter_lawan([finalized.group]))
    classes = [w.window_class for w in windows]
    assert classes.count(WindowClass.OVERLAPPING) == 2
    assert classes.count(WindowClass.UNMATCHED) == 2  # [0,2) and [7,10)
    assert classes.count(WindowClass.NEGATING) == 3  # [2,4), [4,5), [5,7)
    intervals = [w.interval for w in windows if w.window_class is WindowClass.UNMATCHED]
    assert intervals == [Interval(0, 2), Interval(7, 10)]


def test_each_group_finalizes_exactly_once_and_is_never_retracted():
    left = _relation("l", ("k", 0, 4), ("k", 6, 9))
    right = _relation("r", ("k", 1, 3))
    maintainer = IncrementalWindowMaintainer(_theta(left, right))
    for tp_tuple in left:
        maintainer.add_positive(tp_tuple)
    maintainer.add_negative(right.tuples[0])
    first = maintainer.advance_left(5) + maintainer.advance_right(5)
    assert [g.group.r.end for g in first] == [4]
    # Re-advancing to the same watermark finalizes nothing again.
    assert maintainer.advance_left(5) == []
    second = maintainer.advance_right(100) + maintainer.advance_left(100)
    assert [g.group.r.end for g in second] == [9]


def test_late_events_behind_the_watermark_are_dropped_and_counted():
    left = _relation("l", ("k", 0, 4), ("k", 20, 24))
    right = _relation("r", ("k", 1, 3))
    maintainer = IncrementalWindowMaintainer(_theta(left, right))
    maintainer.advance_left(10)
    maintainer.advance_right(10)
    maintainer.add_positive(left.tuples[0])  # starts at 0 < watermark 10
    maintainer.add_negative(right.tuples[0])  # starts at 1 < watermark 10
    assert maintainer.stats.late_positives_dropped == 1
    assert maintainer.stats.late_negatives_dropped == 1
    maintainer.add_positive(left.tuples[1])  # on time
    assert maintainer.open_positives == 1


def test_negatives_are_evicted_once_no_future_positive_can_overlap():
    left = _relation("l", ("k", 0, 4))
    right = _relation("r", ("k", 1, 3), ("k", 30, 35))
    maintainer = IncrementalWindowMaintainer(_theta(left, right))
    maintainer.add_positive(left.tuples[0])
    for tp_tuple in right:
        maintainer.add_negative(tp_tuple)
    assert maintainer.indexed_negatives == 2
    maintainer.advance_left(10)  # future positives start >= 10 > 3 = s1.end
    assert maintainer.indexed_negatives == 1
    assert maintainer.stats.negatives_evicted == 1
    maintainer.close()
    assert maintainer.indexed_negatives == 0


def test_close_finalizes_everything():
    left = _relation("l", ("k", 0, 1000))
    maintainer = IncrementalWindowMaintainer(_theta(left, left))
    maintainer.add_positive(left.tuples[0])
    finalized = maintainer.close()
    assert len(finalized) == 1
    assert maintainer.open_positives == 0
