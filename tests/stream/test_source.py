"""Ingestion-layer tests: watermark progression and bounded-lateness eviction."""

from __future__ import annotations

import pytest

from repro.relation import Schema, TPRelation
from repro.stream import CLOSED, StreamEvent, StreamSource, Watermark


def _tuples(*rows):
    relation = TPRelation.from_rows(
        Schema.of("Key", "Serial"),
        [(key, serial, f"e{serial}", start, end, 0.5) for key, serial, start, end in rows],
        name="t",
    )
    return list(relation)


def test_source_wraps_tuples_in_sequenced_events():
    tuples = _tuples(("k", 0, 0, 5), ("k", 1, 5, 9))
    elements = list(StreamSource(tuples, watermark_every=10))
    events = [e for e in elements if isinstance(e, StreamEvent)]
    assert [event.sequence for event in events] == [0, 1]
    assert [event.tuple for event in events] == tuples


def test_source_emits_trailing_watermarks():
    tuples = _tuples(("k", 0, 0, 5), ("k", 1, 10, 12), ("k", 2, 20, 21))
    elements = list(StreamSource(tuples, lateness=3, watermark_every=1))
    watermarks = [e.value for e in elements if isinstance(e, Watermark)]
    # max-start-seen minus lateness after each event, then the closing mark.
    assert watermarks == [-3, 7, 17, CLOSED]


def test_watermark_never_regresses_on_disorder():
    tuples = _tuples(("k", 0, 10, 12), ("k", 1, 4, 9), ("k", 2, 11, 13))
    elements = list(StreamSource(tuples, lateness=6, watermark_every=1))
    watermarks = [e.value for e in elements if isinstance(e, Watermark)]
    assert watermarks == sorted(watermarks)
    # The event starting at 4 is within the lateness bound: not evicted.
    events = [e for e in elements if isinstance(e, StreamEvent)]
    assert len(events) == 3


def test_late_events_are_evicted_and_counted():
    tuples = _tuples(("k", 0, 20, 25), ("k", 1, 2, 6), ("k", 2, 21, 22))
    source = StreamSource(tuples, lateness=5, watermark_every=1)
    events = [e for e in source if isinstance(e, StreamEvent)]
    # start=2 < watermark 15 after the first event: evicted at the door.
    assert [event.tuple.start for event in events] == [20, 21]
    assert source.stats.late_evicted == 1
    assert source.stats.events_emitted == 2


def test_exhaustion_closes_the_stream():
    elements = list(StreamSource(_tuples(("k", 0, 0, 1)), watermark_every=100))
    assert isinstance(elements[-1], Watermark)
    assert elements[-1].closes


def test_source_validates_configuration():
    with pytest.raises(ValueError):
        StreamSource([], lateness=-1)
    with pytest.raises(ValueError):
        StreamSource([], watermark_every=0)
