"""Property-style equivalence: continuous operators vs. the batch joins.

The subsystem's core guarantee: once every watermark closes, the finalized
output set of a continuous join equals the batch join's output exactly —
for any disorder within the lateness bound, any watermark cadence, any
cross-source interleaving and any partition count.
"""

from __future__ import annotations

import random

import pytest

from repro.core import tp_anti_join, tp_left_outer_join
from repro.datasets import ReplayConfig, arrival_order, stream_def
from repro.engine import Catalog
from repro.lineage import canonical
from repro.relation import TPRelation
from repro.stream import (
    ContinuousAntiJoin,
    ContinuousLeftOuterJoin,
    StreamQuery,
    StreamQueryConfig,
    StreamSource,
    merge_tagged,
)


def finalized_rows(relation_or_tuples) -> set[tuple]:
    """Order-insensitive canonical rows (fact, interval, canonical lineage)."""
    return {
        (t.fact, t.start, t.end, str(canonical(t.lineage)))
        for t in relation_or_tuples
    }


BATCH_JOINS = {
    "anti": tp_anti_join,
    "left_outer": tp_left_outer_join,
}
CONTINUOUS_CLASSES = {
    "anti": ContinuousAntiJoin,
    "left_outer": ContinuousLeftOuterJoin,
}


def _run_continuous(kind, left, right, theta, disorder, lateness, watermark_every, seed):
    operator = CONTINUOUS_CLASSES[kind](
        left.schema, right.schema, theta, left_name=left.name, right_name=right.name
    )
    left_elements = StreamSource(
        arrival_order(left, disorder, seed=seed),
        lateness=lateness,
        watermark_every=watermark_every,
    )
    right_elements = StreamSource(
        arrival_order(right, disorder, seed=seed + 1),
        lateness=lateness,
        watermark_every=watermark_every,
    )
    merged = merge_tagged(left_elements, right_elements, seed=seed)
    return list(operator.run(merged)), operator


@pytest.mark.parametrize("kind", ["anti", "left_outer"])
@pytest.mark.parametrize("seed", range(12))
def test_random_disorder_matches_batch(kind, seed, random_relation_factory):
    """Randomized configurations: output sets must match the batch join exactly."""
    rng = random.Random(seed * 977 + 11)
    left, right, theta = random_relation_factory(
        seed,
        left_size=rng.randrange(5, 30),
        right_size=rng.randrange(5, 30),
        num_keys=rng.randrange(1, 5),
        time_span=rng.randrange(10, 40),
    )
    disorder = rng.randrange(0, 15)
    lateness = disorder + rng.randrange(0, 5)  # at least the disorder: lossless
    watermark_every = rng.randrange(1, 6)

    outputs, operator = _run_continuous(
        kind, left, right, theta, disorder, lateness, watermark_every, seed
    )
    batch = BATCH_JOINS[kind](left, right, theta, compute_probabilities=False)
    assert finalized_rows(outputs) == finalized_rows(batch)
    assert operator.maintainer.stats.late_positives_dropped == 0
    assert operator.maintainer.stats.late_negatives_dropped == 0
    # Every latency sample corresponds to one finalized positive tuple.
    assert len(operator.emit_latencies) == len(left)


@pytest.mark.parametrize("seed", range(6))
def test_parallel_partitions_match_batch(seed, random_relation_factory):
    """Hash-partitioned parallel runs produce the same finalized set."""
    left, right, theta = random_relation_factory(seed + 100, left_size=25, right_size=25)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=6, seed=seed)))
    catalog.register_stream("r", stream_def(right, ReplayConfig(disorder=6, seed=seed + 1)))
    batch = tp_left_outer_join(left, right, theta, compute_probabilities=False)
    for partitions in (1, 2, 4):
        query = StreamQuery(
            catalog,
            "left_outer",
            "l",
            "r",
            [("Key", "Key")],
            config=StreamQueryConfig(
                partitions=partitions, micro_batch_size=8, buffer_capacity=16
            ),
        )
        result = query.run(merge_seed=seed)
        assert finalized_rows(result.relation) == finalized_rows(batch)
        assert result.partitions == partitions


def test_probabilities_match_batch_after_finalization(random_relation_factory):
    """Lineages survive streaming intact: probabilities agree with batch."""
    left, right, theta = random_relation_factory(7, left_size=15, right_size=15)
    outputs, operator = _run_continuous("left_outer", left, right, theta, 5, 5, 2, 7)
    events = left.events.merge(right.events)
    streamed = TPRelation(
        operator.output_schema(), outputs, events, check_constraint=False
    ).with_probabilities()
    batch = tp_left_outer_join(left, right, theta, compute_probabilities=True)
    batch_probabilities = {
        (t.fact, t.start, t.end): t.probability for t in batch
    }
    for t in streamed:
        assert t.probability == pytest.approx(
            batch_probabilities[(t.fact, t.start, t.end)]
        )


def test_insufficient_lateness_drops_late_events_without_crashing(
    random_relation_factory,
):
    """Disorder beyond the lateness bound evicts events; the run still closes."""
    left, right, theta = random_relation_factory(3, left_size=40, right_size=40)
    operator = ContinuousAntiJoin(left.schema, right.schema, theta)
    left_source = StreamSource(
        arrival_order(left, disorder=25, seed=1), lateness=0, watermark_every=1
    )
    right_source = StreamSource(
        arrival_order(right, disorder=25, seed=2), lateness=0, watermark_every=1
    )
    outputs = list(operator.run(merge_tagged(left_source, right_source, seed=3)))
    assert left_source.stats.late_evicted + right_source.stats.late_evicted > 0
    # Output corresponds to the delivered subset; it must still be well formed.
    delivered = left_source.stats.events_emitted
    assert operator.maintainer.stats.groups_finalized == delivered
    assert len(operator.emit_latencies) == delivered
    assert all(t.interval.duration > 0 for t in outputs)
