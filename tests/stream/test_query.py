"""StreamQuery API tests: registration, config, parallel execution, stats."""

from __future__ import annotations

import pytest

from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog, CatalogError
from repro.lineage import canonical
from repro.stream import StreamQuery, StreamQueryConfig


def _catalog(random_relation_factory, seed=0, **sizes):
    left, right, theta = random_relation_factory(seed, **sizes)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=4, seed=seed)))
    catalog.register_stream("r", stream_def(right, ReplayConfig(disorder=4, seed=seed + 1)))
    return catalog, left, right, theta


def test_unknown_stream_fails_at_registration(random_relation_factory):
    catalog, *_ = _catalog(random_relation_factory)
    with pytest.raises(CatalogError):
        StreamQuery(catalog, "anti", "l", "missing", [("Key", "Key")])


def test_unknown_kind_fails_at_registration(random_relation_factory):
    catalog, *_ = _catalog(random_relation_factory)
    with pytest.raises(ValueError):
        StreamQuery(catalog, "semi", "l", "r", [("Key", "Key")])


def test_describe_names_the_query_shape(random_relation_factory):
    catalog, *_ = _catalog(random_relation_factory)
    query = StreamQuery(
        catalog, "anti", "l", "r", [("Key", "Key")],
        config=StreamQueryConfig(partitions=3),
    )
    description = query.describe()
    assert "anti" in description and "partitions=3" in description


def test_result_statistics_are_consistent(random_relation_factory):
    catalog, left, right, _ = _catalog(random_relation_factory, left_size=20, right_size=20)
    query = StreamQuery(catalog, "left_outer", "l", "r", [("Key", "Key")])
    result = query.run(merge_seed=1)
    assert result.events_processed == len(left) + len(right)
    assert result.outputs_emitted == len(result.relation)
    assert result.elapsed_seconds > 0
    assert result.events_per_second > 0
    assert len(result.emit_latencies) == len(left)
    summary = result.latency_summary()
    assert summary["p50_ms"] <= summary["p95_ms"] <= summary["max_ms"]


def test_rerunning_a_registered_query_is_deterministic(random_relation_factory):
    catalog, *_ = _catalog(random_relation_factory, left_size=15, right_size=15)
    query = StreamQuery(catalog, "anti", "l", "r", [("Key", "Key")])

    def rows(result):
        return sorted(
            (t.fact, t.start, t.end, str(canonical(t.lineage)))
            for t in result.relation
        )

    assert rows(query.run(merge_seed=5)) == rows(query.run(merge_seed=5))


def test_non_equi_theta_forces_a_single_partition(random_relation_factory):
    _, left, right, _ = _catalog(random_relation_factory)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig()))
    catalog.register_stream("r", stream_def(right, ReplayConfig()))
    query = StreamQuery(
        catalog, "anti", "l", "r", (), config=StreamQueryConfig(partitions=8)
    )
    # θ = true is an equi-join with an empty key: partitionable in principle,
    # but every tuple shares the one key, so this exercises the skew path.
    result = query.run()
    assert result.partitions == 8


def test_backpressure_engages_with_tiny_buffers(random_relation_factory):
    catalog, left, right, _ = _catalog(
        random_relation_factory, seed=2, left_size=60, right_size=60
    )
    query = StreamQuery(
        catalog,
        "left_outer",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, micro_batch_size=1, buffer_capacity=1),
    )
    result = query.run(merge_seed=2)
    # Watermarks are broadcast to both workers, so with capacity 1 the router
    # must have blocked at least once; correctness is unaffected.
    assert result.backpressure_blocks > 0
    assert result.outputs_emitted == len(result.relation)


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        StreamQueryConfig(partitions=0)


def test_source_evictions_surface_in_late_dropped(random_relation_factory):
    """Lateness below the disorder evicts events at the source; the result says so."""
    left, right, _ = random_relation_factory(4, left_size=50, right_size=50)
    catalog = Catalog()
    catalog.register_stream(
        "l", stream_def(left, ReplayConfig(disorder=20, lateness=0, seed=1))
    )
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=20, lateness=0, seed=2))
    )
    query = StreamQuery(catalog, "anti", "l", "r", [("Key", "Key")])
    result = query.run(merge_seed=4)
    assert result.late_dropped > 0


def test_worker_failure_raises_instead_of_deadlocking(
    random_relation_factory, monkeypatch
):
    """A crashing worker must not leave the router blocked on a full buffer."""
    # Workers build their joins from the shard spec (repro.parallel.stream_exec),
    # so the failure is injected at that seam.
    import repro.parallel.stream_exec as spec_module

    catalog, *_ = _catalog(random_relation_factory, seed=6, left_size=80, right_size=80)
    query = StreamQuery(
        catalog,
        "left_outer",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, micro_batch_size=1, buffer_capacity=2),
    )

    real_factory = spec_module.continuous_join

    def failing_factory(*args, **kwargs):
        join = real_factory(*args, **kwargs)
        calls = {"count": 0}
        original_process = join.process

        def process(tagged):
            calls["count"] += 1
            if calls["count"] > 3:
                raise RuntimeError("injected worker failure")
            return original_process(tagged)

        join.process = process
        return join

    monkeypatch.setattr(spec_module, "continuous_join", failing_factory)

    import threading

    outcome: dict = {}

    def run():
        try:
            query.run(merge_seed=6)
            outcome["result"] = "returned"
        except RuntimeError as error:
            outcome["error"] = str(error)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive(), "query.run deadlocked after a worker failure"
    assert outcome.get("error") == "injected worker failure"
