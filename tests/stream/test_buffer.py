"""Bounded-buffer tests: FIFO order, micro-batches, close, backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.stream import BoundedBuffer, BufferClosed


def test_fifo_order_and_micro_batches():
    buffer: BoundedBuffer[int] = BoundedBuffer(capacity=10)
    for value in range(7):
        buffer.put(value)
    assert buffer.take_batch(3) == [0, 1, 2]
    assert buffer.take_batch(100) == [3, 4, 5, 6]


def test_close_drains_then_signals_completion():
    buffer: BoundedBuffer[str] = BoundedBuffer(capacity=4)
    buffer.put("a")
    buffer.close()
    assert buffer.take_batch(8) == ["a"]
    assert buffer.take_batch(8) is None
    with pytest.raises(BufferClosed):
        buffer.put("b")


def test_put_blocks_until_consumer_makes_space():
    buffer: BoundedBuffer[int] = BoundedBuffer(capacity=2)
    buffer.put(0)
    buffer.put(1)
    produced = []

    def producer():
        buffer.put(2)  # blocks: buffer full
        produced.append(2)

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.05)
    assert not produced  # still blocked
    assert buffer.take_batch(1) == [0]
    thread.join(timeout=2)
    assert produced == [2]
    assert buffer.put_blocks == 1
    assert buffer.high_watermark == 2


def test_validation():
    with pytest.raises(ValueError):
        BoundedBuffer(capacity=0)
    buffer: BoundedBuffer[int] = BoundedBuffer(capacity=1)
    with pytest.raises(ValueError):
        buffer.take_batch(0)
