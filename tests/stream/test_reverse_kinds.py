"""Reverse-window continuous operators (inner / right / full outer).

Equivalence contract of PR 1, extended to the three kinds the mirrored
maintainer enables, plus the carried-across-windows per-key probability
computers (incremental probabilities, step two).
"""

from __future__ import annotations

import random

import pytest

from repro.core import tp_full_outer_join, tp_inner_join, tp_right_outer_join
from repro.datasets import ReplayConfig, arrival_order, stream_def
from repro.engine import Catalog
from repro.lineage import ProbabilityComputer, canonical
from repro.stream import (
    CONTINUOUS_OPERATORS,
    StreamQuery,
    StreamQueryConfig,
    StreamSource,
    continuous_join,
    merge_tagged,
)

BATCH_JOINS = {
    "inner": tp_inner_join,
    "right_outer": tp_right_outer_join,
    "full_outer": tp_full_outer_join,
}


def finalized_rows(relation_or_tuples) -> set[tuple]:
    return {
        (t.fact, t.start, t.end, str(canonical(t.lineage)))
        for t in relation_or_tuples
    }


def _run_continuous(kind, left, right, theta, disorder, lateness, watermark_every, seed):
    operator = CONTINUOUS_OPERATORS[kind](
        left.schema, right.schema, theta, left_name=left.name, right_name=right.name
    )
    left_elements = StreamSource(
        arrival_order(left, disorder, seed=seed),
        lateness=lateness,
        watermark_every=watermark_every,
    )
    right_elements = StreamSource(
        arrival_order(right, disorder, seed=seed + 1),
        lateness=lateness,
        watermark_every=watermark_every,
    )
    merged = merge_tagged(left_elements, right_elements, seed=seed)
    return list(operator.run(merged)), operator


@pytest.mark.parametrize("kind", ["inner", "right_outer", "full_outer"])
@pytest.mark.parametrize("seed", range(8))
def test_reverse_kinds_match_batch(kind, seed, random_relation_factory):
    rng = random.Random(seed * 613 + 7)
    left, right, theta = random_relation_factory(
        seed,
        left_size=rng.randrange(5, 25),
        right_size=rng.randrange(5, 25),
        num_keys=rng.randrange(1, 5),
        time_span=rng.randrange(10, 40),
    )
    disorder = rng.randrange(0, 12)
    lateness = disorder + rng.randrange(0, 4)
    watermark_every = rng.randrange(1, 6)

    outputs, operator = _run_continuous(
        kind, left, right, theta, disorder, lateness, watermark_every, seed
    )
    batch = BATCH_JOINS[kind](left, right, theta, compute_probabilities=False)
    assert finalized_rows(outputs) == finalized_rows(batch)
    assert operator.maintainer.stats.late_positives_dropped == 0
    if operator.reverse_maintainer is not None:
        assert operator.reverse_maintainer.stats.late_positives_dropped == 0


@pytest.mark.parametrize("kind", ["right_outer", "full_outer"])
def test_partitioned_reverse_kinds_match_batch(kind, random_relation_factory):
    left, right, theta = random_relation_factory(42, left_size=25, right_size=25)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=6, seed=4)))
    catalog.register_stream("r", stream_def(right, ReplayConfig(disorder=6, seed=5)))
    batch = BATCH_JOINS[kind](left, right, theta, compute_probabilities=False)
    for partitions in (1, 2, 4):
        query = StreamQuery(
            catalog,
            kind,
            "l",
            "r",
            [("Key", "Key")],
            config=StreamQueryConfig(partitions=partitions, micro_batch_size=8),
        )
        result = query.run(merge_seed=7)
        assert finalized_rows(result.relation) == finalized_rows(batch)
        if kind == "full_outer":
            # Full outer records a latency per group of *both* sides.
            assert len(result.emit_latencies) == len(left) + len(right)


@pytest.mark.parametrize("kind", ["anti", "left_outer", "full_outer"])
def test_materialized_probabilities_bitwise_equal_fresh(kind, random_relation_factory):
    """Per-key computers carried across windows stay bitwise-exact."""
    left, right, theta = random_relation_factory(11, left_size=20, right_size=20)
    events = left.events.merge(right.events)
    operator = continuous_join(
        kind,
        left.schema,
        right.schema,
        [("Key", "Key")],
        events=events,
        materialize_probabilities=True,
    )
    left_elements = StreamSource(arrival_order(left, 5, seed=1), lateness=5, watermark_every=2)
    right_elements = StreamSource(arrival_order(right, 5, seed=2), lateness=5, watermark_every=2)
    outputs = list(operator.run(merge_tagged(left_elements, right_elements, seed=3)))
    assert outputs
    for tp_tuple in outputs:
        fresh = ProbabilityComputer(events).probability(tp_tuple.lineage)
        assert tp_tuple.probability == fresh  # bitwise, not approx


def test_materialized_probabilities_through_stream_query(random_relation_factory):
    left, right, theta = random_relation_factory(12, left_size=18, right_size=18)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=4, seed=1)))
    catalog.register_stream("r", stream_def(right, ReplayConfig(disorder=4, seed=2)))
    query = StreamQuery(
        catalog,
        "left_outer",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(materialize_probabilities=True),
    )
    result = query.run(merge_seed=3)
    events = left.events.merge(right.events)
    assert len(result.relation) > 0
    for tp_tuple in result.relation:
        fresh = ProbabilityComputer(events).probability(tp_tuple.lineage)
        assert tp_tuple.probability == fresh
