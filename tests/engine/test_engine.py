"""Tests for the catalog, planner, physical operators and executor."""

from __future__ import annotations

import pytest

from repro import tp_left_outer_join
from repro.engine import (
    Catalog,
    CatalogError,
    Engine,
    JoinKind,
    JoinStrategy,
    NJJoinOperator,
    PlanError,
    Planner,
    PlannerConfig,
    Project,
    Scan,
    ScanOperator,
    Select,
    TPJoin,
    Timeslice,
    execute_sql,
    explain_logical,
    explain_physical,
)
from repro.temporal import Interval
from tests.conftest import canonical_rows


@pytest.fixture()
def engine(wants_to_visit, hotel_availability) -> Engine:
    built = Engine()
    built.register("a", wants_to_visit)
    built.register("b", hotel_availability)
    return built


class TestCatalog:
    def test_register_and_lookup(self, wants_to_visit):
        catalog = Catalog()
        catalog.register("a", wants_to_visit)
        assert catalog.lookup("a") is wants_to_visit
        assert "a" in catalog
        assert catalog.names() == ["a"]

    def test_duplicate_registration_rejected(self, wants_to_visit):
        catalog = Catalog()
        catalog.register("a", wants_to_visit)
        with pytest.raises(CatalogError):
            catalog.register("a", wants_to_visit)
        catalog.register("a", wants_to_visit, replace=True)

    def test_unknown_lookup(self):
        with pytest.raises(CatalogError):
            Catalog().lookup("missing")

    def test_statistics(self, wants_to_visit):
        catalog = Catalog()
        catalog.register("a", wants_to_visit)
        stats = catalog.stats("a")
        assert stats.cardinality == 2
        assert stats.distinct("Loc") == 2
        assert stats.timespan_length == 8


class TestPlanner:
    def test_resolves_auto_to_default_strategy(self, engine):
        planner = Planner(engine.catalog, PlannerConfig(default_strategy=JoinStrategy.NJ))
        assert planner.resolve_strategy(JoinStrategy.AUTO) is JoinStrategy.NJ
        assert planner.resolve_strategy(JoinStrategy.TA) is JoinStrategy.TA

    def test_physical_plan_uses_nj_join_by_default(self, engine):
        planner = Planner(engine.catalog)
        physical = planner.plan(
            TPJoin(Scan("a"), Scan("b"), JoinKind.LEFT_OUTER, (("Loc", "Loc"),))
        )
        assert isinstance(physical, NJJoinOperator)

    def test_selection_pushdown_below_join(self, engine):
        planner = Planner(engine.catalog)
        logical = Select(
            TPJoin(Scan("a"), Scan("b"), JoinKind.LEFT_OUTER, (("Loc", "Loc"),)),
            "Name",
            "Ann",
        )
        physical = planner.plan(logical)
        # after pushdown the top operator is the join, with the filter below it
        assert isinstance(physical, NJJoinOperator)
        rendered = explain_physical(physical)
        assert rendered.index("NJJoin") < rendered.index("Filter")

    def test_unknown_relation_in_plan(self, engine):
        planner = Planner(engine.catalog)
        with pytest.raises(CatalogError):
            planner.plan(Scan("missing"))


class TestPhysicalOperators:
    def test_scan_produces_all_tuples(self, wants_to_visit):
        operator = ScanOperator(wants_to_visit, "a")
        with operator:
            assert len(list(operator)) == 2

    def test_iterating_unopened_operator_raises(self, wants_to_visit):
        operator = ScanOperator(wants_to_visit, "a")
        with pytest.raises(PlanError):
            list(operator)

    def test_double_open_raises(self, wants_to_visit):
        operator = ScanOperator(wants_to_visit, "a")
        operator.open()
        with pytest.raises(PlanError):
            operator.open()
        operator.close()

    def test_next_tuple_interface(self, wants_to_visit):
        operator = ScanOperator(wants_to_visit, "a").open()
        produced = []
        while (tp_tuple := operator.next_tuple()) is not None:
            produced.append(tp_tuple)
        assert len(produced) == 2
        operator.close()


class TestExecutor:
    def test_sql_left_outer_join_matches_the_library_operator(
        self, engine, wants_to_visit, hotel_availability, loc_theta
    ):
        via_sql = engine.execute_sql("SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc")
        direct = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert canonical_rows(via_sql) == canonical_rows(direct)

    def test_every_strategy_gives_the_same_answer(self, engine):
        base = "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc USING {}"
        results = [
            engine.execute_sql(base.format(strategy)) for strategy in ("NJ", "TA", "NAIVE")
        ]
        assert canonical_rows(results[0]) == canonical_rows(results[1]) == canonical_rows(results[2])

    def test_anti_join_via_sql(self, engine):
        result = engine.execute_sql("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
        assert len(result) == 5
        assert result.schema.attributes == ("Name", "Loc")

    def test_where_and_during(self, engine):
        result = engine.execute_sql(
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc WHERE Name = 'Jim' DURING [8, 10)"
        )
        assert len(result) == 1
        assert result.tuples[0].interval == Interval(8, 10)

    def test_projection_via_sql(self, engine):
        result = engine.execute_sql("SELECT Name FROM a")
        assert result.schema.attributes == ("Name",)
        assert {t.fact for t in result} == {("Ann",), ("Jim",)}

    def test_execute_sql_convenience_function(self, wants_to_visit, hotel_availability):
        result = execute_sql(
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc",
            {"a": wants_to_visit, "b": hotel_availability},
        )
        assert len(result) == 7

    def test_default_strategy_override(self, wants_to_visit, hotel_availability):
        result = execute_sql(
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc",
            {"a": wants_to_visit, "b": hotel_availability},
            default_strategy=JoinStrategy.TA,
        )
        assert len(result) == 7

    def test_probabilities_filled_by_default(self, engine):
        result = engine.execute_sql("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
        assert all(t.probability is not None for t in result)

    def test_right_outer_join_via_ta_strategy(self, engine):
        nj = engine.execute_sql("SELECT * FROM a TP RIGHT OUTER JOIN b ON a.Loc = b.Loc USING NJ")
        ta = engine.execute_sql("SELECT * FROM a TP RIGHT OUTER JOIN b ON a.Loc = b.Loc USING TA")
        assert canonical_rows(nj) == canonical_rows(ta)


class TestExplain:
    def test_explain_mentions_both_plans(self, engine):
        text = engine.explain_sql("SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc")
        assert "Logical plan:" in text
        assert "Physical plan:" in text
        assert "NJJoin" in text
        assert "Scan a" in text

    def test_explain_logical_tree_shape(self):
        plan = Project(Timeslice(Scan("a"), Interval(1, 5)), ("Name",))
        text = explain_logical(plan)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].strip().startswith("Timeslice")
        assert lines[2].strip().startswith("Scan")

    def test_ta_strategy_shows_in_physical_plan(self, engine):
        text = engine.explain_sql(
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc USING TA"
        )
        assert "TAJoin" in text
