"""Tests for the SQL-ish parser."""

from __future__ import annotations

import pytest

from repro.engine import (
    JoinKind,
    JoinStrategy,
    Project,
    Scan,
    Select,
    SQLSyntaxError,
    Timeslice,
    TPJoin,
    parse_plan,
    parse_query,
    tokenize,
)
from repro.temporal import Interval


class TestTokenizer:
    def test_basic_tokens(self):
        assert tokenize("SELECT * FROM a") == ["SELECT", "*", "FROM", "a"]

    def test_quoted_strings_and_punctuation(self):
        tokens = tokenize("WHERE Name = 'Ann Smith' AND x = 3")
        assert "'Ann Smith'" in tokens
        assert "=" in tokens

    def test_interval_tokens(self):
        assert tokenize("DURING [4, 8)") == ["DURING", "[", "4", ",", "8", ")"]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT ; FROM a")


class TestParsing:
    def test_simple_scan(self):
        plan = parse_plan("SELECT * FROM a")
        assert plan == Scan("a")

    def test_left_outer_join(self):
        plan = parse_plan("SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc")
        assert isinstance(plan, TPJoin)
        assert plan.kind is JoinKind.LEFT_OUTER
        assert plan.on == (("Loc", "Loc"),)
        assert plan.left == Scan("a") and plan.right == Scan("b")

    def test_anti_join(self):
        plan = parse_plan("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
        assert isinstance(plan, TPJoin)
        assert plan.kind is JoinKind.ANTI

    def test_right_and_full_outer_joins(self):
        assert parse_plan("SELECT * FROM a TP RIGHT OUTER JOIN b ON a.X = b.Y").kind is JoinKind.RIGHT_OUTER
        assert parse_plan("SELECT * FROM a TP FULL OUTER JOIN b ON a.X = b.Y").kind is JoinKind.FULL_OUTER

    def test_inner_join(self):
        assert parse_plan("SELECT * FROM a TP INNER JOIN b ON a.X = b.Y").kind is JoinKind.INNER

    def test_reversed_condition_order_is_normalised(self):
        plan = parse_plan("SELECT * FROM a TP LEFT OUTER JOIN b ON b.Loc = a.Place")
        assert plan.on == (("Place", "Loc"),)

    def test_multiple_join_conditions(self):
        plan = parse_plan(
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.X = b.Y AND a.Z = b.W"
        )
        assert plan.on == (("X", "Y"), ("Z", "W"))

    def test_where_clause_wraps_plan_in_select(self):
        plan = parse_plan("SELECT * FROM a TP ANTI JOIN b ON a.X = b.Y WHERE Name = 'Ann'")
        assert isinstance(plan, Select)
        assert plan.attribute == "Name"
        assert plan.value == "Ann"

    def test_where_with_numeric_literal(self):
        plan = parse_plan("SELECT * FROM a WHERE Count = 3")
        assert isinstance(plan, Select)
        assert plan.value == 3

    def test_during_clause(self):
        plan = parse_plan("SELECT * FROM a DURING [4, 8)")
        assert isinstance(plan, Timeslice)
        assert plan.interval == Interval(4, 8)

    def test_projection(self):
        plan = parse_plan("SELECT Name, Loc FROM a")
        assert isinstance(plan, Project)
        assert plan.attributes == ("Name", "Loc")

    def test_using_strategy(self):
        query = parse_query("SELECT * FROM a TP LEFT OUTER JOIN b ON a.X = b.Y USING TA")
        assert query.strategy is JoinStrategy.TA
        assert isinstance(query.plan, TPJoin)
        assert query.plan.strategy is JoinStrategy.TA

    def test_default_strategy_is_auto(self):
        query = parse_query("SELECT * FROM a TP LEFT OUTER JOIN b ON a.X = b.Y")
        assert query.strategy is JoinStrategy.AUTO

    def test_parsed_query_surface_details(self):
        query = parse_query("SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
        assert query.left_relation == "a"
        assert query.right_relation == "b"
        assert query.join_kind is JoinKind.ANTI
        assert query.select_list == ("Name",)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROM a",
            "SELECT * a",
            "SELECT * FROM a TP SIDEWAYS JOIN b ON a.X = b.Y",
            "SELECT * FROM a TP LEFT OUTER JOIN b",
            "SELECT * FROM a TP LEFT OUTER JOIN b ON a.X",
            "SELECT * FROM a USING XX",
            "SELECT * FROM a DURING [x, 8)",
            "SELECT * FROM a extra tokens here",
            "SELECT * FROM a WHERE Name =",
        ],
    )
    def test_malformed_queries_raise(self, text):
        with pytest.raises(SQLSyntaxError):
            parse_plan(text)
