"""Engine integration of dataflow graphs: multi-join SQL, EXPLAIN, catalog."""

from __future__ import annotations

import pytest

from repro.core import tp_anti_join, tp_left_outer_join, tp_right_outer_join
from repro.dataflow import NodeSpec
from repro.datasets import ReplayConfig, stream_def
from repro.engine import (
    CatalogError,
    Engine,
    PlanError,
    StreamScan,
    TPJoin,
    parse_query,
)
from repro.lineage import canonical
from repro.relation import TPRelation, equi_join_on
from repro.stream import StreamQueryConfig

from tests.dataflow.conftest import make_relation


def rows(relation):
    return sorted(
        repr((t.fact, t.start, t.end, str(canonical(t.lineage)))) for t in relation
    )


@pytest.fixture()
def triple():
    return (
        make_relation("a", 18, 1),
        make_relation("b", 18, 2),
        make_relation("c", 12, 3),
    )


@pytest.fixture()
def dataflow_engine(triple):
    a, b, c = triple
    engine = Engine()
    for offset, (name, relation) in enumerate((("sa", a), ("sb", b), ("sc", c))):
        engine.register_stream(
            name, stream_def(relation, ReplayConfig(disorder=4, seed=offset))
        )
    return engine


CHAIN_SQL = (
    "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Key = sb.Key "
    "TP RIGHT OUTER JOIN STREAM sc ON sa.Key = sc.Key"
)


def chain_batch(a, b, c):
    theta_ab = equi_join_on(a.schema, b.schema, [("Key", "Key")])
    n1 = tp_anti_join(a, b, theta_ab, compute_probabilities=False)
    n1 = TPRelation(n1.schema, n1.tuples, n1.events, name="n1", check_constraint=False)
    theta_nc = equi_join_on(n1.schema, c.schema, [("Key", "Key")])
    return tp_right_outer_join(n1, c, theta_nc, compute_probabilities=False)


def test_parser_builds_left_deep_chain():
    parsed = parse_query(CHAIN_SQL)
    assert len(parsed.joins) == 2
    outer = parsed.plan
    assert isinstance(outer, TPJoin) and outer.kind.value == "right_outer"
    inner = outer.left
    assert isinstance(inner, TPJoin) and inner.kind.value == "anti"
    assert isinstance(inner.left, StreamScan) and isinstance(outer.right, StreamScan)
    # First-join surface fields stay backward compatible.
    assert parsed.right_relation == "sb" and parsed.join_kind.value == "anti"


def test_chained_stream_sql_matches_batch(dataflow_engine, triple):
    a, b, c = triple
    result = dataflow_engine.execute_sql(CHAIN_SQL, compute_probabilities=False)
    assert rows(result) == rows(chain_batch(a, b, c))


def test_explain_marks_dataflow_node_count(dataflow_engine):
    text = dataflow_engine.explain_sql(CHAIN_SQL)
    assert "[dataflow 2-node]" in text
    assert "DataflowJoin [anti→right_outer]" in text
    assert "ContinuousScan sa" in text and "ContinuousScan sc" in text


def test_explain_marks_partition_degrees(triple):
    """With a ParallelConfig the planner fans hot stages out and EXPLAIN
    renders the per-node degrees."""
    from repro.parallel import ParallelConfig

    a, b, c = triple
    engine = Engine(
        parallel_config=ParallelConfig(max_workers=4, state_per_worker=1.0, min_tuples=1)
    )
    for offset, (name, relation) in enumerate((("sa", a), ("sb", b), ("sc", c))):
        engine.register_stream(
            name, stream_def(relation, ReplayConfig(disorder=4, seed=offset))
        )
    text = engine.explain_sql(CHAIN_SQL)
    assert "[dataflow 2-node, parts=" in text
    # Three distinct keys cap the first stage at 3 workers.
    assert "parts=3/3" in text
    result = engine.execute_sql(CHAIN_SQL, compute_probabilities=False)
    assert rows(result) == rows(chain_batch(a, b, c))


def test_early_emit_config_routes_binary_join_through_dataflow(triple):
    a, b, _c = triple
    engine = Engine(stream_config=StreamQueryConfig(early_emit=True))
    engine.register_stream("sa", stream_def(a, ReplayConfig(disorder=4, seed=0)))
    engine.register_stream("sb", stream_def(b, ReplayConfig(disorder=4, seed=1)))
    sql = "SELECT * FROM STREAM sa TP LEFT OUTER JOIN STREAM sb ON sa.Key = sb.Key"
    assert "[dataflow 1-node]" in engine.explain_sql(sql)
    theta = equi_join_on(a.schema, b.schema, [("Key", "Key")])
    batch = tp_left_outer_join(a, b, theta, compute_probabilities=False)
    assert rows(engine.execute_sql(sql, compute_probabilities=False)) == rows(batch)


def test_pinned_ta_rejected_anywhere_in_a_stream_chain(dataflow_engine):
    with pytest.raises(PlanError):
        dataflow_engine.execute_sql(CHAIN_SQL + " USING TA")


def test_mixed_chain_rejected(dataflow_engine, triple):
    a, *_ = triple
    dataflow_engine.register("stored", a)
    with pytest.raises(PlanError):
        dataflow_engine.execute_sql(
            "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Key = sb.Key "
            "TP ANTI JOIN stored ON sa.Key = stored.Key"
        )


def test_where_filters_settled_dataflow_output(dataflow_engine):
    result = dataflow_engine.execute_sql(
        CHAIN_SQL + " WHERE Serial = 'a3'", compute_probabilities=False
    )
    assert all(t.fact[1] in ("a3", None) for t in result)


def test_dataflow_query_registration_round_trips(dataflow_engine, triple):
    a, b, c = triple
    nodes = [
        NodeSpec("n1", "anti", "sa", "sb", (("Key", "Key"),)),
        NodeSpec("n2", "right_outer", "n1", "sc", (("Key", "Key"),)),
    ]
    query = dataflow_engine.dataflow_query("monitor", nodes)
    assert dataflow_engine.catalog.lookup_dataflow("monitor") is query
    assert dataflow_engine.catalog.dataflow_names() == ["monitor"]
    result = query.run(merge_seed=1)
    assert rows(result.relation) == rows(chain_batch(a, b, c))
    with pytest.raises(CatalogError):
        dataflow_engine.dataflow_query("monitor", nodes)
    with pytest.raises(CatalogError):
        dataflow_engine.catalog.lookup_dataflow("nope")


def test_chained_on_clause_qualifier_binds_to_the_named_relation():
    """`sb.Loc = sc.Loc` must join on sb's Loc, not sa's clashing Loc."""
    from repro import Schema, TPRelation

    a = TPRelation.from_rows(
        Schema.of("Id", "Loc"), [(1, "X", "a1", 0, 10, 0.9)], name="sa"
    )
    b = TPRelation.from_rows(
        Schema.of("Id", "Loc"), [(1, "Y", "b1", 0, 10, 0.8)], name="sb"
    )
    c = TPRelation.from_rows(Schema.of("Loc",), [("Y", "c1", 0, 10, 0.7)], name="sc")
    for streams in (True, False):
        engine = Engine()
        if streams:
            for name, relation in (("sa", a), ("sb", b), ("sc", c)):
                engine.register_stream(name, stream_def(relation, ReplayConfig()))
            prefix = "STREAM "
        else:
            for name, relation in (("sa", a), ("sb", b), ("sc", c)):
                engine.register(name, relation)
            prefix = ""
        result = engine.execute_sql(
            f"SELECT * FROM {prefix}sa TP INNER JOIN {prefix}sb ON sa.Id = sb.Id "
            f"TP INNER JOIN {prefix}sc ON sb.Loc = sc.Loc",
            compute_probabilities=False,
        )
        # b's Loc is 'Y' and c's Loc is 'Y': exactly one joined row must
        # survive.  (Binding 'Loc' to sa's 'X' would return nothing.)
        assert len(result) == 1, f"streams={streams}"
        # An unknown qualified reference is a plan-time error, not a silent bind.
        with pytest.raises(PlanError):
            engine.execute_sql(
                f"SELECT * FROM {prefix}sa TP INNER JOIN {prefix}sb ON sa.Id = sb.Id "
                f"TP INNER JOIN {prefix}sc ON sb.Nope = sc.Loc"
            )


def test_relation_chain_still_plans_serially(dataflow_engine, triple):
    a, b, c = triple
    dataflow_engine.register("ra", a)
    dataflow_engine.register("rb", b)
    dataflow_engine.register("rc", c)
    result = dataflow_engine.execute_sql(
        "SELECT * FROM ra TP ANTI JOIN rb ON ra.Key = rb.Key "
        "TP RIGHT OUTER JOIN rc ON ra.Key = rc.Key",
        compute_probabilities=False,
    )
    assert rows(result) == rows(chain_batch(a, b, c))
