"""Engine integration of streams: SQL STREAM scans, planning, EXPLAIN."""

from __future__ import annotations

import pytest

from repro.core import tp_anti_join, tp_left_outer_join
from repro.datasets import ReplayConfig, stream_def
from repro.engine import (
    CatalogError,
    Engine,
    PlanError,
    StreamScan,
    parse_query,
)
from repro.lineage import canonical


def rows(relation):
    return sorted(
        repr((t.fact, t.start, t.end, str(canonical(t.lineage)))) for t in relation
    )


@pytest.fixture()
def stream_engine(wants_to_visit, hotel_availability):
    engine = Engine()
    engine.register("a", wants_to_visit)
    engine.register("b", hotel_availability)
    engine.register_stream("sa", stream_def(wants_to_visit, ReplayConfig(disorder=3)))
    engine.register_stream(
        "sb", stream_def(hotel_availability, ReplayConfig(disorder=3, seed=1))
    )
    return engine


def test_parser_marks_stream_scans():
    parsed = parse_query(
        "SELECT * FROM STREAM a TP ANTI JOIN STREAM b ON a.Loc = b.Loc"
    )
    assert parsed.left_is_stream and parsed.right_is_stream
    join = parsed.plan
    assert isinstance(join.left, StreamScan) and isinstance(join.right, StreamScan)


def test_parser_still_accepts_plain_relations():
    parsed = parse_query("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
    assert not parsed.left_is_stream and not parsed.right_is_stream


def test_stream_is_a_contextual_keyword():
    # STREAM followed by a keyword is a relation *named* stream, not a marker.
    parsed = parse_query("SELECT * FROM STREAM TP ANTI JOIN b ON Loc = Loc")
    assert not parsed.left_is_stream
    assert parsed.left_relation == "STREAM"
    # A dangling STREAM at the end of the FROM clause is likewise a name.
    bare = parse_query("SELECT * FROM STREAM")
    assert not bare.left_is_stream and bare.left_relation == "STREAM"


def test_continuous_anti_join_matches_batch(
    stream_engine, wants_to_visit, hotel_availability, loc_theta
):
    batch = tp_anti_join(
        wants_to_visit, hotel_availability, loc_theta, compute_probabilities=False
    )
    streamed = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Loc = sb.Loc",
        compute_probabilities=False,
    )
    assert rows(streamed) == rows(batch)


def test_continuous_left_outer_join_matches_batch_with_probabilities(
    stream_engine, wants_to_visit, hotel_availability, loc_theta
):
    batch = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
    streamed = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa TP LEFT OUTER JOIN STREAM sb ON sa.Loc = sb.Loc"
    )
    by_key = {(t.fact, t.start, t.end): t.probability for t in batch}
    assert len(streamed) == len(batch)
    for t in streamed:
        assert t.probability == pytest.approx(by_key[(t.fact, t.start, t.end)])


def test_where_filter_applies_to_finalized_output(stream_engine):
    result = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Loc = sb.Loc "
        "WHERE Name = 'Jim'",
        compute_probabilities=False,
    )
    assert result
    assert all(t.fact[0] == "Jim" for t in result)


def test_bare_stream_scan_drains_the_replay(stream_engine, wants_to_visit):
    result = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa", compute_probabilities=False
    )
    assert len(result) == len(wants_to_visit)


def test_mixed_stream_relation_join_is_rejected(stream_engine):
    with pytest.raises(PlanError):
        stream_engine.execute_sql(
            "SELECT * FROM STREAM sa TP ANTI JOIN b ON sa.Loc = b.Loc"
        )


def test_full_outer_join_on_streams_matches_batch(
    stream_engine, wants_to_visit, hotel_availability, loc_theta
):
    # Supported since the reverse-window operators landed: the mirrored
    # maintainer derives the unmatched/negating windows of the right stream.
    from repro.core import tp_full_outer_join

    batch = tp_full_outer_join(
        wants_to_visit, hotel_availability, loc_theta, compute_probabilities=False
    )
    streamed = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa TP FULL OUTER JOIN STREAM sb ON sa.Loc = sb.Loc",
        compute_probabilities=False,
    )
    assert rows(streamed) == rows(batch)


def test_unknown_stream_name_raises_catalog_error(stream_engine):
    with pytest.raises(CatalogError):
        stream_engine.execute_sql("SELECT * FROM STREAM nope")


def test_explain_renders_continuous_plan(stream_engine):
    text = stream_engine.explain_sql(
        "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Loc = sb.Loc"
    )
    assert "StreamScan(sa)" in text
    assert "ContinuousNJJoin [anti]" in text
    assert "watermark-driven" in text
    assert "[continuous]" in text
    assert "cost" not in text.split("Physical plan:")[1]


def test_registered_continuous_query_round_trips(
    stream_engine, wants_to_visit, hotel_availability, loc_theta
):
    query = stream_engine.continuous_query(
        "monitor", "anti", "sa", "sb", [("Loc", "Loc")]
    )
    assert stream_engine.catalog.lookup_continuous_query("monitor") is query
    batch = tp_anti_join(
        wants_to_visit, hotel_availability, loc_theta, compute_probabilities=False
    )
    assert rows(query.run().relation) == rows(batch)
    with pytest.raises(CatalogError):
        stream_engine.continuous_query("monitor", "anti", "sa", "sb", [("Loc", "Loc")])


def test_stream_names_listed(stream_engine):
    assert stream_engine.catalog.stream_names() == ["sa", "sb"]
    assert stream_engine.catalog.is_stream("sa")
    assert not stream_engine.catalog.is_stream("a")


def test_pinned_ta_strategy_on_stream_join_is_rejected(stream_engine):
    with pytest.raises(PlanError):
        stream_engine.execute_sql(
            "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Loc = sb.Loc USING TA"
        )
    # Pinning NJ is redundant but accurate: continuous execution is NJ.
    result = stream_engine.execute_sql(
        "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Loc = sb.Loc USING NJ",
        compute_probabilities=False,
    )
    assert result


def test_relation_named_stream_still_works(wants_to_visit):
    engine = Engine()
    engine.register("stream", wants_to_visit)
    result = engine.execute_sql("SELECT * FROM stream", compute_probabilities=False)
    assert len(result) == len(wants_to_visit)
    parsed = parse_query("SELECT * FROM stream TP ANTI JOIN stream ON Loc = Loc")
    assert not parsed.left_is_stream and not parsed.right_is_stream


def test_stream_named_stream_works():
    parsed = parse_query("SELECT * FROM STREAM stream")
    assert parsed.left_is_stream and parsed.left_relation == "stream"
