"""Planner integration of process-parallel joins: choice, EXPLAIN, equality."""

from __future__ import annotations

import pytest

from repro.datasets import meteo_pair
from repro.engine import Engine, JoinStrategy, ParallelNJJoinOperator, PlanError
from repro.parallel import ParallelConfig
from tests.conftest import canonical_rows

SQL = "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Metric = b.Metric"

EAGER = ParallelConfig(max_workers=4, state_per_worker=500.0, min_tuples=50)


@pytest.fixture()
def workload():
    return meteo_pair(300, seed=5)


def make_engine(pair, parallel=None, default_strategy=JoinStrategy.NJ):
    engine = Engine(default_strategy=default_strategy, parallel_config=parallel)
    engine.register("a", pair[0])
    engine.register("b", pair[1])
    return engine


def test_planner_chooses_parallel_join_and_explain_shows_worker_count(workload):
    engine = make_engine(workload, parallel=EAGER)
    text = engine.explain_sql(SQL)
    assert "ParallelNJJoin" in text
    assert "[parallel n=4]" in text


def test_parallel_plan_result_equals_serial_plan_result(workload):
    parallel_result = make_engine(workload, parallel=EAGER).execute_sql(SQL)
    serial_result = make_engine(workload).execute_sql(SQL)
    assert canonical_rows(parallel_result) == canonical_rows(serial_result)


def test_planner_defaults_to_serial_without_parallel_config(workload):
    text = make_engine(workload).explain_sql(SQL)
    assert "ParallelNJJoin" not in text
    assert "[parallel" not in text


def test_small_inputs_stay_serial_under_the_cost_model(workload):
    shy = ParallelConfig(max_workers=4, state_per_worker=500.0, min_tuples=10_000)
    text = make_engine(workload, parallel=shy).explain_sql(SQL)
    assert "ParallelNJJoin" not in text


def test_pure_temporal_joins_cannot_be_sharded(workload):
    from repro.engine import JoinKind, Scan, TPJoin

    engine = make_engine(workload, parallel=EAGER)
    plan = TPJoin(Scan("a"), Scan("b"), JoinKind.ANTI, (), JoinStrategy.AUTO)
    text = engine.explain(plan)
    assert "ParallelNJJoin" not in text


def test_pinned_baseline_strategies_are_never_parallelised(workload):
    engine = make_engine(workload, parallel=EAGER)
    text = engine.explain_sql(
        "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Metric = b.Metric USING TA"
    )
    assert "TAJoin" in text
    assert "ParallelNJJoin" not in text


def test_parallel_operator_validates_construction(workload):
    engine = make_engine(workload, parallel=EAGER)
    physical = engine._planner.plan  # noqa: SLF001 - exercising planner output
    from repro.engine import parse_query

    operator = physical(parse_query(SQL).plan)
    assert isinstance(operator, ParallelNJJoinOperator)
    assert operator.parallel_workers == 4
    with pytest.raises(PlanError):
        ParallelNJJoinOperator(
            operator.children()[0], operator.children()[1], operator._kind, (), None, 4
        )
    with pytest.raises(PlanError):
        ParallelNJJoinOperator(
            operator.children()[0],
            operator.children()[1],
            operator._kind,
            (("Metric", "Metric"),),
            None,
            1,
        )


def test_continuous_explain_carries_parallel_marker(workload):
    from repro.datasets import ReplayConfig, stream_def
    from repro.stream import StreamQueryConfig

    engine = Engine(stream_config=StreamQueryConfig(partitions=3))
    engine.register_stream("sa", stream_def(workload[0], ReplayConfig()))
    engine.register_stream("sb", stream_def(workload[1], ReplayConfig()))
    text = engine.explain_sql(
        "SELECT * FROM STREAM sa TP ANTI JOIN STREAM sb ON sa.Metric = sb.Metric"
    )
    assert "[continuous] [parallel n=3]" in text
