"""Layout × transport convergence: columnar output is bitwise-identical.

The acceptance bar for the columnar hot path is not "close": for every join
kind, every transport and both executors (continuous stream join and the
retractable dataflow graph), the settled output must equal the object
layout's tuple-for-tuple with bitwise-identical probabilities.  These tests
run the same query under both layouts and compare exact rows — no rounding
beyond the canonicalisation both sides share.  A wire-capture test pins the
transport claim: columnar socket micro-batches carry no pickled element
payloads.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOptions
from repro.columnar import HAS_NUMPY
from repro.datasets import ReplayConfig, stream_def
from repro.dataflow import DataflowQuery, NodeSpec, assert_converged, identity_rows
from repro.engine import Catalog
from repro.lineage import canonical
from repro.stream import StreamQuery

from tests.conftest import make_random_relations
from tests.dataflow.conftest import make_stream_catalog

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="columnar layout needs numpy")

KINDS = ("inner", "left_outer", "right_outer", "full_outer", "anti")


def _exact_rows(relation):
    """Identity rows with *exact* (unrounded) probabilities, as a multiset.

    Rows are compared via ``repr`` — outer-join facts mix ``None`` with
    strings, which plain tuple ordering cannot sort.
    """
    return sorted(
        repr((t.fact, t.start, t.end, str(canonical(t.lineage)), t.probability))
        for t in relation
    )


def _run_stream(kind: str, transport: str, layout: str, seed: int = 41):
    left, right, _theta = make_random_relations(seed=seed, left_size=40, right_size=40)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=3, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=3, seed=seed + 1))
    )
    partitions = 1 if transport == "inline" else 2
    query = StreamQuery(
        catalog,
        kind,
        "l",
        "r",
        [("Key", "Key")],
        config=ExecutionOptions(
            partitions=partitions,
            transport=transport if transport != "inline" else "threads",
            micro_batch_size=8,
            layout=layout,
            materialize_probabilities=True,
        ),
    )
    return _exact_rows(query.run(merge_seed=seed).relation)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("transport", ("inline", "threads"))
def test_stream_layouts_agree_bitwise(kind, transport):
    assert _run_stream(kind, transport, "columnar") == _run_stream(
        kind, transport, "object"
    )


@pytest.mark.parametrize("kind", ("inner", "full_outer"))
@pytest.mark.parametrize("transport", ("processes", "sockets"))
def test_stream_layouts_agree_bitwise_across_process_boundaries(kind, transport):
    assert _run_stream(kind, transport, "columnar") == _run_stream(
        kind, transport, "object"
    )


TREE = [
    NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),)),
    NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),)),
]


@pytest.mark.parametrize("backend", ("inline", "sockets"))
@pytest.mark.parametrize("early", (False, True))
def test_dataflow_layouts_agree_and_converge(backend, early):
    rows = {}
    for layout in ("object", "columnar"):
        catalog, *_ = make_stream_catalog(21)
        query = DataflowQuery(
            catalog, TREE, ExecutionOptions(early_emit=early, layout=layout)
        )
        result = query.run(merge_seed=5, backend=backend)
        assert_converged(result, catalog, TREE)
        rows[layout] = {
            name: sorted(map(repr, identity_rows(node.relation, with_probability=True)))
            for name, node in result.nodes.items()
        }
    assert rows["columnar"] == rows["object"]


def test_columnar_socket_batches_are_binary(monkeypatch):
    """Columnar socket runs must ship element micro-batches as binary wire
    frames — zero pickled batch payloads; object runs keep pickling."""
    import repro.runtime.sockets as sockets
    from repro.runtime import wire

    counts = {"binary": 0, "pickled": 0}
    real_raw = sockets.send_raw_frame
    real_send = sockets.send_frame

    def spy_raw(sock, data):
        assert wire.is_wire_frame(data)
        counts["binary"] += 1
        real_raw(sock, data)

    def spy_send(sock, frame):
        if isinstance(frame, tuple) and frame and frame[0] == "batch":
            counts["pickled"] += 1
        real_send(sock, frame)

    monkeypatch.setattr(sockets, "send_raw_frame", spy_raw)
    monkeypatch.setattr(sockets, "send_frame", spy_send)

    def run(layout):
        counts["binary"] = counts["pickled"] = 0
        return _run_stream("inner", "sockets", layout)

    columnar_rows = run("columnar")
    assert counts["binary"] > 0
    assert counts["pickled"] == 0
    binary_sent = counts["binary"]

    object_rows = run("object")
    assert counts["pickled"] > 0
    assert counts["binary"] == 0
    assert columnar_rows == object_rows
    assert binary_sent > 0
