"""Columnar vs object maintainer: same inputs, same state, same outputs.

The columnar maintainer's contract is *equivalence*, not resemblance: for
any interleaving of ingestion, retraction and watermark advancement it must
produce the same entries, the same match lists, the same finalized groups
and the same stats counters as
:class:`repro.stream.incremental.IncrementalWindowMaintainer`.  These tests
drive both implementations with identical randomized operation sequences
and compare everything observable.  Finalization order *across* keys is the
one sanctioned difference (both walk key dicts populated in potentially
different orders), so finalized batches compare as canonical multisets.
"""

from __future__ import annotations

import random

import pytest

from repro.columnar import HAS_NUMPY, maintainer_class, resolve_layout
from repro.core.joins import swap_theta
from repro.lineage import Var
from repro.relation import (
    EquiJoinCondition,
    PredicateCondition,
    Schema,
    TPTuple,
    TrueCondition,
)
from repro.stream.incremental import IncrementalWindowMaintainer
from repro.temporal import Interval

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="columnar layout needs numpy")

LEFT_SCHEMA = Schema.of("Key", "Serial")
RIGHT_SCHEMA = Schema.of("Key", "Serial")


def _tuple(prefix: str, index: int, key: str, start: int, end: int) -> TPTuple:
    name = f"{prefix}{index}"
    return TPTuple((key, name), Var(name), Interval(start, end), None)


def _entry_view(entry):
    if entry is None:
        return None
    return (
        entry.tuple.key(),
        entry.serial,
        entry.key,
        [(record.r.key(), record.s.key(), record.interval) for record in entry.matches],
    )


def _group_view(group):
    return (
        group.group.r.key(),
        group.serial,
        group.key,
        [
            (record.r.key(), record.s.key(), record.interval)
            for record in group.group.matches
        ],
    )


def _drive(maintainer, operations):
    """Apply one operation list; return every observable result."""
    trace = []
    for op in operations:
        kind = op[0]
        if kind == "add_pos":
            result = maintainer.add_positive(op[1], ingest_clock=op[2])
            trace.append(("add_pos", _entry_view(result)))
        elif kind == "add_neg":
            affected = maintainer.add_negative(op[1])
            trace.append(("add_neg", [_entry_view(entry) for entry in affected]))
        elif kind == "rm_pos":
            result = maintainer.remove_positive(op[1])
            trace.append(("rm_pos", _entry_view(result)))
        elif kind == "rm_neg":
            affected = maintainer.remove_negative(op[1])
            trace.append(("rm_neg", [_entry_view(entry) for entry in affected]))
        elif kind == "advance_left":
            groups = maintainer.advance_left(op[1])
            trace.append(("adv_l", sorted(repr(_group_view(g)) for g in groups)))
        elif kind == "advance_right":
            groups = maintainer.advance_right(op[1])
            trace.append(("adv_r", sorted(repr(_group_view(g)) for g in groups)))
        elif kind == "close":
            groups = maintainer.close()
            trace.append(("close", sorted(repr(_group_view(g)) for g in groups)))
        trace.append(
            (
                "state",
                maintainer.open_positives,
                maintainer.indexed_negatives,
                maintainer.min_open_start(),
                maintainer.combined_watermark,
            )
        )
    return trace


def _random_operations(seed: int, length: int = 120, num_keys: int = 3):
    rng = random.Random(seed)
    operations = []
    added_pos, added_neg = [], []
    watermark = -5
    for index in range(length):
        key = f"k{rng.randrange(num_keys)}"
        start = rng.randrange(0, 40)
        end = start + rng.randrange(1, 8)
        roll = rng.random()
        if roll < 0.35:
            operations.append(("add_pos", _tuple("p", index, key, start, end), index * 0.5))
            added_pos.append(operations[-1][1])
        elif roll < 0.70:
            operations.append(("add_neg", _tuple("n", index, key, start, end)))
            added_neg.append(operations[-1][1])
        elif roll < 0.78 and added_pos:
            operations.append(("rm_pos", rng.choice(added_pos)))
        elif roll < 0.86 and added_neg:
            operations.append(("rm_neg", rng.choice(added_neg)))
        elif roll < 0.93:
            watermark += rng.randrange(0, 4)
            operations.append(("advance_left", watermark))
        else:
            operations.append(("advance_right", watermark + rng.randrange(-2, 3)))
    operations.append(("close",))
    return operations


def _theta(kind: str):
    if kind == "equi":
        return EquiJoinCondition(LEFT_SCHEMA, RIGHT_SCHEMA, (("Key", "Key"),))
    if kind == "true":
        return TrueCondition()
    # A non-equi predicate forces the un-partitioned (_WHOLE_STREAM) path
    # plus per-candidate θ evaluation; swapping exercises the reverse
    # maintainer's delegating wrapper.
    return swap_theta(PredicateCondition(lambda left, right: left[0] <= right[0]))


@pytest.mark.parametrize("theta_kind", ("equi", "true", "swapped_predicate"))
@pytest.mark.parametrize("seed", range(8))
def test_randomized_operation_parity(theta_kind, seed):
    theta = _theta(theta_kind)
    operations = _random_operations(seed)
    object_trace = _drive(IncrementalWindowMaintainer(theta), list(operations))
    columnar_trace = _drive(maintainer_class("columnar")(theta), list(operations))
    assert object_trace == columnar_trace


@pytest.mark.parametrize("seed", range(4))
def test_stats_counters_match(seed):
    theta = _theta("equi")
    operations = _random_operations(seed, length=200)
    object_maintainer = IncrementalWindowMaintainer(theta)
    columnar_maintainer = maintainer_class("columnar")(theta)
    _drive(object_maintainer, list(operations))
    _drive(columnar_maintainer, list(operations))
    assert columnar_maintainer.stats == object_maintainer.stats


def test_checkpoint_accessors_group_per_key_in_arrival_order():
    theta = _theta("equi")
    maintainer = maintainer_class("columnar")(theta)
    for index, (key, start) in enumerate(
        [("a", 0), ("b", 2), ("a", 5), ("b", 7), ("a", 9)]
    ):
        maintainer.add_positive(_tuple("p", index, key, start, start + 3))
        maintainer.add_negative(_tuple("n", index, key, start, start + 2))
    open_items = dict(maintainer.open_items())
    negative_items = dict(maintainer.negative_items())
    assert [entry.tuple.start for entry in open_items[("a",)]] == [0, 5, 9]
    assert [entry.tuple.start for entry in open_items[("b",)]] == [2, 7]
    assert [negative.start for negative in negative_items[("a",)]] == [0, 5, 9]


def test_resolve_layout_validates_and_degrades(monkeypatch):
    assert resolve_layout("object") == "object"
    assert resolve_layout("columnar") == "columnar"
    with pytest.raises(ValueError, match="layout must be one of"):
        resolve_layout("rowwise")
    import repro.columnar as columnar

    monkeypatch.setattr(columnar, "HAS_NUMPY", False)
    with pytest.warns(RuntimeWarning, match="numpy"):
        assert resolve_layout("columnar") == "object"


def test_compaction_preserves_arrival_order_and_results():
    """Force enough dead rows to trigger compaction mid-run, then verify the
    survivors still probe and finalize exactly like the object maintainer."""
    theta = _theta("equi")
    object_maintainer = IncrementalWindowMaintainer(theta)
    columnar_maintainer = maintainer_class("columnar")(theta)
    operations = []
    tuples = []
    for index in range(700):
        tp = _tuple("n", index, "a", index % 40, index % 40 + 3)
        operations.append(("add_neg", tp))
        tuples.append(tp)
    # Retract most of them so dead rows outnumber the living.
    for tp in tuples[:600]:
        operations.append(("rm_neg", tp))
    for index in range(40):
        operations.append(("add_pos", _tuple("p", index, "a", index, index + 4), 0.0))
    operations.append(("close",))
    assert _drive(object_maintainer, list(operations)) == _drive(
        columnar_maintainer, list(operations)
    )
