"""Checkpoint frames are layout-independent: columnar state round-trips.

PR 9's checkpoint codec snapshots a stream-shard worker's maintainer state.
The codec reads and writes through the four accessor methods both
maintainer implementations share (``open_items`` / ``negative_items`` /
``load_open_entries`` / ``load_negatives``), never through the storage
layout — so a snapshot taken under the columnar layout must restore into
an object worker and vice versa, through the same ``CHECKPOINT_VERSION``
frames, and the resumed run must be bitwise-identical to an uninterrupted
one.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.columnar import HAS_NUMPY
from repro.recovery.checkpoint import (
    checkpoint_elements,
    restore_worker,
    snapshot_worker,
)
from repro.runtime.worker import Worker

from tests.recovery.test_checkpoint import (
    _NullEmitter,
    _elements,
    _feed,
    _rows,
    _spec,
)

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="columnar layout needs numpy")


@pytest.mark.parametrize("kind", ("anti", "left_outer", "full_outer"))
@pytest.mark.parametrize(
    "snapshot_layout,restore_layout",
    (("columnar", "object"), ("object", "columnar"), ("columnar", "columnar")),
)
def test_cross_layout_snapshot_resume_is_bitwise_identical(
    kind, snapshot_layout, restore_layout
):
    catalog, merged = _elements()
    object_spec = _spec(catalog, kind, materialize=True)
    specs = {
        "object": object_spec,
        "columnar": replace(object_spec, layout="columnar"),
    }
    cut = len(merged) // 2

    straight = Worker(specs["object"], _NullEmitter())
    _feed(straight, merged)
    expected = _rows(straight.finish())

    original = Worker(specs[snapshot_layout], _NullEmitter())
    _feed(original, merged[:cut])
    payload = snapshot_worker(original, cut)
    assert checkpoint_elements(payload) == cut

    restored = Worker(specs[restore_layout], _NullEmitter())
    assert restore_worker(restored, payload) == cut
    _feed(restored, merged[cut:])
    assert _rows(restored.finish()) == expected


def test_columnar_snapshot_is_primitive_and_layout_agnostic():
    """A columnar worker's snapshot must contain no numpy scalars or arrays
    — the frame pickles to the same primitive shapes the object layout
    produces, so either implementation can decode it."""
    catalog, merged = _elements()
    spec = replace(_spec(catalog, "left_outer"), layout="columnar")
    worker = Worker(spec, _NullEmitter())
    _feed(worker, merged[: len(merged) // 2])
    payload = snapshot_worker(worker, len(merged) // 2)

    def assert_primitive(value):
        if isinstance(value, (tuple, list)):
            for item in value:
                assert_primitive(item)
        elif isinstance(value, dict):
            for key, item in value.items():
                assert_primitive(key)
                assert_primitive(item)
        else:
            assert value is None or isinstance(value, (bool, int, float, str)), (
                f"non-primitive {type(value).__name__} in checkpoint payload"
            )

    assert_primitive(payload)
    assert pickle.loads(pickle.dumps(payload)) == payload
