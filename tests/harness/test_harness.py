"""Tests for the experiment harness (registry, runner, reporting, CLI)."""

from __future__ import annotations

import pytest

from repro.harness import (
    EXPERIMENT_GROUPS,
    EXPERIMENTS,
    Measurement,
    experiment_report,
    measurements_table,
    resolve_experiments,
    run_by_name,
    run_experiment,
    speedup_summary,
    write_csv,
)
from repro.harness.__main__ import build_parser, main


class TestRegistry:
    def test_every_figure_of_the_paper_is_registered(self):
        assert set(EXPERIMENTS) == {"fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b"}

    def test_groups_cover_all_experiments(self):
        assert set(EXPERIMENT_GROUPS["all"]) == set(EXPERIMENTS)
        assert EXPERIMENT_GROUPS["fig5"] == ("fig5a", "fig5b")

    def test_resolve_single_and_group(self):
        assert [spec.experiment_id for spec in resolve_experiments("fig6a")] == ["fig6a"]
        assert [spec.experiment_id for spec in resolve_experiments("fig7")] == ["fig7a", "fig7b"]

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_experiments("fig99")

    def test_specs_declare_series_and_shapes(self):
        for spec in EXPERIMENTS.values():
            assert spec.series
            assert spec.expected_shape
            assert spec.default_sizes
            assert spec.paper_sizes

    def test_workload_builder_returns_relations_and_theta(self):
        positive, negative, theta = EXPERIMENTS["fig5a"].build_workload(100)
        assert len(positive) == 100
        assert len(negative) == 100
        assert theta.is_equi


class TestRunner:
    def test_run_experiment_produces_one_measurement_per_series_and_size(self):
        result = run_experiment(EXPERIMENTS["fig5a"], sizes=[100, 200])
        assert len(result.measurements) == 2 * len(EXPERIMENTS["fig5a"].series)
        assert all(m.seconds >= 0 for m in result.measurements)
        assert all(m.output_count > 0 for m in result.measurements)

    def test_nj_and_ta_report_the_same_window_counts_for_fig5(self):
        result = run_experiment(EXPERIMENTS["fig5a"], sizes=[150])
        by_series = {m.series: m for m in result.measurements}
        assert by_series["NJ"].output_count == by_series["TA"].output_count

    def test_run_by_name_group(self):
        results = run_by_name("fig5", sizes=[80])
        assert [r.spec.experiment_id for r in results] == ["fig5a", "fig5b"]

    def test_report_contains_table_and_speedups(self):
        result = run_experiment(EXPERIMENTS["fig6a"], sizes=[120])
        assert "speedups" in result.report
        assert "NJ-WN" in result.report


class TestReporting:
    @pytest.fixture()
    def measurements(self):
        return [
            Measurement("figX", "webkit", "NJ", 100, 0.010, 42),
            Measurement("figX", "webkit", "TA", 100, 0.040, 42),
            Measurement("figX", "webkit", "NJ", 200, 0.021, 90),
            Measurement("figX", "webkit", "TA", 200, 0.096, 90),
        ]

    def test_measurements_table(self, measurements):
        table = measurements_table(measurements)
        assert "NJ [ms]" in table and "TA [ms]" in table
        assert "100" in table and "200" in table

    def test_measurements_table_empty(self):
        assert measurements_table([]) == "(no measurements)"

    def test_speedup_summary(self, measurements):
        summary = speedup_summary(measurements, baseline="TA")
        assert "TA/NJ" in summary
        assert "4.0x" in summary

    def test_experiment_report_includes_expected_shape(self, measurements):
        report = experiment_report(EXPERIMENTS["fig5a"], measurements)
        assert "expected shape" in report

    def test_write_csv(self, measurements, tmp_path):
        path = tmp_path / "out" / "measurements.csv"
        write_csv(measurements, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("experiment,")
        assert len(lines) == 5


class TestCLI:
    def test_parser_accepts_sizes(self):
        parser = build_parser()
        arguments = parser.parse_args(["fig5a", "--sizes", "100,200"])
        assert arguments.sizes == [100, 200]

    def test_parser_rejects_bad_sizes(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5a", "--sizes", "abc"])

    def test_main_runs_a_small_experiment(self, capsys, tmp_path):
        csv_path = tmp_path / "m.csv"
        exit_code = main(["fig5a", "--sizes", "80", "--csv", str(csv_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "fig5a" in captured.out
        assert csv_path.exists()

    def test_main_unknown_experiment_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonexistent"])
