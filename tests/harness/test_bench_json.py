"""Machine-readable BENCH_*.json result files."""

from __future__ import annotations

import json

from repro.harness import (
    EXPERIMENTS,
    Measurement,
    bench_payload,
    run_experiment,
    write_bench_file,
    write_bench_json,
)
from repro.harness.__main__ import main as harness_main


def _tiny_measurements(spec):
    return (
        Measurement(spec.experiment_id, spec.dataset, "NJ", 100, 0.0123, 42),
        Measurement(spec.experiment_id, spec.dataset, "TA", 100, 0.0456, 42),
    )


def test_bench_payload_shape():
    spec = EXPERIMENTS["fig5a"]
    payload = bench_payload(spec, _tiny_measurements(spec))
    assert payload["experiment"] == "fig5a"
    assert payload["dataset"] == "webkit"
    assert [m["series"] for m in payload["measurements"]] == ["NJ", "TA"]
    assert payload["measurements"][0]["seconds"] == 0.0123
    assert "python" in payload["environment"]


def test_bench_payload_follows_unified_schema():
    """Every payload carries cpu_count / seed / skipped_reason / metrics —
    the shared schema the CI perf-regression gate reads."""
    spec = EXPERIMENTS["fig5a"]
    payload = bench_payload(spec, _tiny_measurements(spec), seed=17)
    assert payload["seed"] == 17
    assert payload["cpu_count"] >= 1
    assert payload["skipped_reason"] is None
    assert payload["metrics"]["NJ_s100_output_count"] == 42
    assert payload["metrics"]["TA_s100_seconds"] == 0.0456


def test_write_bench_json_roundtrip(tmp_path):
    spec = EXPERIMENTS["fig5a"]
    path = write_bench_json(spec, _tiny_measurements(spec), tmp_path)
    assert path.name == "BENCH_fig5a.json"
    loaded = json.loads(path.read_text())
    assert loaded["measurements"][1]["output_count"] == 42


def test_write_bench_file_creates_directories(tmp_path):
    nested = tmp_path / "a" / "b"
    path = write_bench_file("custom", {"hello": 1}, nested)
    assert path == nested / "BENCH_custom.json"
    assert json.loads(path.read_text()) == {"hello": 1}


def test_real_run_produces_valid_json(tmp_path):
    spec = EXPERIMENTS["fig5a"]
    result = run_experiment(spec, sizes=[60], seed=0)
    path = write_bench_json(spec, result.measurements, tmp_path)
    loaded = json.loads(path.read_text())
    assert all(m["seconds"] >= 0 for m in loaded["measurements"])
    assert {m["series"] for m in loaded["measurements"]} == {"NJ", "TA"}


def test_harness_cli_writes_bench_files(tmp_path, capsys):
    exit_code = harness_main(
        ["fig5a", "--sizes", "60", "--json-dir", str(tmp_path)]
    )
    assert exit_code == 0
    bench_file = tmp_path / "BENCH_fig5a.json"
    assert bench_file.exists()
    assert "wrote" in capsys.readouterr().out


def test_harness_cli_json_can_be_disabled(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    exit_code = harness_main(["fig5a", "--sizes", "60", "--json-dir", ""])
    assert exit_code == 0
    assert not list(tmp_path.rglob("BENCH_*.json"))
