"""Graceful shutdown of the standalone worker server.

Covers the serving-layer satellite: SIGTERM/SIGINT drain cleanly (exit 0,
one clean-shutdown line) and ``--idle-timeout`` reaps an idle worker.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

from repro.runtime.sockets import serve_listener


def make_listener() -> socket.socket:
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    return listener


def test_serve_listener_stops_on_shutdown_event():
    listener = make_listener()
    shutdown = threading.Event()
    thread = threading.Thread(
        target=serve_listener, args=(listener,), kwargs={"shutdown": shutdown},
        daemon=True,
    )
    thread.start()
    time.sleep(0.1)
    assert thread.is_alive()
    shutdown.set()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_serve_listener_reaps_itself_after_idle_timeout():
    listener = make_listener()
    started = time.monotonic()
    serve_listener(listener, idle_timeout=0.6)
    elapsed = time.monotonic() - started
    assert 0.4 <= elapsed < 10.0


def worker_process(listen: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.worker", "--listen", listen, *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_for_line(process: subprocess.Popen, needle: str, timeout: float = 15.0) -> str:
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if needle in line:
            return line
    raise AssertionError(f"never saw {needle!r} in worker output: {lines}")


def test_worker_process_exits_zero_on_sigterm():
    process = worker_process("127.0.0.1:0")
    try:
        wait_for_line(process, "listening on")
        process.send_signal(signal.SIGTERM)
        line = wait_for_line(process, "shut down cleanly")
        assert "SIGTERM" in line
        assert process.wait(timeout=15.0) == 0
    finally:
        process.kill()
        process.wait(timeout=5.0)


def test_worker_process_exits_zero_after_idle_timeout():
    process = worker_process("127.0.0.1:0", "--idle-timeout", "0.5")
    try:
        wait_for_line(process, "listening on")
        assert process.wait(timeout=15.0) == 0
    finally:
        process.kill()
        process.wait(timeout=5.0)
