"""The runtime transports: registry, socket backend, placement, fallback.

The in-process transports (inline/threads/processes) are exercised
continuously by the stream/parallel/dataflow suites that now run on them;
this module covers the transport seam itself and the parts only the socket
backend adds — TCP framing, driver-spawned workers, external placement via
the ``python -m repro.runtime.worker`` entry point, and the loud fallback.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys

import pytest

from repro.core import tp_anti_join, tp_left_outer_join
from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog
from repro.runtime import Placement, WorkerStartError, get_transport, parse_placement
from repro.stream import StreamQuery, StreamQueryConfig
from tests.conftest import canonical_rows, make_random_relations


def _register_pair(seed: int, disorder: int = 3, size: int = 30):
    left, right, theta = make_random_relations(
        seed=seed, left_size=size, right_size=size
    )
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=disorder, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    return catalog, left, right, theta


# --------------------------------------------------------------------------- #
# registry / placement parsing
# --------------------------------------------------------------------------- #
def test_unknown_transport_rejected():
    with pytest.raises(ValueError, match="unknown transport"):
        get_transport("fibers")


def test_every_registered_transport_resolves():
    for name in ("inline", "threads", "processes", "sockets"):
        assert get_transport(name).name == name


def test_parse_placement_mixes_remote_and_local():
    placement = parse_placement("host1:9101,local,host2:9102")
    assert placement.address_of(0) == "host1:9101"
    assert placement.address_of(1) is None
    assert placement.address_of(2) == "host2:9102"
    assert placement.address_of(99) is None  # beyond the map → local
    assert placement.describe() == "host1:9101,local,host2:9102"


def test_parse_placement_rejects_portless_entries():
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_placement("nonsense")


# --------------------------------------------------------------------------- #
# socket transport: local spawns
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind,batch_join", [("anti", tp_anti_join), ("left_outer", tp_left_outer_join)])
def test_stream_query_socket_backend_matches_batch(kind, batch_join):
    catalog, left, right, theta = _register_pair(seed=41)
    query = StreamQuery(
        catalog,
        kind,
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="sockets", micro_batch_size=8),
    )
    result = query.run(merge_seed=41)
    assert result.workers == "sockets"
    assert result.events_processed == len(left) + len(right)
    batch = batch_join(left, right, theta, compute_probabilities=False)
    assert canonical_rows(result.relation, with_probability=False) == canonical_rows(
        batch, with_probability=False
    )


def test_socket_worker_failure_is_reported_to_the_driver():
    from dataclasses import replace

    from repro.parallel.stream_exec import StreamShardSpec
    from repro.stream.query import run_stream_shards
    from repro.stream.source import merge_tagged

    catalog, _left, _right, theta = _register_pair(seed=43)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    # An invalid join kind makes every worker fail while building its join.
    spec = StreamShardSpec(
        "no_such_kind",
        left_def.schema.attributes,
        right_def.schema.attributes,
        (("Key", "Key"),),
    )
    specs = tuple(replace(spec, index=index) for index in range(2))
    merged = merge_tagged(left_def.replay(), right_def.replay())
    with pytest.raises(RuntimeError, match="failed"):
        run_stream_shards("sockets", specs, merged, theta, stamp_right=False)


def test_socket_fallback_to_threads_warns():
    """An unreachable placement degrades to threads, loudly."""
    catalog, left, _right, theta = _register_pair(seed=47)
    # Nothing listens on this port: connection fails before any element is
    # consumed, so the fallback runs over the untouched replays.
    dead = Placement(("127.0.0.1:9", "127.0.0.1:9"))
    query = StreamQuery(
        catalog,
        "anti",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="sockets", placement=dead),
    )
    with pytest.warns(RuntimeWarning, match="falling back to the thread transport"):
        result = query.run(merge_seed=47)
    assert result.workers == "threads"
    assert result.events_processed > 0


def test_dataflow_socket_fallback_records_effective_backend(monkeypatch):
    from repro.dataflow import DataflowQuery, NodeSpec, assert_converged
    from repro.runtime.sockets import SocketTransport
    from tests.dataflow.conftest import make_stream_catalog

    def refuse_start(self, job, placement=None):
        raise WorkerStartError("cannot start socket workers: denied")

    monkeypatch.setattr(SocketTransport, "start", refuse_start)
    catalog, *_ = make_stream_catalog(5, sizes=(12, 12, 10), disorder=4)
    tree = [
        NodeSpec("n1", "left_outer", "a", "b", (("Key", "Key"),)),
        NodeSpec("n2", "right_outer", "n1", "c", (("Key", "Key"),)),
    ]
    query = DataflowQuery(catalog, tree, StreamQueryConfig(early_emit=True, workers="sockets"))
    with pytest.warns(RuntimeWarning, match="falling back to the thread transport"):
        result = query.run(merge_seed=5)
    assert result.backend == "threads"  # the transport that actually ran
    assert_converged(result, catalog, tree)


# --------------------------------------------------------------------------- #
# external placement via the worker entry point
# --------------------------------------------------------------------------- #
def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_placement_runs_on_external_entrypoint_workers():
    """Two `python -m repro.runtime.worker --listen` processes serve a query."""
    ports = [_free_port(), _free_port()]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.worker", "--listen", f"127.0.0.1:{port}"],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        for port in ports
    ]
    try:
        for worker in workers:
            banner = worker.stdout.readline()
            assert "listening on" in banner
        catalog, left, right, theta = _register_pair(seed=53, size=25)
        placement = Placement(tuple(f"127.0.0.1:{port}" for port in ports))
        query = StreamQuery(
            catalog,
            "left_outer",
            "l",
            "r",
            [("Key", "Key")],
            config=StreamQueryConfig(
                partitions=2, workers="sockets", placement=placement
            ),
        )
        batch = tp_left_outer_join(left, right, theta, compute_probabilities=False)
        want = canonical_rows(batch, with_probability=False)
        # Long-lived placement workers serve consecutive jobs.
        for merge_seed in (53, 54):
            result = query.run(merge_seed=merge_seed)
            assert result.workers == "sockets"
            assert canonical_rows(result.relation, with_probability=False) == want
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=10)
