"""Runtime channel: producer bookkeeping on top of the bounded FIFO.

The base FIFO semantics (capacity, blocking put, micro-batch drain, close)
are pinned by ``tests/stream/test_buffer.py`` through the historical
``BoundedBuffer`` alias; these tests cover what the runtime layer added —
the multi-producer done-sentinel close protocol.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import Channel, ChannelClosed


def test_channel_closes_after_every_producer_reports_done():
    channel: Channel[int] = Channel(capacity=8, producers=3)
    channel.put(1)
    channel.producer_done()
    channel.producer_done()
    assert channel.take_batch(8) == [1]
    # Two of three producers done: the channel is still open for the third.
    channel.put(2)
    channel.producer_done()
    with pytest.raises(ChannelClosed):
        channel.put(3)
    # Remaining elements drain before the close is observed.
    assert channel.take_batch(8) == [2]
    assert channel.take_batch(8) is None


def test_producer_count_must_be_positive():
    with pytest.raises(ValueError):
        Channel(capacity=8, producers=0)


def test_immediate_close_overrides_outstanding_producers():
    channel: Channel[int] = Channel(capacity=2, producers=5)
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.put(1)
    assert channel.take_batch(4) is None


def test_producer_done_unblocks_a_waiting_consumer():
    channel: Channel[int] = Channel(capacity=4, producers=1)
    seen = []

    def consume():
        seen.append(channel.take_batch(4))

    consumer = threading.Thread(target=consume)
    consumer.start()
    channel.producer_done()
    consumer.join(timeout=5)
    assert not consumer.is_alive()
    assert seen == [None]
