"""Property tests for the binary wire codec (:mod:`repro.runtime.wire`).

The codec must be a *bijection* on micro-batch entries: every frame kind —
events, watermarks, revisions of every kind × provisional, each optionally
carrying a trailing trace-context field — round-trips type-exactly (an
integer watermark must not come back a float, a bool must not come back an
int).  And it must fail *cleanly*: truncated or corrupt frames raise
:class:`WireFormatError` with a reason, never ``frombuffer`` garbage or an
exception from deep inside pickle.
"""

from __future__ import annotations

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.serialize import revision_kind_codes
from repro.runtime.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    WireFormatError,
    decode_batch_frame,
    decode_payload,
    encode_batch_frame,
    is_wire_frame,
)

I64 = 2**63

# --------------------------------------------------------------------------- #
# strategies: the value shapes that ride micro-batch frames
# --------------------------------------------------------------------------- #
fact_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises both the i64 and big-int encodings
    st.floats(allow_nan=False),
    st.text(max_size=8),
)
facts = st.tuples(fact_values, fact_values)

lineage_codes = st.recursive(
    st.one_of(
        st.tuples(st.just("v"), st.text(min_size=1, max_size=6)),
        st.just(("t",)),
        st.just(("f",)),
    ),
    lambda children: st.one_of(
        st.tuples(st.just("n"), children),
        st.builds(
            lambda ops: ("a", *ops), st.lists(children, min_size=1, max_size=3)
        ),
        st.builds(
            lambda ops: ("o", *ops), st.lists(children, min_size=1, max_size=3)
        ),
    ),
    max_leaves=6,
)

i64s = st.integers(min_value=-I64, max_value=I64 - 1)
probabilities = st.one_of(st.none(), st.floats(allow_nan=False))
clocks = st.one_of(st.none(), st.floats(allow_nan=False))
sides = st.integers(min_value=0, max_value=1)
tuple_codes = st.tuples(facts, lineage_codes, i64s, i64s, probabilities)
traces = st.one_of(
    st.none(), st.tuples(st.text(max_size=6), st.integers(), st.floats(allow_nan=False))
)
channels = st.one_of(
    st.none(),
    st.just("src"),
    st.tuples(st.just("src"), st.integers(min_value=0, max_value=99)),
    st.tuples(
        st.just("node"),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
)


def _with_trace(code: tuple, trace) -> tuple:
    return code if trace is None else code + (trace,)


event_entries = st.builds(
    lambda side, seq, code, clock, trace: _with_trace(("e", side, seq, code, clock), trace),
    sides,
    i64s,
    tuple_codes,
    clocks,
    traces,
)
watermark_entries = st.builds(
    lambda side, value: ("w", side, value),
    sides,
    st.one_of(st.integers(), st.floats(allow_nan=False)),
)
revision_entries = st.builds(
    lambda side, kind, provisional, code, clock, trace: _with_trace(
        ("r", side, kind, provisional, code, clock), trace
    ),
    sides,
    st.integers(min_value=0, max_value=revision_kind_codes() - 1),
    st.booleans(),
    tuple_codes,
    clocks,
    traces,
)
entries = st.lists(
    st.tuples(
        channels, st.one_of(event_entries, watermark_entries, revision_entries)
    ),
    max_size=12,
)


# --------------------------------------------------------------------------- #
# round trips
# --------------------------------------------------------------------------- #
@settings(max_examples=200)
@given(batch=entries, key=st.text(max_size=16))
def test_every_frame_kind_round_trips_type_exactly(batch, key):
    data = encode_batch_frame(key, batch)
    assert is_wire_frame(data)
    decoded_key, decoded = decode_batch_frame(data)
    assert decoded_key == key
    assert decoded == batch
    # `==` alone is too weak: 7 == 7.0 and True == 1.  repr distinguishes
    # every type the codec must preserve.
    assert repr(decoded) == repr(batch)


@given(batch=entries)
def test_decode_payload_dispatches_binary_and_pickle(batch):
    binary = encode_batch_frame("job", batch)
    assert decode_payload(binary) == ("batch", "job", batch)
    pickled = pickle.dumps(("batch", "job", batch))
    assert not is_wire_frame(pickled)
    assert decode_payload(pickled) == ("batch", "job", batch)


def test_revision_kind_space_is_covered():
    """Every revision kind (Emit / Retract / Refine) × provisional flag."""
    batch = [
        ("src", ("r", 0, kind, provisional, (("a", 1), ("v", "x"), 0, 4, 0.5), 1.0))
        for kind in range(revision_kind_codes())
        for provisional in (False, True)
    ]
    assert decode_batch_frame(encode_batch_frame("job", batch))[1] == batch


# --------------------------------------------------------------------------- #
# clean failure on corruption
# --------------------------------------------------------------------------- #
@settings(max_examples=120)
@given(batch=entries, data=st.data())
def test_any_truncation_raises_wire_format_error(batch, data):
    frame = encode_batch_frame("job", batch)
    cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
    with pytest.raises(WireFormatError):
        decode_batch_frame(frame[:cut])


def _valid_frame() -> bytes:
    return encode_batch_frame(
        "job",
        [
            (None, ("e", 0, 3, (("a", 1), ("v", "x"), 0, 5, 0.25), 1.5)),
            ("src", ("w", 1, 7)),
        ],
    )


def test_bad_magic_raises():
    frame = bytearray(_valid_frame())
    frame[0] = WIRE_MAGIC ^ 0xFF
    with pytest.raises(WireFormatError, match="magic"):
        decode_batch_frame(bytes(frame))


def test_version_mismatch_raises():
    frame = bytearray(_valid_frame())
    frame[1] = WIRE_VERSION + 1
    with pytest.raises(WireFormatError, match="version"):
        decode_batch_frame(bytes(frame))


def test_corrupt_column_dtype_raises():
    frame = bytearray(_valid_frame())
    # First column block sits right after the fixed header + job key.
    offset = struct.calcsize("!BBHI") + len(b"job")
    frame[offset] = 9
    with pytest.raises(WireFormatError, match="dtype"):
        decode_batch_frame(bytes(frame))


def test_out_of_range_revision_kind_raises():
    good = encode_batch_frame(
        "j", [(None, ("r", 0, 0, False, (("a",), ("t",), 0, 1, None), None))]
    )
    # The kinds column is the third u8 block; its single row holds kind 0.
    # Find it by locating the encoded kind byte: decode offsets are stable,
    # so patch every u8 payload byte equal to 0 after the first two blocks
    # until decoding complains about the kind — simpler: rebuild with a
    # kind the enum does not define and assert the encoder already rejects.
    with pytest.raises(WireFormatError, match="kind"):
        encode_batch_frame(
            "j",
            [(None, ("r", 0, 255, False, (("a",), ("t",), 0, 1, None), None))],
        )
    assert decode_batch_frame(good)[1][0][1][2] == 0


@pytest.mark.parametrize(
    "entry",
    [
        ("e", 0, 1, (("a",), ("v", "x"), 0, 1, 0.5), 1.0),  # bare code, no channel
        (None, ("x", 0, 1)),  # unknown tag
        (None, ("e", 2, 1, (("a",), ("t",), 0, 1, None), None)),  # bad side
        (None, ("e", 0, 1.5, (("a",), ("t",), 0, 1, None), None)),  # float sequence
        (None, ("e", 0, 1, (("a",), ("t",), 0.5, 1, None), None)),  # float start
        (None, ("e", 0, 1, (("a",), ("t",), 0, 2**64, None), None)),  # end > i64
        (None, ("e", 0, 1, (("a",), ("t",), 0, 1, 1), None)),  # int probability
        (None, ("e", 0, 1, (("a",), ("t",), 0, 1, None), 3)),  # int clock
        (None, ("e", 0, 1, ((object(),), ("t",), 0, 1, None), None)),  # exotic fact
        (None, ("r", 0, 0, 1, (("a",), ("t",), 0, 1, None), None)),  # int provisional
        (None, ("w", 0)),  # short watermark
    ],
)
def test_unencodable_entries_raise_so_sender_falls_back_to_pickle(entry):
    with pytest.raises(WireFormatError):
        encode_batch_frame("job", [entry])
