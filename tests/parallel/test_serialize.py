"""Round-trip tests for the compact partition codecs."""

from __future__ import annotations

import pytest

from repro.lineage import FALSE, TRUE, EventSpace, Var, lineage_and, lineage_not, lineage_or
from repro.parallel import (
    decode_lineage,
    decode_tagged,
    decode_tuple,
    decode_tuples,
    encode_lineage,
    encode_tagged,
    encode_tuple,
    encode_tuples,
    restricted_probabilities,
)
from repro.relation import TPTuple
from repro.stream import CLOSED, LEFT, RIGHT, StreamEvent, Tagged, Watermark
from repro.temporal import Interval


@pytest.mark.parametrize(
    "expr",
    [
        Var("a1"),
        TRUE,
        FALSE,
        lineage_not(Var("b2")),
        lineage_and(Var("a1"), lineage_not(lineage_or(Var("b1"), Var("b2")))),
        lineage_or(Var("x"), lineage_and(Var("y"), Var("z")), Var("w")),
    ],
)
def test_lineage_roundtrip(expr):
    assert decode_lineage(encode_lineage(expr)) == expr


def test_lineage_encoding_is_primitive():
    code = encode_lineage(lineage_and(Var("a1"), lineage_not(Var("b1"))))

    def only_primitives(part):
        if isinstance(part, tuple):
            return all(only_primitives(item) for item in part)
        return isinstance(part, (str, int, float))

    assert only_primitives(code)


def test_tuple_roundtrip_with_and_without_probability():
    lineage = lineage_and(Var("a1"), lineage_not(Var("b1")))
    with_p = TPTuple(("Ann", None), lineage, Interval(2, 8), 0.28)
    without_p = TPTuple(("Ann", "ZAK"), Var("a1"), Interval(1, 3))
    assert decode_tuple(encode_tuple(with_p)) == with_p
    assert decode_tuple(encode_tuple(without_p)) == without_p


def test_tuple_batch_roundtrip_preserves_order():
    tuples = [
        TPTuple((f"f{i}",), Var(f"e{i}"), Interval(i, i + 2), 0.5) for i in range(6)
    ]
    assert decode_tuples(encode_tuples(tuples)) == tuples


def test_tagged_event_roundtrip_keeps_side_sequence_and_clock():
    event = StreamEvent(TPTuple(("x",), Var("e1"), Interval(0, 4), 0.9), sequence=7)
    tagged = Tagged(LEFT, event, 123.456)
    decoded = decode_tagged(encode_tagged(tagged))
    assert decoded.side == LEFT
    assert decoded.element.sequence == 7
    assert decoded.element.tuple == event.tuple
    assert decoded.ingest_clock == 123.456


def test_tagged_watermark_roundtrip_including_closed():
    for value in (5, CLOSED):
        decoded = decode_tagged(encode_tagged(Tagged(RIGHT, Watermark(value))))
        assert decoded.side == RIGHT
        assert decoded.element.value == value
        assert decoded.ingest_clock is None


def test_restricted_probabilities_only_ships_mentioned_events():
    events = EventSpace({"a1": 0.5, "a2": 0.6, "b1": 0.7})
    tuples = [
        TPTuple(("x",), lineage_and(Var("a1"), lineage_not(Var("b1"))), Interval(0, 2))
    ]
    shipped = restricted_probabilities(events, tuples)
    assert shipped == {"a1": 0.5, "b1": 0.7}
