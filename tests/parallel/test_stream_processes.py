"""Process-backed continuous execution: equality, stats, failure handling."""

from __future__ import annotations

import pytest

from repro.core import tp_anti_join, tp_left_outer_join
from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog
from repro.parallel import StreamShardSpec, run_process_partitions
from repro.stream import StreamQuery, StreamQueryConfig
from repro.stream.source import merge_tagged
from tests.conftest import canonical_rows, make_random_relations


def _register_pair(seed: int, disorder: int = 3, size: int = 30):
    left, right, theta = make_random_relations(
        seed=seed, left_size=size, right_size=size
    )
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=disorder, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    return catalog, left, right, theta


@pytest.mark.parametrize("kind,batch_join", [("anti", tp_anti_join), ("left_outer", tp_left_outer_join)])
def test_stream_query_processes_backend_matches_batch(kind, batch_join):
    catalog, left, right, theta = _register_pair(seed=31)
    query = StreamQuery(
        catalog,
        kind,
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="processes", micro_batch_size=8),
    )
    result = query.run(merge_seed=31)
    assert result.workers == "processes"
    assert result.partitions == 2
    assert result.events_processed == len(left) + len(right)
    batch = batch_join(left, right, theta, compute_probabilities=False)
    assert canonical_rows(result.relation, with_probability=False) == canonical_rows(
        batch, with_probability=False
    )


def test_processes_backend_reports_emit_latencies_per_positive_group():
    catalog, left, _right, _theta = _register_pair(seed=7)
    query = StreamQuery(
        catalog,
        "left_outer",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="processes"),
    )
    result = query.run(merge_seed=7)
    # One latency sample per finalized positive tuple, all non-negative.
    assert len(result.emit_latencies) == len(left)
    assert all(latency >= 0.0 for latency in result.emit_latencies)


def test_worker_backend_config_is_validated():
    with pytest.raises(ValueError):
        StreamQueryConfig(workers="fibers")


def test_describe_mentions_process_backend_only_when_parallel():
    catalog, _left, _right, _theta = _register_pair(seed=1)
    parallel = StreamQuery(
        catalog, "anti", "l", "r", [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="processes"),
    )
    inline = StreamQuery(
        catalog, "anti", "l", "r", [("Key", "Key")],
        config=StreamQueryConfig(partitions=1, workers="processes"),
    )
    assert "workers=processes" in parallel.describe()
    assert "workers=processes" not in inline.describe()


def test_run_process_partitions_requires_multiple_partitions():
    catalog, _left, _right, theta = _register_pair(seed=2)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    spec = StreamShardSpec(
        "anti", left_def.schema.attributes, right_def.schema.attributes, (("Key", "Key"),)
    )
    merged = merge_tagged(left_def.replay(), right_def.replay())
    with pytest.raises(ValueError):
        run_process_partitions(spec, merged, theta, partitions=1)


def test_worker_failure_is_reported_to_the_router():
    catalog, _left, _right, theta = _register_pair(seed=3)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    # An invalid join kind makes every worker fail while building its join.
    spec = StreamShardSpec(
        "no_such_kind",
        left_def.schema.attributes,
        right_def.schema.attributes,
        (("Key", "Key"),),
    )
    merged = merge_tagged(left_def.replay(), right_def.replay())
    with pytest.raises(RuntimeError, match="failed"):
        run_process_partitions(spec, merged, theta, partitions=2)


def test_worker_start_failure_falls_back_to_threads(monkeypatch):
    """Environments without fork/spawn degrade to the thread transport — loudly."""
    from repro.runtime import WorkerStartError, transport as transport_module

    def refuse_start(self, job, placement=None):
        raise WorkerStartError("cannot start worker processes: denied")

    monkeypatch.setattr(transport_module.ProcessTransport, "start", refuse_start)
    catalog, left, right, theta = _register_pair(seed=5)
    query = StreamQuery(
        catalog,
        "anti",
        "l",
        "r",
        [("Key", "Key")],
        config=StreamQueryConfig(partitions=2, workers="processes"),
    )
    with pytest.warns(RuntimeWarning, match="falling back to the thread transport"):
        result = query.run(merge_seed=5)
    assert result.workers == "threads"  # the backend that actually ran
    batch = tp_anti_join(left, right, theta, compute_probabilities=False)
    assert canonical_rows(result.relation, with_probability=False) == canonical_rows(
        batch, with_probability=False
    )


def test_bounded_queues_backpressure_the_router():
    catalog, _left, _right, theta = _register_pair(seed=13, size=60)
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    spec = StreamShardSpec(
        "left_outer",
        left_def.schema.attributes,
        right_def.schema.attributes,
        (("Key", "Key"),),
        left_name="l",
        right_name="r",
    )
    merged = merge_tagged(left_def.replay(), right_def.replay())
    outcome = run_process_partitions(
        spec, merged, theta, partitions=2, micro_batch_size=1, buffer_capacity=1
    )
    # Tiny queues (one single-element batch in flight) must block the router
    # at least once on this workload — and the run must still be correct.
    assert outcome.backpressure_blocks > 0
    assert outcome.events_processed == 120
