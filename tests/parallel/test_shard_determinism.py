"""Property-based shard determinism: parallel ≡ serial across 1/2/4 shards.

Hypothesis generates random constraint-valid TP relation pairs; for every
generated workload the hash-partitioned runs (batch process pool, stream
thread partitions, stream process partitions) must produce output
**tuple-for-tuple equal** — in canonical order — to the single-process run,
for partition counts 1, 2 and 4.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import tp_anti_join, tp_left_outer_join
from repro.datasets import ReplayConfig, stream_def
from repro.engine import Catalog
from repro.parallel import canonical_order, parallel_tp_join
from repro.stream import StreamQuery, StreamQueryConfig
from tests.conftest import make_random_relations

PARTITION_COUNTS = (1, 2, 4)

#: A workload is summarised by its generator inputs — the factory guarantees
#: TP-constraint validity for any of them.
workloads = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=4, max_value=28),      # left size
    st.integers(min_value=4, max_value=28),      # right size
    st.integers(min_value=1, max_value=5),       # distinct join keys
)


def identity_rows(tuples, with_probability):
    ordered = canonical_order(list(tuples))
    rows = [(t.fact, t.start, t.end, str(t.lineage)) for t in ordered]
    if with_probability:
        rows = [row + (t.probability,) for row, t in zip(rows, ordered)]
    return rows


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workloads, st.sampled_from(["anti", "left_outer"]))
def test_batch_parallel_equals_serial_across_partition_counts(workload, kind):
    seed, left_size, right_size, keys = workload
    left, right, theta = make_random_relations(
        seed=seed, left_size=left_size, right_size=right_size, num_keys=keys
    )
    serial_join = tp_anti_join if kind == "anti" else tp_left_outer_join
    serial = serial_join(left, right, theta, compute_probabilities=True)
    expected = identity_rows(serial, with_probability=True)
    for partitions in PARTITION_COUNTS:
        result = parallel_tp_join(
            kind, left, right, [("Key", "Key")], workers=partitions
        )
        assert identity_rows(result.relation, with_probability=True) == expected, (
            f"kind={kind} partitions={partitions} diverged"
        )


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workloads, st.integers(min_value=0, max_value=6))
def test_stream_thread_partitions_equal_inline_run(workload, disorder):
    seed, left_size, right_size, keys = workload
    left, right, _theta = make_random_relations(
        seed=seed, left_size=left_size, right_size=right_size, num_keys=keys
    )
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=disorder, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=disorder, seed=seed + 1))
    )
    expected = None
    for partitions in PARTITION_COUNTS:
        query = StreamQuery(
            catalog,
            "left_outer",
            "l",
            "r",
            [("Key", "Key")],
            config=StreamQueryConfig(partitions=partitions, micro_batch_size=4),
        )
        rows = identity_rows(query.run(merge_seed=seed).relation, with_probability=False)
        if expected is None:
            expected = rows
        else:
            assert rows == expected, f"partitions={partitions} diverged"


# The out-of-process transports pay a fork (and, for sockets, a TCP
# handshake) per partition per example, so they get a smaller example budget
# than the in-process properties above.  The drawn transport must be
# invisible in the settled output for every partition count.
@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["processes", "sockets"]),
)
def test_stream_worker_transports_equal_inline_run(seed, transport):
    left, right, _theta = make_random_relations(seed=seed, left_size=20, right_size=20)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=3, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=3, seed=seed + 1))
    )
    expected = None
    for partitions in PARTITION_COUNTS:
        query = StreamQuery(
            catalog,
            "anti",
            "l",
            "r",
            [("Key", "Key")],
            config=StreamQueryConfig(
                partitions=partitions, workers=transport, micro_batch_size=4
            ),
        )
        rows = identity_rows(query.run(merge_seed=seed).relation, with_probability=False)
        if expected is None:
            expected = rows
        else:
            assert rows == expected, f"partitions={partitions} diverged"
