"""Parallel batch joins: equality with serial runs, fallbacks, metadata."""

from __future__ import annotations

import pytest

from repro.core import (
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from repro.parallel import ParallelConfig, canonical_order, parallel_tp_join, plan_workers
from repro.relation import PredicateCondition
from tests.conftest import canonical_rows, make_random_relations

SERIAL_JOINS = {
    "anti": tp_anti_join,
    "left_outer": tp_left_outer_join,
    "right_outer": tp_right_outer_join,
    "full_outer": tp_full_outer_join,
    "inner": tp_inner_join,
}


def tuple_rows(relation, with_probability=True):
    """Canonically ordered identity rows for tuple-for-tuple comparison."""
    ordered = canonical_order(list(relation))
    return [
        (t.fact, t.start, t.end, str(t.lineage), t.probability if with_probability else None)
        for t in ordered
    ]


@pytest.mark.parametrize("kind", sorted(SERIAL_JOINS))
def test_parallel_join_matches_serial_for_every_kind(kind):
    left, right, theta = make_random_relations(seed=11, left_size=24, right_size=24)
    serial = SERIAL_JOINS[kind](left, right, theta, compute_probabilities=True)
    result = parallel_tp_join(kind, left, right, [("Key", "Key")], workers=3)
    assert result.workers == 3
    assert tuple_rows(result.relation) == tuple_rows(serial)


def test_parallel_join_probabilities_are_bitwise_equal_to_serial():
    left, right, _theta = make_random_relations(seed=21, left_size=30, right_size=30)
    one = parallel_tp_join("left_outer", left, right, [("Key", "Key")], workers=1)
    four = parallel_tp_join("left_outer", left, right, [("Key", "Key")], workers=4)
    assert [t.probability for t in one.relation] == [t.probability for t in four.relation]


def test_workers_one_is_canonically_ordered_serial_run():
    left, right, theta = make_random_relations(seed=2)
    result = parallel_tp_join("anti", left, right, [("Key", "Key")], workers=1)
    serial = tp_anti_join(left, right, theta)
    assert result.workers == 1
    assert not result.ran_parallel
    assert [t.key() for t in result.relation] == [t.key() for t in canonical_order(serial.tuples)]


def test_non_equi_theta_falls_back_to_serial():
    left, right, _theta = make_random_relations(seed=3)
    result = parallel_tp_join("left_outer", left, right, on=(), workers=4)
    assert result.workers == 1
    serial = tp_left_outer_join(
        left, right, PredicateCondition(lambda left, right: True), compute_probabilities=True
    )
    assert canonical_rows(result.relation) == canonical_rows(serial)


def test_unknown_kind_and_bad_workers_are_rejected():
    left, right, _theta = make_random_relations(seed=4)
    with pytest.raises(ValueError):
        parallel_tp_join("semi", left, right, [("Key", "Key")])
    with pytest.raises(ValueError):
        parallel_tp_join("anti", left, right, [("Key", "Key")], workers=0)


def test_shard_metadata_accounts_for_every_tuple():
    left, right, _theta = make_random_relations(seed=6, left_size=40, right_size=32)
    result = parallel_tp_join("left_outer", left, right, [("Key", "Key")], workers=4)
    assert len(result.shard_input_sizes) == 4
    assert sum(l for l, _ in result.shard_input_sizes) == len(left)
    assert sum(r for _, r in result.shard_input_sizes) == len(right)
    assert sum(result.shard_output_sizes) == len(result.relation)


def test_plan_workers_uses_cost_model():
    left, right, _theta = make_random_relations(
        seed=8, left_size=60, right_size=60, num_keys=8
    )
    eager = ParallelConfig(max_workers=4, state_per_worker=10.0, min_tuples=10)
    lazy = ParallelConfig(max_workers=4, state_per_worker=1e12, min_tuples=10)
    assert plan_workers("left_outer", left, right, (("Key", "Key"),), eager) == 4
    assert plan_workers("left_outer", left, right, (("Key", "Key"),), lazy) == 1
    # Non-shardable θ (no pairs) always plans serial.
    assert plan_workers("left_outer", left, right, (), eager) == 1
    # Worker count never exceeds the distinct join keys (one key, one shard).
    few_keys, few_negatives, _ = make_random_relations(
        seed=8, left_size=60, right_size=60, num_keys=1
    )
    assert plan_workers("left_outer", few_keys, few_negatives, (("Key", "Key"),), eager) == 1


def test_cost_model_choice_applied_when_workers_omitted():
    left, right, _theta = make_random_relations(seed=8, left_size=60, right_size=60)
    config = ParallelConfig(max_workers=2, state_per_worker=10.0, min_tuples=10)
    result = parallel_tp_join("anti", left, right, [("Key", "Key")], config=config)
    assert result.workers == 2
