"""Property round-trips for the wire codecs the socket transport ships.

Every byte that crosses a process or TCP boundary goes through
``repro/parallel/serialize.py``: lineage trees, TP tuples, stream events,
watermark frames, and dataflow revisions (all kinds × provisional).  These
hypothesis suites pin that every codec is an exact inverse bijection over
randomly generated values — the distributed backend is only as correct as
these encodings.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.dataflow import Revision, RevisionKind
from repro.lineage import FALSE, TRUE, And, Not, Or, Var
from repro.parallel import (
    decode_lineage,
    decode_tagged,
    decode_tuple,
    encode_lineage,
    encode_tagged,
    encode_tuple,
)
from repro.parallel.serialize import decode_revision_tagged, encode_revision_tagged
from repro.relation import TPTuple
from repro.stream import CLOSED, LEFT, RIGHT, StreamEvent, Tagged, Watermark
from repro.temporal import Interval

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
_event_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)

lineages = st.recursive(
    st.one_of(
        st.just(TRUE),
        st.just(FALSE),
        _event_names.map(Var),
    ),
    lambda children: st.one_of(
        children.map(Not),
        st.lists(children, min_size=2, max_size=4).map(lambda parts: And(tuple(parts))),
        st.lists(children, min_size=2, max_size=4).map(lambda parts: Or(tuple(parts))),
    ),
    max_leaves=12,
)

_fact_values = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(max_size=8),
)

_probabilities = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
)


@st.composite
def tp_tuples(draw):
    fact = tuple(draw(st.lists(_fact_values, min_size=1, max_size=5)))
    start = draw(st.integers(min_value=-1_000, max_value=1_000))
    length = draw(st.integers(min_value=1, max_value=500))
    return TPTuple(
        fact,
        draw(lineages),
        Interval(start, start + length),
        draw(_probabilities),
    )


_sides = st.sampled_from([LEFT, RIGHT])
_clocks = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
)

#: Watermark values as they occur in the wild: finite event times, the
#: stream-closing +inf, and the never-reported -inf floor.
_watermark_values = st.one_of(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    st.just(CLOSED),
    st.just(float("-inf")),
)


@st.composite
def tagged_events(draw):
    return Tagged(
        draw(_sides),
        StreamEvent(draw(tp_tuples()), sequence=draw(st.integers(0, 2**31))),
        draw(_clocks),
    )


@st.composite
def tagged_watermarks(draw):
    return Tagged(draw(_sides), Watermark(draw(_watermark_values)))


@st.composite
def tagged_revisions(draw):
    return Tagged(
        draw(_sides),
        Revision(
            draw(st.sampled_from(list(RevisionKind))),
            draw(tp_tuples()),
            provisional=draw(st.booleans()),
        ),
        draw(_clocks),
    )


# --------------------------------------------------------------------------- #
# round-trips
# --------------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(expr=lineages)
def test_lineage_roundtrip_is_exact(expr):
    assert decode_lineage(encode_lineage(expr)) == expr


@settings(max_examples=200, deadline=None)
@given(tp_tuple=tp_tuples())
def test_tuple_roundtrip_is_exact(tp_tuple):
    decoded = decode_tuple(encode_tuple(tp_tuple))
    assert decoded == tp_tuple
    # Probability equality must be bitwise, not approximate.
    assert decoded.probability == tp_tuple.probability


@settings(max_examples=150, deadline=None)
@given(tagged=tagged_events())
def test_event_roundtrip_preserves_side_sequence_and_clock(tagged):
    decoded = decode_tagged(encode_tagged(tagged))
    assert decoded.side == tagged.side
    assert decoded.ingest_clock == tagged.ingest_clock
    assert decoded.element == tagged.element


@settings(max_examples=150, deadline=None)
@given(tagged=tagged_watermarks())
def test_watermark_roundtrip_preserves_value(tagged):
    decoded = decode_tagged(encode_tagged(tagged))
    assert decoded.side == tagged.side
    assert isinstance(decoded.element, Watermark)
    value = decoded.element.value
    assert value == tagged.element.value or (
        math.isinf(value) and math.isinf(tagged.element.value)
    )
    assert decoded.element.closes == tagged.element.closes


@settings(max_examples=200, deadline=None)
@given(tagged=tagged_revisions())
def test_revision_roundtrip_covers_all_kinds_and_provisional(tagged):
    decoded = decode_revision_tagged(encode_revision_tagged(tagged))
    assert decoded.side == tagged.side
    assert decoded.ingest_clock == tagged.ingest_clock
    revision = decoded.element
    assert isinstance(revision, Revision)
    assert revision.kind is tagged.element.kind
    assert revision.provisional == tagged.element.provisional
    assert revision.tuple == tagged.element.tuple


@settings(max_examples=100, deadline=None)
@given(
    tagged=st.one_of(tagged_events(), tagged_watermarks()),
)
def test_revision_codec_delegates_stream_elements_unchanged(tagged):
    """Source edges and node edges share one wire format."""
    assert encode_revision_tagged(tagged) == encode_tagged(tagged)
    decoded = decode_revision_tagged(encode_revision_tagged(tagged))
    assert decoded.element == tagged.element
