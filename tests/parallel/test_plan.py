"""Shard planner tests: stable hashing, co-partitioning, cost model."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.parallel import (
    ParallelConfig,
    choose_partitions,
    estimate_join_state,
    partition_pair,
    partition_tuples,
    shardable,
    stable_hash,
)
from repro.relation import (
    EquiJoinCondition,
    PredicateCondition,
    Schema,
    TPTuple,
    TrueCondition,
)
from repro.temporal import Interval
from tests.conftest import make_random_relations


def test_stable_hash_is_stable_across_interpreter_processes():
    """Unlike builtin hash(), shard routing must not depend on PYTHONHASHSEED."""
    values = []
    for _ in range(2):
        output = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.parallel import stable_hash; "
                "print(stable_hash(('ZAK', 3)))",
            ],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        )
        values.append(output.stdout.strip())
    assert values[0] == values[1] == str(stable_hash(("ZAK", 3)))


def test_partition_tuples_preserves_per_shard_order_and_covers_all():
    left, _right, theta = make_random_relations(seed=5, left_size=40)
    shards = partition_tuples(left.tuples, theta.left_key, 4)
    assert sum(len(shard) for shard in shards) == len(left)
    # Within a shard, tuples keep their input order.
    positions = {id(t): i for i, t in enumerate(left.tuples)}
    for shard in shards:
        indexes = [positions[id(t)] for t in shard]
        assert indexes == sorted(indexes)


def test_partition_pair_keeps_each_key_in_exactly_one_shard():
    left, right, theta = make_random_relations(seed=9, left_size=30, right_size=30)
    left_shards, right_shards = partition_pair(left.tuples, right.tuples, theta, 3)
    key_shard: dict = {}
    for index, (left_shard, right_shard) in enumerate(zip(left_shards, right_shards)):
        for tp_tuple in left_shard:
            key = theta.left_key(tp_tuple)
            assert key_shard.setdefault(key, index) == index
        for tp_tuple in right_shard:
            key = theta.right_key(tp_tuple)
            assert key_shard.setdefault(key, index) == index
    assert sum(len(shard) for shard in left_shards) == len(left)
    assert sum(len(shard) for shard in right_shards) == len(right)


def test_partition_pair_hash_mode_matches_stream_router():
    left, right, theta = make_random_relations(seed=9, left_size=30, right_size=30)
    left_shards, right_shards = partition_pair(
        left.tuples, right.tuples, theta, 3, balance=False
    )
    for index, (left_shard, right_shard) in enumerate(zip(left_shards, right_shards)):
        for tp_tuple in left_shard:
            assert stable_hash(theta.left_key(tp_tuple)) % 3 == index
        for tp_tuple in right_shard:
            assert stable_hash(theta.right_key(tp_tuple)) % 3 == index


def test_balanced_assignment_spreads_load_better_than_worst_case():
    from repro.parallel import balanced_key_assignment

    left, right, theta = make_random_relations(
        seed=17, left_size=80, right_size=80, num_keys=5
    )
    assignment = balanced_key_assignment(left.tuples, right.tuples, theta, 4)
    assert set(assignment.values()) <= {0, 1, 2, 3}
    # Deterministic across calls.
    again = balanced_key_assignment(left.tuples, right.tuples, theta, 4)
    assert assignment == again


def test_partition_pair_rejects_non_equi_theta():
    left, right, _theta = make_random_relations(seed=1)
    predicate = PredicateCondition(lambda left, right: True)
    with pytest.raises(ValueError):
        partition_pair(left.tuples, right.tuples, predicate, 2)


def test_shardable_conditions():
    schema_l, schema_r = Schema.of("K", "V"), Schema.of("K", "W")
    assert shardable(EquiJoinCondition(schema_l, schema_r, (("K", "K"),)))
    assert not shardable(TrueCondition())
    assert not shardable(PredicateCondition(lambda left, right: True))


def test_estimate_join_state_uses_key_selectivity():
    # 1000 positives, 500 negatives over 10 distinct keys → 50 matches each.
    assert estimate_join_state(1000, 500, 10) == 1000 * 50.0
    # A selective key (all distinct) bottoms out at one match per positive.
    assert estimate_join_state(1000, 500, 500) == 1000.0


def test_choose_partitions_scales_with_state_and_respects_bounds():
    config = ParallelConfig(max_workers=4, state_per_worker=1000.0, min_tuples=100)
    assert choose_partitions(500.0, 1000, config) == 1
    assert choose_partitions(1500.0, 1000, config) == 2
    assert choose_partitions(1_000_000.0, 1000, config) == 4  # capped
    # Small inputs never shard, whatever the state estimate says.
    assert choose_partitions(1_000_000.0, 50, config) == 1
    # A single join key cannot be split: extra workers would only idle.
    assert choose_partitions(1_000_000.0, 1000, config, distinct_keys=1) == 1
    assert choose_partitions(1_000_000.0, 1000, config, distinct_keys=3) == 3


def test_parallel_config_validation():
    with pytest.raises(ValueError):
        ParallelConfig(max_workers=0)
    with pytest.raises(ValueError):
        ParallelConfig(state_per_worker=0.0)


def test_stable_hash_is_equality_invariant_across_numeric_types():
    """a == b must imply the same shard, exactly as the serial join's ==.

    The serial equi-join matches keys with ==, under which 1 == 1.0 == True;
    routing them to different shards would silently lose matches.
    """
    from decimal import Decimal
    from fractions import Fraction

    assert stable_hash((1,)) == stable_hash((1.0,)) == stable_hash((True,))
    assert stable_hash((1,)) == stable_hash((Decimal(1),)) == stable_hash((Fraction(1),))
    assert stable_hash(("ZAK", 2)) == stable_hash(("ZAK", 2.0))
    # And stays discriminating for genuinely different keys.
    assert stable_hash((1,)) != stable_hash((2,))


def test_cross_type_equal_keys_join_identically_in_parallel():
    from repro.core import tp_left_outer_join
    from repro.parallel import parallel_tp_join
    from repro.relation import Schema, TPRelation, equi_join_on
    from tests.conftest import canonical_rows

    left = TPRelation.from_rows(
        Schema.of("K", "V"),
        [(1, "x", "l1", 0, 10, 0.5), (2, "y", "l2", 0, 10, 0.5)],
        name="l",
    )
    right = TPRelation.from_rows(
        Schema.of("K", "W"),
        [(1.0, "m", "r1", 2, 6, 0.5), (2.0, "n", "r2", 4, 8, 0.5)],
        name="r",
    )
    serial = tp_left_outer_join(
        left, right, equi_join_on(left.schema, right.schema, [("K", "K")])
    )
    for workers in (2, 4):
        result = parallel_tp_join("left_outer", left, right, [("K", "K")], workers=workers)
        assert canonical_rows(result.relation) == canonical_rows(serial)


def test_partition_tuples_rejects_nonpositive_counts():
    tuples = [TPTuple(("x",), None, Interval(0, 1))]
    with pytest.raises(ValueError):
        partition_tuples(tuples, lambda t: t.fact, 0)
