"""End-to-end integration tests across all subsystems."""

from __future__ import annotations

import pytest

from repro import (
    Schema,
    TPRelation,
    equi_join_on,
    naive_left_outer_join,
    ta_left_outer_join,
    tp_anti_join,
    tp_left_outer_join,
)
from repro.datasets import meteo_pair, uniform_subset, webkit_pair
from repro.engine import Engine, JoinStrategy
from repro.lineage import MonteCarloEstimator
from repro.relation import EquiJoinCondition, read_relation_csv, write_relation_csv
from tests.conftest import canonical_rows


class TestGeneratedWorkloadsEndToEnd:
    def test_nj_equals_ta_on_a_webkit_like_workload(self):
        positive, negative = webkit_pair(120, seed=5)
        theta = EquiJoinCondition(positive.schema, negative.schema, (("File", "File"),))
        nj = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
        ta = ta_left_outer_join(positive, negative, theta, compute_probabilities=False)
        assert canonical_rows(nj, with_probability=False) == canonical_rows(
            ta, with_probability=False
        )

    def test_nj_equals_naive_on_a_meteo_like_workload(self):
        positive, negative = meteo_pair(60, seed=6)
        theta = EquiJoinCondition(positive.schema, negative.schema, (("Metric", "Metric"),))
        nj = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
        naive = naive_left_outer_join(positive, negative, theta, compute_probabilities=False)
        assert canonical_rows(nj, with_probability=False) == canonical_rows(
            naive, with_probability=False
        )

    def test_subsetting_then_joining(self):
        positive, negative = webkit_pair(400, seed=7)
        theta = EquiJoinCondition(positive.schema, negative.schema, (("File", "File"),))
        small_positive = uniform_subset(positive, 100, seed=1)
        small_negative = uniform_subset(negative, 100, seed=2)
        result = tp_anti_join(small_positive, small_negative, theta)
        assert len(result) >= len(small_positive)  # at least one window per tuple
        for tp_tuple in result:
            assert 0.0 <= tp_tuple.probability <= 1.0


class TestCsvToEngineRoundTrip:
    def test_csv_relations_through_the_sql_engine(self, tmp_path, wants_to_visit, hotel_availability):
        write_relation_csv(wants_to_visit, tmp_path / "a.csv")
        write_relation_csv(hotel_availability, tmp_path / "b.csv")
        shared_events = None
        a = read_relation_csv(tmp_path / "a.csv", name="a")
        b = read_relation_csv(tmp_path / "b.csv", events=a.events, name="b")

        engine = Engine()
        engine.register("a", a)
        engine.register("b", b)
        result = engine.execute_sql("SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc")
        assert len(result) == 7


class TestProbabilitySemanticsEndToEnd:
    def test_exact_probabilities_agree_with_monte_carlo_on_join_results(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        estimator = MonteCarloEstimator(result.events, seed=123)
        for tp_tuple in result:
            estimate = estimator.estimate(tp_tuple.lineage, samples=20_000)
            assert estimate.contains(tp_tuple.probability)

    def test_snapshot_semantics_match_a_manual_possible_worlds_computation(self):
        """At one time point, the join result's marginals must match brute force.

        We enumerate the 2^4 possible worlds of a tiny database and compare the
        probability that 'x is valid and no matching y is valid' against the
        anti join's output tuple covering that time point.
        """
        left = TPRelation.from_rows(Schema.of("K"), [("k", "x1", 0, 10, 0.6)], name="l")
        right = TPRelation.from_rows(
            Schema.of("K", "Id"),
            [
                ("k", 1, "y1", 2, 6, 0.3),
                ("k", 2, "y2", 4, 8, 0.5),
                ("k", 3, "y3", 20, 25, 0.9),
            ],
            events=left.events,
            name="r",
        )
        theta = equi_join_on(left.schema, right.schema, [("K", "K")])
        result = tp_anti_join(left, right, theta)
        at_five = [t for t in result if 5 in t.interval]
        assert len(at_five) == 1
        # worlds: x1 true AND y1 false AND y2 false (y3 irrelevant at t=5)
        assert at_five[0].probability == pytest.approx(0.6 * 0.7 * 0.5)


class TestEngineStrategiesOnGeneratedData:
    def test_nj_and_ta_strategies_agree_via_sql(self):
        positive, negative = meteo_pair(40, seed=9)
        engine = Engine(default_strategy=JoinStrategy.NJ)
        engine.register("r", positive)
        engine.register("s", negative)
        nj = engine.execute_sql(
            "SELECT * FROM r TP LEFT OUTER JOIN s ON r.Metric = s.Metric USING NJ",
            compute_probabilities=False,
        )
        ta = engine.execute_sql(
            "SELECT * FROM r TP LEFT OUTER JOIN s ON r.Metric = s.Metric USING TA",
            compute_probabilities=False,
        )
        assert canonical_rows(nj, with_probability=False) == canonical_rows(
            ta, with_probability=False
        )
