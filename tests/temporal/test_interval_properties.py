"""Property-based tests for the temporal substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal import (
    Interval,
    IntervalSet,
    allen_relation,
    intervals_overlap,
    partition_by_validity,
    segments_within,
)

interval_strategy = st.builds(
    lambda start, length: Interval(start, start + length),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=1, max_value=30),
)

interval_lists = st.lists(interval_strategy, min_size=0, max_size=8)


@given(interval_strategy, interval_strategy)
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(interval_strategy, interval_strategy)
def test_intersection_agrees_with_overlap(a, b):
    overlap = a.intersect(b)
    assert (overlap is not None) == a.overlaps(b)
    if overlap is not None:
        assert a.contains_interval(overlap)
        assert b.contains_interval(overlap)


@given(interval_strategy, interval_strategy)
def test_difference_and_intersection_partition_the_interval(a, b):
    pieces = a.difference(b)
    overlap = a.intersect(b)
    total = sum(piece.duration for piece in pieces) + (overlap.duration if overlap else 0)
    assert total == a.duration


@given(interval_strategy, interval_strategy)
def test_allen_relation_overlap_consistency(a, b):
    assert intervals_overlap(a, b) == a.overlaps(b)
    assert allen_relation(a, b) == allen_relation(a, b)  # deterministic


@given(interval_lists, interval_strategy)
def test_complement_within_is_disjoint_from_the_set(others, frame):
    covered = IntervalSet(others)
    gaps = covered.complement_within(frame)
    assert not covered.intersect(gaps)
    # gaps together with the covered-part-in-frame tile the frame
    inside = covered.intersect(IntervalSet([frame]))
    assert inside.duration + gaps.duration == frame.duration


@given(interval_lists, interval_strategy)
def test_segments_within_always_tiles_the_frame(others, frame):
    pieces = segments_within(frame, others)
    assert pieces[0].start == frame.start
    assert pieces[-1].end == frame.end
    assert sum(piece.duration for piece in pieces) == frame.duration
    for left, right in zip(pieces, pieces[1:]):
        assert left.end == right.start


@given(interval_lists, interval_strategy)
@settings(max_examples=60)
def test_partition_by_validity_active_sets_are_correct(others, frame):
    for segment, active in partition_by_validity(frame, others):
        for index, other in enumerate(others):
            covers = other.contains_interval(segment)
            assert (index in active) == covers


@given(interval_lists, interval_strategy)
@settings(max_examples=60)
def test_partition_by_validity_is_maximal(others, frame):
    parts = partition_by_validity(frame, others)
    for (left_piece, left_active), (right_piece, right_active) in zip(parts, parts[1:]):
        if left_piece.end == right_piece.start:
            assert left_active != right_active
