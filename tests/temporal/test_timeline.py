"""Tests for repro.temporal.timeline."""

from __future__ import annotations

from repro.temporal import (
    Interval,
    Timeline,
    change_points,
    partition_by_validity,
    segments,
    segments_within,
    sweep_events,
)


class TestChangePoints:
    def test_collects_all_endpoints(self):
        assert change_points([Interval(1, 4), Interval(3, 6)]) == [1, 3, 4, 6]

    def test_deduplicates(self):
        assert change_points([Interval(1, 4), Interval(4, 6)]) == [1, 4, 6]

    def test_empty(self):
        assert change_points([]) == []


class TestSegments:
    def test_elementary_segments(self):
        assert segments([Interval(1, 4), Interval(3, 6)]) == [
            Interval(1, 3),
            Interval(3, 4),
            Interval(4, 6),
        ]

    def test_segments_within_frame(self):
        pieces = segments_within(Interval(2, 8), [Interval(4, 6), Interval(5, 9)])
        assert pieces == [Interval(2, 4), Interval(4, 5), Interval(5, 6), Interval(6, 8)]

    def test_segments_within_without_interior_points(self):
        assert segments_within(Interval(2, 8), [Interval(0, 10)]) == [Interval(2, 8)]

    def test_segments_within_partition_covers_frame(self):
        frame = Interval(0, 12)
        pieces = segments_within(frame, [Interval(3, 5), Interval(5, 9), Interval(1, 2)])
        assert pieces[0].start == frame.start
        assert pieces[-1].end == frame.end
        for left, right in zip(pieces, pieces[1:]):
            assert left.end == right.start


class TestSweepEvents:
    def test_events_sorted_with_end_before_start_at_ties(self):
        events = sweep_events([(Interval(1, 4), "x"), (Interval(4, 6), "y")])
        times_and_kinds = [(event.time, event.is_start) for event in events]
        assert times_and_kinds == [(1, True), (4, False), (4, True), (6, False)]

    def test_payloads_preserved(self):
        events = sweep_events([(Interval(1, 2), "p")])
        assert {event.payload for event in events} == {"p"}
        assert events[0].is_start and events[1].is_end


class TestTimeline:
    def test_valid_at(self):
        timeline = Timeline([(Interval(1, 4), "a"), (Interval(3, 6), "b")])
        assert sorted(timeline.valid_at(3)) == ["a", "b"]
        assert timeline.valid_at(5) == ["b"]
        assert timeline.valid_at(0) == []
        assert timeline.valid_at(6) == []

    def test_overlapping_query(self):
        timeline = Timeline([(Interval(1, 4), "a"), (Interval(5, 8), "b"), (Interval(7, 9), "c")])
        assert sorted(timeline.overlapping(Interval(3, 6))) == ["a", "b"]
        assert sorted(timeline.overlapping(Interval(0, 10))) == ["a", "b", "c"]
        assert timeline.overlapping(Interval(4, 5)) == []

    def test_change_points_within(self):
        timeline = Timeline([(Interval(1, 4), "a"), (Interval(3, 6), "b")])
        assert timeline.change_points_within(Interval(2, 10)) == [3, 4, 6]
        assert timeline.change_points_within(Interval(0, 2)) == [1]

    def test_len(self):
        assert len(Timeline([(Interval(1, 2), "a")])) == 1


class TestPartitionByValidity:
    def test_paper_example_segmentation(self):
        # a1 = [2,8) against b3 = [4,6) and b2 = [5,8): the segmentation that
        # produces the unmatched window [2,4) and the negating windows
        # [4,5), [5,6), [6,8) of Fig. 1b.
        frame = Interval(2, 8)
        others = [Interval(4, 6), Interval(5, 8)]
        parts = partition_by_validity(frame, others)
        assert parts == [
            (Interval(2, 4), ()),
            (Interval(4, 5), (0,)),
            (Interval(5, 6), (0, 1)),
            (Interval(6, 8), (1,)),
        ]

    def test_no_others_yields_single_segment(self):
        assert partition_by_validity(Interval(1, 5), []) == [(Interval(1, 5), ())]

    def test_merges_consecutive_segments_with_equal_active_sets(self):
        # The second interval does not overlap the frame at all, so its
        # endpoints must not fragment the frame.
        parts = partition_by_validity(Interval(1, 5), [Interval(0, 10), Interval(20, 30)])
        assert parts == [(Interval(1, 5), (0,))]

    def test_partition_covers_frame_exactly(self):
        frame = Interval(0, 15)
        others = [Interval(2, 5), Interval(4, 9), Interval(11, 20)]
        parts = partition_by_validity(frame, others)
        assert parts[0][0].start == frame.start
        assert parts[-1][0].end == frame.end
        assert sum(piece.duration for piece, _active in parts) == frame.duration
