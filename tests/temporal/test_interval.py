"""Tests for repro.temporal.interval."""

from __future__ import annotations

import pytest

from repro.temporal import Interval, IntervalError, intersect_all, span, total_duration


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(2, 8)
        assert interval.start == 2
        assert interval.end == 8

    def test_empty_interval_rejected(self):
        with pytest.raises(IntervalError):
            Interval(5, 5)

    def test_inverted_interval_rejected(self):
        with pytest.raises(IntervalError):
            Interval(7, 3)

    def test_negative_times_allowed(self):
        interval = Interval(-5, -1)
        assert interval.duration == 4

    def test_intervals_are_hashable_and_equal_by_value(self):
        assert Interval(1, 3) == Interval(1, 3)
        assert hash(Interval(1, 3)) == hash(Interval(1, 3))
        assert len({Interval(1, 3), Interval(1, 3), Interval(1, 4)}) == 2

    def test_ordering_is_lexicographic(self):
        assert sorted([Interval(3, 5), Interval(1, 9), Interval(1, 2)]) == [
            Interval(1, 2),
            Interval(1, 9),
            Interval(3, 5),
        ]

    def test_str_uses_half_open_notation(self):
        assert str(Interval(4, 6)) == "[4,6)"


class TestMembership:
    def test_contains_start_point(self):
        assert 2 in Interval(2, 8)

    def test_excludes_end_point(self):
        assert 8 not in Interval(2, 8)

    def test_contains_interior_point(self):
        assert 5 in Interval(2, 8)

    def test_duration_counts_time_points(self):
        assert Interval(7, 10).duration == 3

    def test_time_points_enumeration(self):
        assert list(Interval(4, 7).time_points()) == [4, 5, 6]

    def test_contains_interval(self):
        assert Interval(2, 8).contains_interval(Interval(3, 5))
        assert Interval(2, 8).contains_interval(Interval(2, 8))
        assert not Interval(2, 8).contains_interval(Interval(1, 5))
        assert not Interval(2, 8).contains_interval(Interval(5, 9))


class TestRelationships:
    def test_overlaps_true_on_partial_overlap(self):
        assert Interval(2, 8).overlaps(Interval(5, 10))

    def test_overlaps_false_when_adjacent(self):
        assert not Interval(2, 5).overlaps(Interval(5, 8))

    def test_overlaps_false_when_disjoint(self):
        assert not Interval(2, 4).overlaps(Interval(6, 8))

    def test_overlaps_is_symmetric(self):
        assert Interval(5, 10).overlaps(Interval(2, 8))

    def test_meets(self):
        assert Interval(2, 5).meets(Interval(5, 8))
        assert not Interval(2, 5).meets(Interval(6, 8))

    def test_adjacent_both_directions(self):
        assert Interval(2, 5).adjacent(Interval(5, 8))
        assert Interval(5, 8).adjacent(Interval(2, 5))

    def test_before(self):
        assert Interval(1, 3).before(Interval(3, 5))
        assert Interval(1, 3).before(Interval(4, 5))
        assert not Interval(1, 4).before(Interval(3, 5))


class TestCombination:
    def test_intersect_overlapping(self):
        assert Interval(2, 8).intersect(Interval(5, 10)) == Interval(5, 8)

    def test_intersect_contained(self):
        assert Interval(2, 8).intersect(Interval(4, 6)) == Interval(4, 6)

    def test_intersect_disjoint_is_none(self):
        assert Interval(2, 4).intersect(Interval(6, 8)) is None

    def test_intersect_adjacent_is_none(self):
        assert Interval(2, 4).intersect(Interval(4, 8)) is None

    def test_union_overlapping(self):
        assert Interval(2, 6).union(Interval(4, 9)) == Interval(2, 9)

    def test_union_adjacent(self):
        assert Interval(2, 4).union(Interval(4, 9)) == Interval(2, 9)

    def test_union_disjoint_raises(self):
        with pytest.raises(IntervalError):
            Interval(2, 4).union(Interval(6, 9))

    def test_difference_no_overlap(self):
        assert Interval(2, 4).difference(Interval(6, 8)) == [Interval(2, 4)]

    def test_difference_hole_in_the_middle(self):
        assert Interval(2, 10).difference(Interval(4, 6)) == [Interval(2, 4), Interval(6, 10)]

    def test_difference_covering(self):
        assert Interval(4, 6).difference(Interval(2, 10)) == []

    def test_difference_prefix(self):
        assert Interval(2, 8).difference(Interval(1, 5)) == [Interval(5, 8)]

    def test_split_at_interior_point(self):
        assert Interval(2, 8).split_at(5) == (Interval(2, 5), Interval(5, 8))

    def test_split_at_boundary_is_noop(self):
        assert Interval(2, 8).split_at(2) == (Interval(2, 8),)
        assert Interval(2, 8).split_at(8) == (Interval(2, 8),)

    def test_split_at_points(self):
        pieces = Interval(2, 10).split_at_points([4, 7, 0, 12, 4])
        assert pieces == [Interval(2, 4), Interval(4, 7), Interval(7, 10)]

    def test_split_at_points_none_interior(self):
        assert Interval(2, 5).split_at_points([0, 7]) == [Interval(2, 5)]


class TestAggregates:
    def test_span(self):
        assert span([Interval(4, 6), Interval(1, 3), Interval(5, 9)]) == Interval(1, 9)

    def test_span_empty(self):
        assert span([]) is None

    def test_intersect_all(self):
        assert intersect_all([Interval(1, 8), Interval(3, 9), Interval(2, 6)]) == Interval(3, 6)

    def test_intersect_all_disjoint(self):
        assert intersect_all([Interval(1, 3), Interval(5, 7)]) is None

    def test_total_duration_counts_overlap_once(self):
        assert total_duration([Interval(1, 5), Interval(3, 7), Interval(10, 12)]) == 8

    def test_total_duration_empty(self):
        assert total_duration([]) == 0
