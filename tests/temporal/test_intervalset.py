"""Tests for repro.temporal.intervalset."""

from __future__ import annotations

from repro.temporal import Interval, IntervalSet


class TestConstruction:
    def test_empty_set(self):
        interval_set = IntervalSet()
        assert len(interval_set) == 0
        assert not interval_set
        assert interval_set.duration == 0
        assert interval_set.span() is None

    def test_coalesces_overlapping_inputs(self):
        interval_set = IntervalSet([Interval(1, 5), Interval(3, 8)])
        assert interval_set.intervals == (Interval(1, 8),)

    def test_coalesces_adjacent_inputs(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(3, 6)])
        assert interval_set.intervals == (Interval(1, 6),)

    def test_keeps_disjoint_inputs_sorted(self):
        interval_set = IntervalSet([Interval(6, 8), Interval(1, 3)])
        assert interval_set.intervals == (Interval(1, 3), Interval(6, 8))

    def test_equality_and_hash(self):
        assert IntervalSet([Interval(1, 3), Interval(3, 5)]) == IntervalSet([Interval(1, 5)])
        assert hash(IntervalSet([Interval(1, 5)])) == hash(IntervalSet([Interval(1, 5)]))

    def test_membership_of_time_points(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(6, 8)])
        assert 2 in interval_set
        assert 4 not in interval_set
        assert 6 in interval_set
        assert 8 not in interval_set


class TestAlgebra:
    def test_union(self):
        left = IntervalSet([Interval(1, 3)])
        right = IntervalSet([Interval(2, 6), Interval(9, 11)])
        assert left.union(right).intervals == (Interval(1, 6), Interval(9, 11))

    def test_add(self):
        assert IntervalSet([Interval(1, 3)]).add(Interval(5, 7)).intervals == (
            Interval(1, 3),
            Interval(5, 7),
        )

    def test_intersect(self):
        left = IntervalSet([Interval(1, 5), Interval(8, 12)])
        right = IntervalSet([Interval(3, 9)])
        assert left.intersect(right).intervals == (Interval(3, 5), Interval(8, 9))

    def test_intersect_empty(self):
        assert not IntervalSet([Interval(1, 3)]).intersect(IntervalSet([Interval(5, 7)]))

    def test_difference(self):
        left = IntervalSet([Interval(1, 10)])
        right = IntervalSet([Interval(2, 4), Interval(6, 7)])
        assert left.difference(right).intervals == (
            Interval(1, 2),
            Interval(4, 6),
            Interval(7, 10),
        )

    def test_difference_removes_everything(self):
        assert not IntervalSet([Interval(2, 4)]).difference(IntervalSet([Interval(1, 6)]))

    def test_complement_within_frame(self):
        covered = IntervalSet([Interval(4, 6), Interval(5, 8)])
        gaps = covered.complement_within(Interval(2, 10))
        assert gaps.intervals == (Interval(2, 4), Interval(8, 10))

    def test_complement_within_fully_covered_frame(self):
        assert not IntervalSet([Interval(0, 20)]).complement_within(Interval(3, 9))

    def test_complement_within_empty_set_is_frame(self):
        assert IntervalSet().complement_within(Interval(3, 9)).intervals == (Interval(3, 9),)

    def test_covers(self):
        interval_set = IntervalSet([Interval(1, 5), Interval(5, 9)])
        assert interval_set.covers(Interval(2, 8))
        assert not interval_set.covers(Interval(2, 10))

    def test_overlaps(self):
        interval_set = IntervalSet([Interval(1, 3)])
        assert interval_set.overlaps(Interval(2, 8))
        assert not interval_set.overlaps(Interval(3, 8))

    def test_duration_sums_disjoint_pieces(self):
        assert IntervalSet([Interval(1, 3), Interval(5, 9)]).duration == 6

    def test_span_covers_gaps(self):
        assert IntervalSet([Interval(1, 3), Interval(8, 9)]).span() == Interval(1, 9)
