"""Tests for repro.temporal.allen."""

from __future__ import annotations

import pytest

from repro.temporal import AllenRelation, Interval, allen_relation, intervals_overlap, inverse


CASES = [
    (Interval(1, 3), Interval(5, 8), AllenRelation.BEFORE),
    (Interval(5, 8), Interval(1, 3), AllenRelation.AFTER),
    (Interval(1, 3), Interval(3, 8), AllenRelation.MEETS),
    (Interval(3, 8), Interval(1, 3), AllenRelation.MET_BY),
    (Interval(1, 5), Interval(3, 8), AllenRelation.OVERLAPS),
    (Interval(3, 8), Interval(1, 5), AllenRelation.OVERLAPPED_BY),
    (Interval(1, 3), Interval(1, 8), AllenRelation.STARTS),
    (Interval(1, 8), Interval(1, 3), AllenRelation.STARTED_BY),
    (Interval(3, 5), Interval(1, 8), AllenRelation.DURING),
    (Interval(1, 8), Interval(3, 5), AllenRelation.CONTAINS),
    (Interval(5, 8), Interval(1, 8), AllenRelation.FINISHES),
    (Interval(1, 8), Interval(5, 8), AllenRelation.FINISHED_BY),
    (Interval(2, 6), Interval(2, 6), AllenRelation.EQUAL),
]


@pytest.mark.parametrize("a, b, expected", CASES)
def test_allen_relation_classification(a, b, expected):
    assert allen_relation(a, b) is expected


@pytest.mark.parametrize("a, b, expected", CASES)
def test_inverse_matches_swapped_arguments(a, b, expected):
    assert allen_relation(b, a) is inverse(expected)


def test_inverse_is_an_involution():
    for relation in AllenRelation:
        assert inverse(inverse(relation)) is relation


@pytest.mark.parametrize("a, b, expected", CASES)
def test_overlap_consistency_with_interval_overlaps(a, b, expected):
    assert intervals_overlap(a, b) == a.overlaps(b)


def test_exactly_thirteen_relations():
    assert len(list(AllenRelation)) == 13


def test_relations_are_mutually_exclusive_over_a_grid():
    intervals = [Interval(s, e) for s in range(0, 5) for e in range(s + 1, 6)]
    for a in intervals:
        for b in intervals:
            # classification always returns exactly one relation
            relation = allen_relation(a, b)
            assert isinstance(relation, AllenRelation)
            # and the disjointness/overlap split is consistent
            assert intervals_overlap(a, b) == a.overlaps(b)
