"""Tests for repro.temporal.coalesce."""

from __future__ import annotations

from repro.temporal import Interval, coalesce_annotated, coalesce_intervals, is_coalesced


class TestCoalesceIntervals:
    def test_merges_overlap_and_adjacency(self):
        merged = coalesce_intervals([Interval(1, 3), Interval(3, 5), Interval(4, 8), Interval(10, 12)])
        assert merged == [Interval(1, 8), Interval(10, 12)]

    def test_empty(self):
        assert coalesce_intervals([]) == []

    def test_unordered_input(self):
        assert coalesce_intervals([Interval(5, 7), Interval(1, 2)]) == [Interval(1, 2), Interval(5, 7)]


class TestCoalesceAnnotated:
    def test_merges_only_equal_keys(self):
        items = [
            (Interval(1, 3), "x"),
            (Interval(3, 5), "x"),
            (Interval(3, 5), "y"),
        ]
        merged = coalesce_annotated(items, key=lambda value: value)
        assert (Interval(1, 5), "x") in merged
        assert (Interval(3, 5), "y") in merged
        assert len(merged) == 2

    def test_gap_prevents_merge(self):
        items = [(Interval(1, 3), "x"), (Interval(4, 6), "x")]
        merged = coalesce_annotated(items, key=lambda value: value)
        assert merged == [(Interval(1, 3), "x"), (Interval(4, 6), "x")]

    def test_merge_function_combines_values(self):
        items = [(Interval(1, 3), 1), (Interval(2, 6), 2)]
        merged = coalesce_annotated(items, key=lambda value: "same", merge=lambda a, b: a + b)
        assert merged == [(Interval(1, 6), 3)]

    def test_is_coalesced_detects_overlap(self):
        assert is_coalesced([(Interval(1, 3), "x"), (Interval(4, 6), "x")], key=lambda v: v)
        assert not is_coalesced([(Interval(1, 3), "x"), (Interval(3, 6), "x")], key=lambda v: v)
        assert is_coalesced([(Interval(1, 3), "x"), (Interval(3, 6), "y")], key=lambda v: v)
