"""Tests for the naive per-time-point oracle itself."""

from __future__ import annotations

from repro import naive_windows
from repro.core import WindowClass
from repro.lineage import canonical
from repro.temporal import Interval


class TestNaiveWindowsOnThePaperExample:
    def test_window_counts(self, wants_to_visit, hotel_availability, loc_theta):
        windows = naive_windows(wants_to_visit, hotel_availability, loc_theta)
        assert len(windows.overlapping) == 2
        assert len(windows.unmatched_r) == 2
        assert len(windows.negating_r) == 3

    def test_negating_windows_content(self, wants_to_visit, hotel_availability, loc_theta):
        windows = naive_windows(wants_to_visit, hotel_availability, loc_theta)
        rows = {(w.interval, str(canonical(w.lineage_s))) for w in windows.negating_r}
        assert rows == {
            (Interval(4, 5), "b3"),
            (Interval(5, 6), "b2 ∨ b3"),
            (Interval(6, 8), "b2"),
        }

    def test_include_reverse_produces_the_negative_side_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = naive_windows(
            wants_to_visit, hotel_availability, loc_theta, include_reverse=True
        )
        assert windows.unmatched_s
        assert windows.negating_s
        # hotel3/SOR never matches: a full-interval unmatched window on the s side.
        assert any(
            w.fact_r == ("hotel3", "SOR") and w.interval == Interval(1, 4)
            for w in windows.unmatched_s
        )

    def test_window_classes_are_labelled_correctly(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = naive_windows(wants_to_visit, hotel_availability, loc_theta)
        assert all(w.window_class is WindowClass.OVERLAPPING for w in windows.overlapping)
        assert all(w.window_class is WindowClass.UNMATCHED for w in windows.unmatched_r)
        assert all(w.window_class is WindowClass.NEGATING for w in windows.negating_r)
