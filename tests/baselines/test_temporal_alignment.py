"""Tests for the Temporal Alignment (TA) baseline."""

from __future__ import annotations

import pytest

from repro import ta_wuo, ta_wuon
from repro.baselines import (
    align,
    ta_anti_join,
    ta_full_outer_join,
    ta_left_outer_join,
    ta_negating_windows,
    ta_overlapping_windows,
    ta_unmatched_windows,
)
from repro.core import WindowClass, nj_wn, nj_wuo, tp_left_outer_join
from repro.lineage import canonical
from repro.temporal import Interval
from tests.conftest import assert_same_result, make_random_relations


class TestAlignment:
    def test_alignment_replicates_tuples_at_partner_boundaries(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        fragments = align(wants_to_visit, hotel_availability, loc_theta)
        ann_fragments = [f.interval for f in fragments if f.origin.fact == ("Ann", "ZAK")]
        # a1 = [2,8) split at 4, 5, 6 (boundaries of b3 and b2 inside it).
        assert ann_fragments == [
            Interval(2, 4),
            Interval(4, 5),
            Interval(5, 6),
            Interval(6, 8),
        ]

    def test_unmatched_tuples_stay_in_one_fragment(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        fragments = align(wants_to_visit, hotel_availability, loc_theta)
        jim_fragments = [f.interval for f in fragments if f.origin.fact == ("Jim", "WEN")]
        assert jim_fragments == [Interval(7, 10)]

    def test_alignment_replication_exceeds_the_input_size(self):
        positive, negative, theta = make_random_relations(13, left_size=20, right_size=20)
        fragments = align(positive, negative, theta)
        assert len(fragments) >= len(positive)


class TestWindowEquivalenceWithNJ:
    def _window_keys(self, windows):
        return {
            (
                w.window_class,
                w.fact_r,
                w.fact_s,
                w.interval,
                None if w.lineage_s is None else str(canonical(w.lineage_s)),
            )
            for w in windows
        }

    def test_ta_wuo_produces_the_same_windows_as_nj(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        assert self._window_keys(
            ta_wuo(wants_to_visit, hotel_availability, loc_theta)
        ) == self._window_keys(nj_wuo(wants_to_visit, hotel_availability, loc_theta))

    def test_ta_negating_windows_match_nj(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        assert self._window_keys(
            ta_negating_windows(wants_to_visit, hotel_availability, loc_theta)
        ) == self._window_keys(nj_wn(wants_to_visit, hotel_availability, loc_theta))

    @pytest.mark.parametrize("seed", range(5))
    def test_window_agreement_on_random_inputs(self, seed):
        positive, negative, theta = make_random_relations(seed, left_size=15, right_size=15)
        assert self._window_keys(ta_wuon(positive, negative, theta)) == self._window_keys(
            nj_wuo(positive, negative, theta) + nj_wn(positive, negative, theta)
        )

    def test_ta_overlapping_nested_loop_flag_gives_identical_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        fast = ta_overlapping_windows(wants_to_visit, hotel_availability, loc_theta)
        slow = ta_overlapping_windows(
            wants_to_visit, hotel_availability, loc_theta, nested_loop=True
        )
        assert self._window_keys(fast) == self._window_keys(slow)

    def test_ta_unmatched_windows_are_maximal(self):
        positive, negative, theta = make_random_relations(31, left_size=20, right_size=20)
        windows = ta_unmatched_windows(positive, negative, theta)
        by_origin: dict[tuple, list[Interval]] = {}
        for window in windows:
            assert window.window_class is WindowClass.UNMATCHED
            by_origin.setdefault((window.fact_r, window.source_interval), []).append(window.interval)
        for intervals in by_origin.values():
            ordered = sorted(intervals, key=lambda i: i.start)
            for left, right in zip(ordered, ordered[1:]):
                assert left.end < right.start


class TestTAJoins:
    def test_ta_left_outer_join_matches_nj_on_the_paper_example(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        assert_same_result(
            ta_left_outer_join(wants_to_visit, hotel_availability, loc_theta),
            tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta),
        )

    def test_ta_deduplicates_the_twice_computed_unmatched_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = ta_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        keys = [t.key() for t in result]
        assert len(keys) == len(set(keys))
        assert len(result) == 7

    def test_ta_anti_and_full_outer_join_run(self, wants_to_visit, hotel_availability, loc_theta):
        anti = ta_anti_join(wants_to_visit, hotel_availability, loc_theta)
        full = ta_full_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(anti) == 5
        assert len(full) == 10

    def test_ta_respects_compute_probabilities_flag(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        lazy = ta_left_outer_join(
            wants_to_visit, hotel_availability, loc_theta, compute_probabilities=False
        )
        assert all(t.probability is None for t in lazy)
