"""Table II: which window sets each TP join with negation uses."""

from __future__ import annotations

import pytest

from repro.core import (
    WINDOW_SETS_BY_OPERATOR,
    compute_windows,
    tp_anti_join,
    tp_full_outer_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from repro.lineage import canonical


class TestTableTwoDeclaration:
    def test_anti_join_row(self):
        assert WINDOW_SETS_BY_OPERATOR["anti"] == ("unmatched_r", "negating_r")

    def test_left_outer_row(self):
        assert WINDOW_SETS_BY_OPERATOR["left_outer"] == (
            "unmatched_r",
            "negating_r",
            "overlapping",
        )

    def test_right_outer_row(self):
        assert WINDOW_SETS_BY_OPERATOR["right_outer"] == (
            "overlapping",
            "unmatched_s",
            "negating_s",
        )

    def test_full_outer_row(self):
        assert WINDOW_SETS_BY_OPERATOR["full_outer"] == (
            "unmatched_r",
            "negating_r",
            "overlapping",
            "unmatched_s",
            "negating_s",
        )

    def test_every_operator_is_listed(self):
        assert set(WINDOW_SETS_BY_OPERATOR) == {"anti", "left_outer", "right_outer", "full_outer"}


class TestOperatorsUseExactlyTheirWindowSets:
    """The output cardinalities must equal the sizes of the declared window sets."""

    @pytest.fixture()
    def windows(self, wants_to_visit, hotel_availability, loc_theta):
        return compute_windows(
            wants_to_visit, hotel_availability, loc_theta, include_reverse=True
        )

    def test_anti_join_cardinality(self, windows, wants_to_visit, hotel_availability, loc_theta):
        result = tp_anti_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == len(windows.unmatched_r) + len(windows.negating_r)

    def test_left_outer_cardinality(self, windows, wants_to_visit, hotel_availability, loc_theta):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == (
            len(windows.unmatched_r) + len(windows.negating_r) + len(windows.overlapping)
        )

    def test_right_outer_cardinality(self, windows, wants_to_visit, hotel_availability, loc_theta):
        result = tp_right_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == (
            len(windows.overlapping) + len(windows.unmatched_s) + len(windows.negating_s)
        )

    def test_full_outer_cardinality(self, windows, wants_to_visit, hotel_availability, loc_theta):
        result = tp_full_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == (
            len(windows.unmatched_r)
            + len(windows.negating_r)
            + len(windows.overlapping)
            + len(windows.unmatched_s)
            + len(windows.negating_s)
        )

    def test_overlapping_windows_are_shared_between_directions(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        """WO(r;s,θ) = WO(s;r,θ): the overlapping part of left and right outer
        joins carries the same (pair, interval, lineage) content."""
        left = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        right = tp_right_outer_join(wants_to_visit, hotel_availability, loc_theta)

        def overlapping_rows(relation):
            return {
                (t.fact, t.interval, str(canonical(t.lineage)))
                for t in relation
                if all(value is not None for value in t.fact)
            }

        assert overlapping_rows(left) == overlapping_rows(right)

    def test_window_counts_helper(self, windows):
        counts = windows.counts()
        assert counts["overlapping"] == len(windows.overlapping)
        assert counts["negating_s"] == len(windows.negating_s)
