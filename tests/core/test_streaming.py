"""Tests for the pipelined (streaming) window and join computation."""

from __future__ import annotations

from repro import WindowClass, stream_anti_join, stream_left_outer_join, stream_windows
from repro.core import compute_windows, stream_wuo, tp_anti_join, tp_left_outer_join
from repro.core.streaming import output_schema
from repro.lineage import canonical
from tests.conftest import make_random_relations


def _window_keys(windows):
    return {
        (
            w.window_class,
            w.fact_r,
            w.fact_s,
            w.interval,
            str(canonical(w.lineage_r)),
            None if w.lineage_s is None else str(canonical(w.lineage_s)),
        )
        for w in windows
    }


class TestStreamsMatchMaterialisedResults:
    def test_stream_windows_equals_compute_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        streamed = _window_keys(stream_windows(wants_to_visit, hotel_availability, loc_theta))
        materialised = _window_keys(
            compute_windows(wants_to_visit, hotel_availability, loc_theta).all_of_r()
        )
        assert streamed == materialised

    def test_stream_wuo_excludes_negating_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = list(stream_wuo(wants_to_visit, hotel_availability, loc_theta))
        assert windows
        assert all(w.window_class is not WindowClass.NEGATING for w in windows)

    def test_stream_left_outer_join_matches_the_operator(self):
        for seed in range(3):
            positive, negative, theta = make_random_relations(seed)
            streamed = list(stream_left_outer_join(positive, negative, theta))
            reference = tp_left_outer_join(positive, negative, theta, compute_probabilities=False)
            streamed_rows = {
                (t.fact, t.interval, str(canonical(t.lineage))) for t in streamed
            }
            reference_rows = {
                (t.fact, t.interval, str(canonical(t.lineage))) for t in reference
            }
            assert streamed_rows == reference_rows

    def test_stream_anti_join_matches_the_operator(self):
        for seed in range(3):
            positive, negative, theta = make_random_relations(seed + 50)
            streamed = {
                (t.fact, t.interval, str(canonical(t.lineage)))
                for t in stream_anti_join(positive, negative, theta)
            }
            reference = {
                (t.fact, t.interval, str(canonical(t.lineage)))
                for t in tp_anti_join(positive, negative, theta, compute_probabilities=False)
            }
            assert streamed == reference


class TestPipelining:
    def test_streams_are_lazy_generators(self, wants_to_visit, hotel_availability, loc_theta):
        stream = stream_windows(wants_to_visit, hotel_availability, loc_theta)
        first = next(stream)
        assert first is not None
        # the generator can still produce the rest afterwards
        rest = list(stream)
        assert len(rest) >= 1

    def test_first_result_arrives_without_consuming_everything(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        stream = stream_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        first = next(stream)
        assert first.fact[0] in {"Ann", "Jim"}

    def test_output_schema_helper_prefixes_clashes(self, wants_to_visit, hotel_availability):
        schema = output_schema(wants_to_visit, hotel_availability)
        assert schema.attributes == ("Name", "Loc", "Hotel", "b.Loc")
