"""Tests for the lineage-concatenation functions and output-tuple formation."""

from __future__ import annotations

import pytest

from repro.core import (
    CONCAT_BY_CLASS,
    Window,
    WindowClass,
    concat_and,
    concat_and_not,
    concat_pass,
    output_lineage,
    window_to_positive_tuple,
    window_to_tuple,
)
from repro.lineage import Var, lineage_or
from repro.temporal import Interval


def _window(window_class: WindowClass, lineage_s=None, fact_s=None) -> Window:
    return Window(
        fact_r=("Ann", "ZAK"),
        fact_s=fact_s,
        interval=Interval(4, 6),
        lineage_r=Var("a1"),
        lineage_s=lineage_s,
        window_class=window_class,
        source_interval=Interval(2, 8),
    )


class TestConcatenationFunctions:
    def test_and_for_overlapping(self):
        assert str(concat_and(Var("a1"), Var("b3"))) == "a1 ∧ b3"

    def test_and_requires_negative_lineage(self):
        with pytest.raises(ValueError):
            concat_and(Var("a1"), None)

    def test_pass_for_unmatched(self):
        assert concat_pass(Var("a1"), None) == Var("a1")

    def test_pass_rejects_negative_lineage(self):
        with pytest.raises(ValueError):
            concat_pass(Var("a1"), Var("b3"))

    def test_and_not_for_negating(self):
        result = concat_and_not(Var("a1"), lineage_or(Var("b3"), Var("b2")))
        assert str(result) == "a1 ∧ ¬(b3 ∨ b2)"

    def test_and_not_requires_negative_lineage(self):
        with pytest.raises(ValueError):
            concat_and_not(Var("a1"), None)

    def test_mapping_covers_every_class(self):
        assert set(CONCAT_BY_CLASS) == set(WindowClass)


class TestOutputLineage:
    def test_overlapping(self):
        window = _window(WindowClass.OVERLAPPING, Var("b3"), fact_s=("hotel1", "ZAK"))
        assert str(output_lineage(window)) == "a1 ∧ b3"

    def test_unmatched(self):
        window = _window(WindowClass.UNMATCHED)
        assert output_lineage(window) == Var("a1")

    def test_negating(self):
        window = _window(WindowClass.NEGATING, lineage_or(Var("b3"), Var("b2")))
        assert str(output_lineage(window)) == "a1 ∧ ¬(b3 ∨ b2)"


class TestTupleFormation:
    def test_overlapping_window_combines_both_facts(self):
        window = _window(WindowClass.OVERLAPPING, Var("b3"), fact_s=("hotel1", "ZAK"))
        tp_tuple = window_to_tuple(window, left_width=2, right_width=2)
        assert tp_tuple.fact == ("Ann", "ZAK", "hotel1", "ZAK")
        assert tp_tuple.interval == Interval(4, 6)
        assert tp_tuple.probability is None

    def test_unmatched_window_pads_the_negative_side(self):
        window = _window(WindowClass.UNMATCHED)
        tp_tuple = window_to_tuple(window, left_width=2, right_width=2)
        assert tp_tuple.fact == ("Ann", "ZAK", None, None)

    def test_reverse_direction_pads_the_positive_columns_on_the_left(self):
        window = _window(WindowClass.NEGATING, Var("b3"))
        tp_tuple = window_to_tuple(window, left_width=3, right_width=2, left_is_positive=False)
        assert tp_tuple.fact == (None, None, None, "Ann", "ZAK")
        assert str(tp_tuple.lineage) == "a1 ∧ ¬b3"

    def test_positive_only_tuple_for_anti_join(self):
        window = _window(WindowClass.NEGATING, lineage_or(Var("b3"), Var("b2")))
        tp_tuple = window_to_positive_tuple(window)
        assert tp_tuple.fact == ("Ann", "ZAK")
        assert str(tp_tuple.lineage) == "a1 ∧ ¬(b3 ∨ b2)"
