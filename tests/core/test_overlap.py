"""Tests for the overlapping-window computation (conventional outer join step)."""

from __future__ import annotations


from repro import Schema, TPRelation, equi_join_on
from repro.core import WindowClass, overlap_join, overlapping_windows
from repro.relation import PredicateCondition
from repro.temporal import Interval
from tests.conftest import make_random_relations


class TestPaperExample:
    def test_groups_follow_positive_relation_order(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        assert [group.r.fact for group in groups] == [("Ann", "ZAK"), ("Jim", "WEN")]

    def test_matches_are_sorted_by_overlap_start(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        ann = groups[0]
        assert [record.interval for record in ann.matches] == [Interval(4, 6), Interval(5, 8)]

    def test_fully_unmatched_tuple_has_no_matches_but_one_padded_record(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        jim = groups[1]
        assert jim.match_count() == 0
        records = jim.records()
        assert len(records) == 1
        assert records[0].is_unmatched
        assert records[0].interval == Interval(7, 10)

    def test_record_to_window_classes(self, wants_to_visit, hotel_availability, loc_theta):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        ann_window = groups[0].matches[0].to_window()
        assert ann_window.window_class is WindowClass.OVERLAPPING
        assert ann_window.source_interval == Interval(2, 8)
        jim_window = groups[1].records()[0].to_window()
        assert jim_window.window_class is WindowClass.UNMATCHED

    def test_overlapping_windows_helper(self, wants_to_visit, hotel_availability, loc_theta):
        windows = overlapping_windows(wants_to_visit, hotel_availability, loc_theta)
        assert {(w.fact_s, w.interval) for w in windows} == {
            (("hotel1", "ZAK"), Interval(4, 6)),
            (("hotel2", "ZAK"), Interval(5, 8)),
        }


class TestPairingStrategies:
    def test_equi_and_nested_loop_produce_identical_windows(self):
        positive, negative, equi_theta = make_random_relations(17)
        general_theta = PredicateCondition(
            lambda left, right: left[0] == right[0], label="same key"
        )
        from_hash = {
            (w.fact_r, w.fact_s, w.interval)
            for w in overlapping_windows(positive, negative, equi_theta)
        }
        from_loop = {
            (w.fact_r, w.fact_s, w.interval)
            for w in overlapping_windows(positive, negative, general_theta)
        }
        assert from_hash == from_loop

    def test_theta_that_never_matches_yields_only_unmatched_groups(self):
        positive, negative, _ = make_random_relations(3)
        never = PredicateCondition(lambda left, right: False, label="never")
        groups = overlap_join(positive, negative, never)
        assert all(group.match_count() == 0 for group in groups)

    def test_adjacent_intervals_do_not_overlap(self):
        left = TPRelation.from_rows(Schema.of("K"), [("k", "l1", 1, 4, 0.5)])
        right = TPRelation.from_rows(Schema.of("K"), [("k", "r1", 4, 7, 0.5)])
        theta = equi_join_on(left.schema, right.schema, [("K", "K")])
        assert overlapping_windows(left, right, theta) == []

    def test_empty_negative_relation(self, wants_to_visit):
        empty = TPRelation(Schema.of("Hotel", "Loc"), events=wants_to_visit.events)
        theta = equi_join_on(wants_to_visit.schema, empty.schema, [("Loc", "Loc")])
        groups = overlap_join(wants_to_visit, empty, theta)
        assert all(group.match_count() == 0 for group in groups)

    def test_empty_positive_relation(self, hotel_availability):
        empty = TPRelation(Schema.of("Name", "Loc"), events=hotel_availability.events)
        theta = equi_join_on(empty.schema, hotel_availability.schema, [("Loc", "Loc")])
        assert overlap_join(empty, hotel_availability, theta) == []
