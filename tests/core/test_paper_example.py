"""Golden tests: the paper's running example (Fig. 1 and Example 2).

These tests pin the library's output, tuple for tuple, to the result table
printed in the paper (Fig. 1b) and to the windows described in Example 2 /
Fig. 2.
"""

from __future__ import annotations

import pytest

from repro import (
    compute_windows,
    tp_anti_join,
    tp_full_outer_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from repro.lineage import canonical
from repro.temporal import Interval


def _rows(relation):
    return {
        (t.fact, t.interval.start, t.interval.end, str(canonical(t.lineage)), round(t.probability, 4))
        for t in relation
    }


#: The paper's Fig. 1b: Q = a ⟕ b with θ : a.Loc = b.Loc.
FIG_1B = {
    (("Ann", "ZAK", None, None), 2, 4, "a1", 0.7),
    (("Ann", "ZAK", "hotel1", "ZAK"), 4, 6, "a1 ∧ b3", 0.49),
    (("Ann", "ZAK", "hotel2", "ZAK"), 5, 8, "a1 ∧ b2", 0.42),
    (("Ann", "ZAK", None, None), 4, 5, "a1 ∧ ¬b3", 0.21),
    (("Ann", "ZAK", None, None), 5, 6, "a1 ∧ ¬(b2 ∨ b3)", 0.084),
    (("Ann", "ZAK", None, None), 6, 8, "a1 ∧ ¬b2", 0.28),
    (("Jim", "WEN", None, None), 7, 10, "a2", 0.8),
}


class TestFigure1b:
    def test_left_outer_join_reproduces_the_result_table(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert _rows(result) == FIG_1B

    def test_result_has_exactly_seven_tuples(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == 7

    def test_output_schema_combines_both_inputs(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert result.schema.attributes == ("Name", "Loc", "Hotel", "b.Loc")

    def test_probability_of_specific_answer_tuples(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        by_key = {
            (t.fact, t.interval): t.probability for t in result
        }
        # "with probability 0.49, Ann wants to visit Zakynthos and stay at hotel1"
        assert by_key[(("Ann", "ZAK", "hotel1", "ZAK"), Interval(4, 6))] == pytest.approx(0.49)
        # "Over the interval [5,6) there is 0.084 probability that Ann wants to
        #  visit Zakynthos but finds no accommodation."
        assert by_key[(("Ann", "ZAK", None, None), Interval(5, 6))] == pytest.approx(0.084)


class TestExample2Windows:
    """The windows of a with respect to b shown in the paper's Fig. 2."""

    def test_window_counts_match_figure_2(self, wants_to_visit, hotel_availability, loc_theta):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        assert len(windows.unmatched_r) == 2   # w1, w2
        assert len(windows.overlapping) == 2   # w3, w4
        assert len(windows.negating_r) == 3    # w5, w6, w7

    def test_unmatched_window_w1(self, wants_to_visit, hotel_availability, loc_theta):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        w1 = next(w for w in windows.unmatched_r if w.fact_r == ("Ann", "ZAK"))
        assert w1.interval == Interval(2, 4)
        assert str(w1.lineage_r) == "a1"
        assert w1.fact_s is None and w1.lineage_s is None

    def test_unmatched_window_w2_spans_jims_whole_interval(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        w2 = next(w for w in windows.unmatched_r if w.fact_r == ("Jim", "WEN"))
        assert w2.interval == Interval(7, 10)

    def test_overlapping_window_w3(self, wants_to_visit, hotel_availability, loc_theta):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        w3 = next(w for w in windows.overlapping if w.fact_s == ("hotel1", "ZAK"))
        assert w3.interval == Interval(4, 6)
        assert str(w3.lineage_r) == "a1"
        assert str(w3.lineage_s) == "b3"

    def test_negating_window_w6(self, wants_to_visit, hotel_availability, loc_theta):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        w6 = next(w for w in windows.negating_r if w.interval == Interval(5, 6))
        assert w6.fact_r == ("Ann", "ZAK")
        assert w6.fact_s is None
        assert str(canonical(w6.lineage_s)) == "b2 ∨ b3"

    def test_all_negating_windows(self, wants_to_visit, hotel_availability, loc_theta):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        described = {
            (w.interval, str(canonical(w.lineage_s))) for w in windows.negating_r
        }
        assert described == {
            (Interval(4, 5), "b3"),
            (Interval(5, 6), "b2 ∨ b3"),
            (Interval(6, 8), "b2"),
        }

    def test_every_window_carries_its_source_interval(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        for window in windows.all_of_r():
            assert window.source_interval is not None
            assert window.source_interval.contains_interval(window.interval)


class TestOtherOperatorsOnThePaperExample:
    def test_anti_join_keeps_only_negated_and_unmatched_tuples(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_anti_join(wants_to_visit, hotel_availability, loc_theta)
        assert _rows(result) == {
            (("Ann", "ZAK"), 2, 4, "a1", 0.7),
            (("Jim", "WEN"), 7, 10, "a2", 0.8),
            (("Ann", "ZAK"), 4, 5, "a1 ∧ ¬b3", 0.21),
            (("Ann", "ZAK"), 5, 6, "a1 ∧ ¬(b2 ∨ b3)", 0.084),
            (("Ann", "ZAK"), 6, 8, "a1 ∧ ¬b2", 0.28),
        }

    def test_anti_join_schema_is_the_positive_schema(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_anti_join(wants_to_visit, hotel_availability, loc_theta)
        assert result.schema.attributes == wants_to_visit.schema.attributes

    def test_right_outer_join_pads_the_left_side(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_right_outer_join(wants_to_visit, hotel_availability, loc_theta)
        rows = _rows(result)
        # hotel3 in Sorrento never matches anything: unmatched over [1,4).
        assert ((None, None, "hotel3", "SOR"), 1, 4, "b1", 0.9) in rows
        # hotel1 while Ann's visit is uncertain: b3 ∧ ¬a1 over [4,6).
        assert ((None, None, "hotel1", "ZAK"), 4, 6, "a1", 0.7) not in rows
        assert ((None, None, "hotel1", "ZAK"), 4, 6, "b3 ∧ ¬a1", round(0.7 * 0.3, 4)) in rows

    def test_full_outer_join_is_union_of_left_and_right_parts(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        left = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        right = tp_right_outer_join(wants_to_visit, hotel_availability, loc_theta)
        full = tp_full_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert _rows(full) == _rows(left) | _rows(right)
