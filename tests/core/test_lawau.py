"""Tests for LAWAU (unmatched-window computation).

The scenarios mirror the five cases of the paper's Fig. 3: gaps before the
first overlapping window, between overlapping windows, after the last one,
overlapping windows that already cover the sweep position, and tuples with no
overlap at all.
"""

from __future__ import annotations

from repro import Schema, TPRelation, equi_join_on
from repro.core import WindowClass, lawau, overlap_join, unmatched_windows
from repro.temporal import Interval, IntervalSet
from tests.conftest import make_random_relations


def _setup(positive_rows, negative_rows):
    positive = TPRelation.from_rows(Schema.of("K", "Id"), positive_rows, name="r")
    negative = TPRelation.from_rows(
        Schema.of("K", "Id"), negative_rows, events=positive.events, name="s"
    )
    theta = equi_join_on(positive.schema, negative.schema, [("K", "K")])
    return positive, negative, theta


def _unmatched_intervals(positive_rows, negative_rows):
    positive, negative, theta = _setup(positive_rows, negative_rows)
    groups = overlap_join(positive, negative, theta)
    return [w.interval for w in unmatched_windows(groups)]


class TestSweepCases:
    def test_gap_before_first_overlap(self):
        # r = [0,10), s = [6,12): unmatched prefix [0,6).
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 0, 10, 0.5)], [("k", "s0", "s0", 6, 12, 0.5)]
        )
        assert intervals == [Interval(0, 6)]

    def test_gap_after_last_overlap(self):
        # r = [0,10), s = [0,4): unmatched tail [4,10).
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 0, 10, 0.5)], [("k", "s0", "s0", 0, 4, 0.5)]
        )
        assert intervals == [Interval(4, 10)]

    def test_gap_between_two_overlaps(self):
        # r = [0,10), s1 = [1,3), s2 = [6,8): gaps [0,1), [3,6), [8,10).
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 0, 10, 0.5)],
            [("k", "s0", "s0", 1, 3, 0.5), ("k", "s1", "s1", 6, 8, 0.5)],
        )
        assert intervals == [Interval(0, 1), Interval(3, 6), Interval(8, 10)]

    def test_overlapping_matches_leave_no_gap(self):
        # Two matches that together cover r completely: no unmatched windows.
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 2, 9, 0.5)],
            [("k", "s0", "s0", 0, 6, 0.5), ("k", "s1", "s1", 5, 12, 0.5)],
        )
        assert intervals == []

    def test_contained_match_produces_two_gaps(self):
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 0, 10, 0.5)], [("k", "s0", "s0", 4, 6, 0.5)]
        )
        assert intervals == [Interval(0, 4), Interval(6, 10)]

    def test_no_match_at_all_yields_full_interval(self):
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 0, 10, 0.5)], [("other", "s0", "s0", 0, 10, 0.5)]
        )
        assert intervals == [Interval(0, 10)]

    def test_match_covering_whole_tuple_yields_nothing(self):
        intervals = _unmatched_intervals(
            [("k", "r0", "r0", 3, 7, 0.5)], [("k", "s0", "s0", 0, 10, 0.5)]
        )
        assert intervals == []


class TestWuoOutput:
    def test_wuo_copies_all_overlapping_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        wuo = lawau(groups)
        overlapping = [w for w in wuo if w.window_class is WindowClass.OVERLAPPING]
        unmatched = [w for w in wuo if w.window_class is WindowClass.UNMATCHED]
        assert len(overlapping) == 2
        assert len(unmatched) == 2
        assert not [w for w in wuo if w.window_class is WindowClass.NEGATING]

    def test_windows_of_each_group_are_emitted_in_temporal_order(self):
        positive, negative, theta = make_random_relations(5)
        groups = overlap_join(positive, negative, theta)
        for group in groups:
            produced = lawau([group])
            unmatched = [w.interval for w in produced if w.window_class is WindowClass.UNMATCHED]
            assert unmatched == sorted(unmatched)

    def test_unmatched_windows_never_overlap_a_match(self):
        positive, negative, theta = make_random_relations(9)
        groups = overlap_join(positive, negative, theta)
        by_group = {id(group): group for group in groups}
        for group in groups:
            covered = IntervalSet([record.interval for record in group.matches])
            for window in lawau([group]):
                if window.window_class is WindowClass.UNMATCHED:
                    assert not covered.overlaps(window.interval)
                    assert group.r.interval.contains_interval(window.interval)

    def test_unmatched_windows_are_maximal(self):
        positive, negative, theta = make_random_relations(11)
        groups = overlap_join(positive, negative, theta)
        for group in groups:
            gaps = [
                w.interval for w in lawau([group]) if w.window_class is WindowClass.UNMATCHED
            ]
            # no two gaps of the same tuple may be adjacent (they would not be maximal)
            for left, right in zip(gaps, gaps[1:]):
                assert left.end < right.start
