"""Tests for LAWAN (negating-window computation) and its ablation variant."""

from __future__ import annotations

from repro import Schema, TPRelation, equi_join_on
from repro.core import (
    WindowClass,
    lawan,
    lawan_rescan,
    negating_windows,
    overlap_join,
)
from repro.lineage import canonical
from repro.temporal import Interval
from tests.conftest import make_random_relations


def _setup(positive_rows, negative_rows):
    positive = TPRelation.from_rows(Schema.of("K", "Id"), positive_rows, name="r")
    negative = TPRelation.from_rows(
        Schema.of("K", "Id"), negative_rows, events=positive.events, name="s"
    )
    theta = equi_join_on(positive.schema, negative.schema, [("K", "K")])
    return positive, negative, theta


def _negating(positive_rows, negative_rows):
    positive, negative, theta = _setup(positive_rows, negative_rows)
    groups = overlap_join(positive, negative, theta)
    return [
        (w.interval, str(canonical(w.lineage_s))) for w in negating_windows(groups)
    ]


class TestSweepCases:
    def test_single_match_negates_over_the_intersection(self):
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)], [("k", "s0", "s0", 4, 6, 0.5)]
        )
        assert windows == [(Interval(4, 6), "s0")]

    def test_window_splits_when_a_second_match_starts(self):
        # The paper's Fig. 4 case 2: a new window at every starting point.
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)],
            [("k", "s0", "s0", 2, 8, 0.5), ("k", "s1", "s1", 4, 6, 0.5)],
        )
        assert windows == [
            (Interval(2, 4), "s0"),
            (Interval(4, 6), "s0 ∨ s1"),
            (Interval(6, 8), "s0"),
        ]

    def test_window_splits_when_a_match_ends(self):
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)],
            [("k", "s0", "s0", 1, 5, 0.5), ("k", "s1", "s1", 3, 9, 0.5)],
        )
        assert windows == [
            (Interval(1, 3), "s0"),
            (Interval(3, 5), "s0 ∨ s1"),
            (Interval(5, 9), "s1"),
        ]

    def test_gap_between_match_groups_produces_no_negating_window(self):
        # Fig. 4 case 3: a new group follows after a gap.
        windows = _negating(
            [("k", "r0", "r0", 0, 20, 0.5)],
            [("k", "s0", "s0", 1, 3, 0.5), ("k", "s1", "s1", 10, 12, 0.5)],
        )
        assert windows == [(Interval(1, 3), "s0"), (Interval(10, 12), "s1")]

    def test_matches_clipped_to_the_positive_interval(self):
        windows = _negating(
            [("k", "r0", "r0", 5, 8, 0.5)], [("k", "s0", "s0", 0, 20, 0.5)]
        )
        assert windows == [(Interval(5, 8), "s0")]

    def test_three_concurrent_matches(self):
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)],
            [
                ("k", "s0", "s0", 1, 9, 0.5),
                ("k", "s1", "s1", 2, 6, 0.5),
                ("k", "s2", "s2", 4, 8, 0.5),
            ],
        )
        assert windows == [
            (Interval(1, 2), "s0"),
            (Interval(2, 4), "s0 ∨ s1"),
            (Interval(4, 6), "s0 ∨ s1 ∨ s2"),
            (Interval(6, 8), "s0 ∨ s2"),
            (Interval(8, 9), "s0"),
        ]

    def test_no_matches_produce_no_negating_windows(self):
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)], [("x", "s0", "s0", 0, 10, 0.5)]
        )
        assert windows == []

    def test_identical_match_intervals_are_merged_into_one_window(self):
        windows = _negating(
            [("k", "r0", "r0", 0, 10, 0.5)],
            [("k", "s0", "s0", 3, 6, 0.5), ("k", "s1", "s1", 3, 6, 0.5)],
        )
        assert windows == [(Interval(3, 6), "s0 ∨ s1")]


class TestFullPipelineOutput:
    def test_wuon_contains_all_three_classes(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        wuon = lawan(groups)
        counts = {
            window_class: sum(1 for w in wuon if w.window_class is window_class)
            for window_class in WindowClass
        }
        assert counts[WindowClass.OVERLAPPING] == 2
        assert counts[WindowClass.UNMATCHED] == 2
        assert counts[WindowClass.NEGATING] == 3

    def test_negating_windows_lie_within_their_source_interval(self):
        positive, negative, theta = make_random_relations(21)
        groups = overlap_join(positive, negative, theta)
        for window in negating_windows(groups):
            assert window.source_interval.contains_interval(window.interval)
            assert window.fact_s is None
            assert window.lineage_s is not None

    def test_negating_windows_of_one_tuple_are_disjoint_and_ordered(self):
        positive, negative, theta = make_random_relations(22)
        groups = overlap_join(positive, negative, theta)
        for group in groups:
            intervals = [
                w.interval for w in negating_windows([group])
            ]
            for left, right in zip(intervals, intervals[1:]):
                assert left.end <= right.start


class TestQueueVersusRescan:
    def test_priority_queue_and_rescan_agree_on_the_paper_example(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        groups = overlap_join(wants_to_visit, hotel_availability, loc_theta)
        queue_based = {
            (w.interval, str(canonical(w.lineage_s))) for w in negating_windows(groups)
        }
        rescanned = {
            (w.interval, str(canonical(w.lineage_s))) for w in lawan_rescan(groups)
        }
        assert queue_based == rescanned

    def test_priority_queue_and_rescan_agree_on_random_inputs(self):
        for seed in range(6):
            positive, negative, theta = make_random_relations(seed, left_size=20, right_size=20)
            groups = overlap_join(positive, negative, theta)
            queue_based = {
                (w.fact_r, w.interval, str(canonical(w.lineage_s)))
                for w in negating_windows(groups)
            }
            rescanned = {
                (w.fact_r, w.interval, str(canonical(w.lineage_s)))
                for w in lawan_rescan(groups)
            }
            assert queue_based == rescanned
