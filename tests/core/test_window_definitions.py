"""Table I as executable predicates: the algorithms' windows satisfy the definitions.

The declarative predicates in :mod:`repro.core.windows` restate the paper's
Table I per time point.  Here we check that every window produced by the NJ
pipeline (overlap join → LAWAU → LAWAN) satisfies the definition of its
class, that it satisfies *only* that definition, and that together the
windows cover exactly the right time points.
"""

from __future__ import annotations

import pytest

from repro.core import (
    classify_window,
    compute_windows,
    is_negating_window,
    is_overlapping_window,
    is_unmatched_window,
    matching_lineage_at,
)
from repro.lineage import equivalent
from repro.temporal import IntervalSet
from tests.conftest import make_random_relations


SEEDS = [0, 1, 2, 3, 4]


class TestPaperExampleDefinitions:
    def test_every_window_satisfies_its_class_definition(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        for window in windows.overlapping:
            assert is_overlapping_window(window, wants_to_visit, hotel_availability, loc_theta)
        for window in windows.unmatched_r:
            assert is_unmatched_window(window, wants_to_visit, hotel_availability, loc_theta)
        for window in windows.negating_r:
            assert is_negating_window(window, wants_to_visit, hotel_availability, loc_theta)

    def test_classes_are_mutually_exclusive(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        for window in windows.all_of_r():
            satisfied = [
                is_overlapping_window(window, wants_to_visit, hotel_availability, loc_theta),
                is_unmatched_window(window, wants_to_visit, hotel_availability, loc_theta),
                is_negating_window(window, wants_to_visit, hotel_availability, loc_theta),
            ]
            assert sum(satisfied) == 1

    def test_classify_window_matches_the_emitted_class(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        windows = compute_windows(wants_to_visit, hotel_availability, loc_theta)
        for window in windows.all_of_r():
            assert classify_window(
                window, wants_to_visit, hotel_availability, loc_theta
            ) is window.window_class

    def test_matching_lineage_at_examples(self, wants_to_visit, hotel_availability, loc_theta):
        ann = wants_to_visit.tuples[0]
        # At t=3 no hotel in ZAK is available → null.
        assert matching_lineage_at(ann, hotel_availability, loc_theta, 3) is None
        # At t=5 both hotel1 (b3) and hotel2 (b2) match.
        lineage = matching_lineage_at(ann, hotel_availability, loc_theta, 5)
        assert lineage is not None and lineage.variables() == {"b2", "b3"}


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomisedDefinitions:
    def test_all_windows_satisfy_their_definitions(self, seed):
        positive, negative, theta = make_random_relations(seed)
        windows = compute_windows(positive, negative, theta)
        for window in windows.overlapping:
            assert is_overlapping_window(window, positive, negative, theta)
        for window in windows.unmatched_r:
            assert is_unmatched_window(window, positive, negative, theta)
        for window in windows.negating_r:
            assert is_negating_window(window, positive, negative, theta)

    def test_unmatched_and_negating_windows_partition_each_positive_tuple(self, seed):
        """For every positive tuple, UN ∪ WN ∪ (projections of WO) covers its interval.

        The unmatched and negating windows of one positive tuple are disjoint
        and, together, cover exactly the tuple's validity interval (every time
        point is either matched — negating — or not — unmatched).
        """
        positive, negative, theta = make_random_relations(seed)
        windows = compute_windows(positive, negative, theta)
        for r in positive:
            own = [
                w
                for w in (*windows.unmatched_r, *windows.negating_r)
                if w.fact_r == r.fact and equivalent(w.lineage_r, r.lineage)
                and w.source_interval == r.interval
            ]
            covered = IntervalSet([w.interval for w in own])
            assert covered.duration == r.interval.duration
            assert covered.covers(r.interval)
            # disjointness: total duration equals the sum of the pieces
            assert sum(w.interval.duration for w in own) == r.interval.duration

    def test_overlapping_windows_are_exactly_the_matching_pairs(self, seed):
        positive, negative, theta = make_random_relations(seed)
        windows = compute_windows(positive, negative, theta)
        expected = set()
        for r in positive:
            for s in negative:
                if theta.evaluate(r, s):
                    overlap = r.interval.intersect(s.interval)
                    if overlap is not None:
                        expected.add((r.fact, s.fact, overlap))
        produced = {(w.fact_r, w.fact_s, w.interval) for w in windows.overlapping}
        assert produced == expected
