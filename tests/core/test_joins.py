"""Tests for the TP join operators (beyond the golden paper example)."""

from __future__ import annotations

import pytest

from repro import (
    Schema,
    TPRelation,
    equi_join_on,
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from repro.core import nj_wn, nj_wuo, nj_wuon, swap_theta
from repro.relation import TrueCondition
from repro.temporal import Interval
from tests.conftest import canonical_rows, make_random_relations


class TestBasicBehaviour:
    def test_inner_join_produces_only_matching_pairs(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_inner_join(wants_to_visit, hotel_availability, loc_theta)
        assert len(result) == 2
        assert all(None not in t.fact for t in result)

    def test_compute_probabilities_flag(self, wants_to_visit, hotel_availability, loc_theta):
        lazy = tp_left_outer_join(
            wants_to_visit, hotel_availability, loc_theta, compute_probabilities=False
        )
        assert all(t.probability is None for t in lazy)
        eager = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert all(t.probability is not None for t in eager)

    def test_join_with_empty_negative_relation_returns_positive_unchanged(
        self, wants_to_visit
    ):
        empty = TPRelation(Schema.of("Hotel", "Loc"), events=wants_to_visit.events, name="b")
        theta = equi_join_on(wants_to_visit.schema, empty.schema, [("Loc", "Loc")])
        anti = tp_anti_join(wants_to_visit, empty, theta)
        assert canonical_rows(anti, with_probability=False) == canonical_rows(
            wants_to_visit.with_probabilities(), with_probability=False
        )

    def test_join_with_empty_positive_relation_is_empty(self, hotel_availability):
        empty = TPRelation(Schema.of("Name", "Loc"), events=hotel_availability.events, name="a")
        theta = equi_join_on(empty.schema, hotel_availability.schema, [("Loc", "Loc")])
        assert len(tp_left_outer_join(empty, hotel_availability, theta)) == 0
        assert len(tp_anti_join(empty, hotel_availability, theta)) == 0

    def test_pure_temporal_join_with_true_condition(self):
        left = TPRelation.from_rows(Schema.of("L"), [("x", "l1", 0, 6, 0.5)], name="l")
        right = TPRelation.from_rows(
            Schema.of("R"), [("y", "r1", 4, 9, 0.5)], events=left.events, name="r"
        )
        result = tp_left_outer_join(left, right, TrueCondition())
        rows = {(t.fact, t.interval, str(t.lineage)) for t in result}
        assert (("x", "y"), Interval(4, 6), "l1 ∧ r1") in rows
        assert (("x", None), Interval(0, 4), "l1") in rows
        assert (("x", None), Interval(4, 6), "l1 ∧ ¬r1") in rows

    def test_anti_join_probabilities_complement_the_matching_part(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        """At each time point P(matched) + P(unmatched/negated) = P(positive tuple)."""
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        time_point = 5
        ann_rows = [
            t for t in result if t.fact[0] == "Ann" and time_point in t.interval
        ]
        total = 0.0
        matched = [t for t in ann_rows if t.fact[2] is not None]
        negated = [t for t in ann_rows if t.fact[2] is None]
        # matched tuples are not mutually exclusive, but the negated tuple plus
        # the probability that at least one hotel is available must equal P(a1)
        assert len(negated) == 1
        p_some_hotel = 1 - (1 - 0.7) * (1 - 0.6)
        assert negated[0].probability == pytest.approx(0.7 * (1 - p_some_hotel))
        assert negated[0].probability + 0.7 * p_some_hotel == pytest.approx(0.7)
        assert len(matched) == 2

    def test_result_relations_carry_merged_event_spaces(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert "a1" in result.events
        assert "b3" in result.events


class TestSchemaHandling:
    def test_clashing_attribute_names_are_prefixed_with_relation_name(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        result = tp_left_outer_join(wants_to_visit, hotel_availability, loc_theta)
        assert "b.Loc" in result.schema.attributes

    def test_non_clashing_names_stay_unprefixed(self):
        left = TPRelation.from_rows(Schema.of("A"), [("x", "l1", 0, 5, 0.5)], name="l")
        right = TPRelation.from_rows(
            Schema.of("B"), [("x", "r1", 0, 5, 0.5)], events=left.events, name="r"
        )
        theta = equi_join_on(left.schema, right.schema, [("A", "B")])
        result = tp_left_outer_join(left, right, theta)
        assert result.schema.attributes == ("A", "B")


class TestSymmetries:
    @pytest.mark.parametrize("seed", range(4))
    def test_right_outer_join_is_the_mirrored_left_outer_join(self, seed):
        positive, negative, theta = make_random_relations(seed)
        right = tp_right_outer_join(positive, negative, theta)
        mirrored = tp_left_outer_join(negative, positive, swap_theta(theta))

        def normalise(relation, flip: bool):
            rows = set()
            for t in relation:
                fact = t.fact
                if flip:
                    fact = fact[len(negative.schema):] + fact[: len(negative.schema)]
                rows.add((fact, t.interval.start, t.interval.end, round(t.probability, 9)))
            return rows

        assert normalise(right, flip=False) == normalise(mirrored, flip=True)

    @pytest.mark.parametrize("seed", range(4))
    def test_full_outer_join_contains_left_and_right_outer_joins(self, seed):
        positive, negative, theta = make_random_relations(seed)
        full = canonical_rows(tp_full_outer_join(positive, negative, theta))
        left = canonical_rows(tp_left_outer_join(positive, negative, theta))
        assert left <= full

    @pytest.mark.parametrize("seed", range(4))
    def test_anti_join_is_the_null_padded_part_of_the_left_outer_join(self, seed):
        positive, negative, theta = make_random_relations(seed)
        anti = canonical_rows(tp_anti_join(positive, negative, theta))
        left_outer = tp_left_outer_join(positive, negative, theta)
        padded = left_outer.filter(lambda t: all(v is None for v in t.fact[len(positive.schema):]))
        trimmed = {
            (row[0][: len(positive.schema)], row[1], row[2], row[3], row[4])
            for row in canonical_rows(padded)
        }
        assert anti == trimmed


class TestMeasurementEntryPoints:
    def test_wuon_is_wuo_plus_wn(self, wants_to_visit, hotel_availability, loc_theta):
        wuo = nj_wuo(wants_to_visit, hotel_availability, loc_theta)
        wn = nj_wn(wants_to_visit, hotel_availability, loc_theta)
        wuon = nj_wuon(wants_to_visit, hotel_availability, loc_theta)
        assert len(wuon) == len(wuo) + len(wn)

    def test_wn_contains_only_negating_windows(
        self, wants_to_visit, hotel_availability, loc_theta
    ):
        from repro import WindowClass

        assert all(
            w.window_class is WindowClass.NEGATING
            for w in nj_wn(wants_to_visit, hotel_availability, loc_theta)
        )
