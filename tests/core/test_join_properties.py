"""Property-based equivalence of NJ, TA and the naive oracle.

The central correctness claim: the paper's NJ pipeline computes exactly the
TP joins with negation.  We check it by comparing NJ against the naive
per-time-point oracle (which implements the definition directly) and against
the Temporal Alignment baseline on randomly generated, constraint-valid
inputs, for every join operator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Schema,
    TPRelation,
    equi_join_on,
    naive_anti_join,
    naive_full_outer_join,
    naive_left_outer_join,
    ta_anti_join,
    ta_full_outer_join,
    ta_left_outer_join,
    tp_anti_join,
    tp_full_outer_join,
    tp_left_outer_join,
)
from repro.lineage import probability
from tests.conftest import assert_same_result, canonical_rows, make_random_relations


# --------------------------------------------------------------------------- #
# hypothesis strategy: small constraint-valid TP relation pairs
# --------------------------------------------------------------------------- #
@st.composite
def relation_pairs(draw):
    """Two small TP relations over a shared key universe plus their θ."""
    num_keys = draw(st.integers(min_value=1, max_value=3))

    def rows(prefix: str):
        count = draw(st.integers(min_value=0, max_value=7))
        generated = []
        for index in range(count):
            key = f"k{draw(st.integers(min_value=0, max_value=num_keys - 1))}"
            start = draw(st.integers(min_value=0, max_value=20))
            length = draw(st.integers(min_value=1, max_value=6))
            prob = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
            generated.append(
                (key, f"{prefix}{index}", f"{prefix}{index}", start, start + length, round(prob, 3))
            )
        return generated

    schema = Schema.of("Key", "Serial")
    left = TPRelation.from_rows(schema, rows("l"), name="l")
    right = TPRelation.from_rows(schema, rows("r"), events=left.events, name="r")
    theta = equi_join_on(left.schema, right.schema, [("Key", "Key")])
    return left, right, theta


@given(relation_pairs())
@settings(max_examples=40, deadline=None)
def test_nj_left_outer_join_matches_the_naive_oracle(pair):
    left, right, theta = pair
    assert_same_result(
        tp_left_outer_join(left, right, theta), naive_left_outer_join(left, right, theta)
    )


@given(relation_pairs())
@settings(max_examples=40, deadline=None)
def test_nj_anti_join_matches_the_naive_oracle(pair):
    left, right, theta = pair
    assert_same_result(tp_anti_join(left, right, theta), naive_anti_join(left, right, theta))


@given(relation_pairs())
@settings(max_examples=25, deadline=None)
def test_nj_full_outer_join_matches_the_naive_oracle(pair):
    left, right, theta = pair
    assert_same_result(
        tp_full_outer_join(left, right, theta), naive_full_outer_join(left, right, theta)
    )


@given(relation_pairs())
@settings(max_examples=25, deadline=None)
def test_temporal_alignment_matches_nj(pair):
    left, right, theta = pair
    assert_same_result(
        tp_left_outer_join(left, right, theta), ta_left_outer_join(left, right, theta)
    )
    assert_same_result(tp_anti_join(left, right, theta), ta_anti_join(left, right, theta))


@given(relation_pairs())
@settings(max_examples=25, deadline=None)
def test_join_probabilities_are_valid_and_consistent(pair):
    """Output probabilities are in [0,1] and equal P(lineage) under the event space."""
    left, right, theta = pair
    result = tp_left_outer_join(left, right, theta)
    for tp_tuple in result:
        assert 0.0 <= tp_tuple.probability <= 1.0
        assert tp_tuple.probability == pytest.approx(
            probability(tp_tuple.lineage, result.events)
        )


@given(relation_pairs())
@settings(max_examples=25, deadline=None)
def test_left_outer_join_preserves_every_positive_time_point(pair):
    """Every (positive tuple, time point) appears in at least one output tuple."""
    left, right, theta = pair
    result = tp_left_outer_join(left, right, theta, compute_probabilities=False)
    covered: dict[tuple, set[int]] = {}
    width = len(left.schema)
    for tp_tuple in result:
        covered.setdefault(tp_tuple.fact[:width], set()).update(tp_tuple.interval.time_points())
    for r in left:
        assert set(r.interval.time_points()) <= covered.get(r.fact, set())


@given(relation_pairs())
@settings(max_examples=25, deadline=None)
def test_anti_join_never_exceeds_positive_probability(pair):
    """P(anti-join tuple) <= P(corresponding positive tuple) at all times."""
    left, right, theta = pair
    result = tp_anti_join(left, right, theta)
    positive_probability = {t.fact: t.probability for t in left.with_probabilities()}
    for tp_tuple in result:
        assert tp_tuple.probability <= positive_probability[tp_tuple.fact] + 1e-9


# --------------------------------------------------------------------------- #
# seeded randomised cross-checks at a slightly larger scale
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(8))
def test_all_three_implementations_agree_on_larger_random_inputs(seed):
    positive, negative, theta = make_random_relations(seed, left_size=25, right_size=25, num_keys=4)
    nj = tp_left_outer_join(positive, negative, theta)
    ta = ta_left_outer_join(positive, negative, theta)
    naive = naive_left_outer_join(positive, negative, theta)
    assert canonical_rows(nj) == canonical_rows(ta) == canonical_rows(naive)


@pytest.mark.parametrize("seed", range(8))
def test_full_outer_join_agreement_on_larger_random_inputs(seed):
    positive, negative, theta = make_random_relations(seed + 100, left_size=18, right_size=18)
    nj = tp_full_outer_join(positive, negative, theta)
    ta = ta_full_outer_join(positive, negative, theta)
    naive = naive_full_outer_join(positive, negative, theta)
    assert canonical_rows(nj) == canonical_rows(ta) == canonical_rows(naive)
