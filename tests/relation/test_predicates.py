"""Tests for repro.relation.predicates (θ conditions)."""

from __future__ import annotations

import pytest

from repro.relation import (
    EquiJoinCondition,
    PredicateCondition,
    Schema,
    TPTuple,
    TrueCondition,
    UnknownAttributeError,
    equi_join_on,
)
from repro.temporal import Interval


LEFT_SCHEMA = Schema.of("Name", "Loc")
RIGHT_SCHEMA = Schema.of("Hotel", "Loc")


def left_tuple(name: str, loc: str) -> TPTuple:
    return TPTuple.base((name, loc), f"l_{name}", Interval(1, 5), 0.5)


def right_tuple(hotel: str, loc: str) -> TPTuple:
    return TPTuple.base((hotel, loc), f"r_{hotel}", Interval(1, 5), 0.5)


class TestTrueCondition:
    def test_always_true(self):
        condition = TrueCondition()
        assert condition.evaluate(left_tuple("Ann", "ZAK"), right_tuple("h1", "SOR"))

    def test_is_equi_with_constant_keys(self):
        condition = TrueCondition()
        assert condition.is_equi
        assert condition.left_key(left_tuple("Ann", "ZAK")) == condition.right_key(
            right_tuple("h1", "SOR")
        )

    def test_describe(self):
        assert TrueCondition().describe() == "true"


class TestEquiJoinCondition:
    def test_matching_pair(self):
        condition = equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Loc", "Loc")])
        assert condition.evaluate(left_tuple("Ann", "ZAK"), right_tuple("h1", "ZAK"))

    def test_non_matching_pair(self):
        condition = equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Loc", "Loc")])
        assert not condition.evaluate(left_tuple("Ann", "ZAK"), right_tuple("h1", "SOR"))

    def test_keys_align_for_matching_tuples(self):
        condition = equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Loc", "Loc")])
        assert condition.left_key(left_tuple("Ann", "ZAK")) == condition.right_key(
            right_tuple("h1", "ZAK")
        )

    def test_is_equi(self):
        condition = equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Loc", "Loc")])
        assert condition.is_equi

    def test_multiple_pairs(self):
        schema = Schema.of("A", "B")
        condition = EquiJoinCondition(schema, schema, (("A", "A"), ("B", "B")))
        same = TPTuple.base(("x", "y"), "e1", Interval(1, 2), 0.5)
        other = TPTuple.base(("x", "z"), "e2", Interval(1, 2), 0.5)
        assert condition.evaluate(same, same)
        assert not condition.evaluate(same, other)

    def test_unknown_attribute_rejected_at_construction(self):
        with pytest.raises(UnknownAttributeError):
            equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Nope", "Loc")])

    def test_describe(self):
        condition = equi_join_on(LEFT_SCHEMA, RIGHT_SCHEMA, [("Loc", "Loc")])
        assert condition.describe() == "r.Loc = s.Loc"


class TestPredicateCondition:
    def test_arbitrary_predicate(self):
        condition = PredicateCondition(
            lambda left, right: left[1] == right[1] and left[0] != right[0],
            label="same place, different entity",
        )
        assert condition.evaluate(left_tuple("Ann", "ZAK"), right_tuple("h1", "ZAK"))
        assert not condition.evaluate(left_tuple("Ann", "ZAK"), right_tuple("Ann", "ZAK"))

    def test_not_equi_and_no_keys(self):
        condition = PredicateCondition(lambda left, right: True)
        assert not condition.is_equi
        assert condition.left_key(left_tuple("Ann", "ZAK")) is None
        assert condition.right_key(right_tuple("h1", "ZAK")) is None

    def test_describe_uses_label(self):
        assert PredicateCondition(lambda left, right: True, label="theta").describe() == "theta"
