"""Tests for repro.relation.tptuple."""

from __future__ import annotations

import pytest

from repro.lineage import EventSpace, Var, lineage_and
from repro.relation import TPTuple
from repro.temporal import Interval


class TestConstruction:
    def test_base_tuple(self):
        tp_tuple = TPTuple.base(("Ann", "ZAK"), "a1", Interval(2, 8), 0.7)
        assert tp_tuple.fact == ("Ann", "ZAK")
        assert tp_tuple.lineage == Var("a1")
        assert tp_tuple.interval == Interval(2, 8)
        assert tp_tuple.probability == 0.7

    def test_start_end_shortcuts(self):
        tp_tuple = TPTuple.base(("x",), "e", Interval(3, 9), 0.5)
        assert tp_tuple.start == 3
        assert tp_tuple.end == 9

    def test_value_accessor(self):
        tp_tuple = TPTuple.base(("Ann", "ZAK"), "a1", Interval(2, 8), 0.7)
        assert tp_tuple.value(1) == "ZAK"

    def test_tuples_are_frozen(self):
        tp_tuple = TPTuple.base(("x",), "e", Interval(1, 2), 0.5)
        with pytest.raises(AttributeError):
            tp_tuple.fact = ("y",)  # type: ignore[misc]


class TestDerivation:
    def test_with_interval(self):
        tp_tuple = TPTuple.base(("x",), "e", Interval(1, 9), 0.5)
        shrunk = tp_tuple.with_interval(Interval(2, 4))
        assert shrunk.interval == Interval(2, 4)
        assert shrunk.fact == tp_tuple.fact
        assert tp_tuple.interval == Interval(1, 9)

    def test_with_probability_computes_from_events(self):
        events = EventSpace({"a1": 0.7, "b3": 0.7})
        derived = TPTuple(("Ann",), lineage_and(Var("a1"), Var("b3")), Interval(4, 6))
        assert derived.probability is None
        filled = derived.with_probability(events)
        assert filled.probability == pytest.approx(0.49)

    def test_key_is_sortable_with_none_padding(self):
        padded = TPTuple(("Ann", None), Var("a1"), Interval(2, 4))
        plain = TPTuple(("Ann", "hotel1"), Var("a1"), Interval(2, 4))
        assert sorted([padded, plain], key=lambda t: t.key())[0] is plain

    def test_key_distinguishes_lineage(self):
        first = TPTuple(("x",), Var("a"), Interval(1, 2))
        second = TPTuple(("x",), Var("b"), Interval(1, 2))
        assert first.key() != second.key()


class TestPresentation:
    def test_str_renders_nulls_as_dash(self):
        tp_tuple = TPTuple(("Ann", None), Var("a1"), Interval(2, 4), 0.7)
        assert "Ann, -" in str(tp_tuple)
        assert "[2,4)" in str(tp_tuple)

    def test_str_unknown_probability(self):
        tp_tuple = TPTuple(("Ann",), Var("a1"), Interval(2, 4))
        assert "| ?" in str(tp_tuple)
