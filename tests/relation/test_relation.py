"""Tests for repro.relation.relation."""

from __future__ import annotations

import pytest

from repro.lineage import EventSpace, Var, lineage_and
from repro.relation import ConstraintViolation, Schema, SchemaError, TPRelation, TPTuple
from repro.relation.relation import fresh_event_names
from repro.temporal import Interval


@pytest.fixture()
def booking_a() -> TPRelation:
    return TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [("Ann", "ZAK", "a1", 2, 8, 0.7), ("Jim", "WEN", "a2", 7, 10, 0.8)],
        name="a",
    )


class TestFromRows:
    def test_builds_base_tuples_and_registers_events(self, booking_a):
        assert len(booking_a) == 2
        assert booking_a.events.probability("a1") == 0.7
        first = booking_a.tuples[0]
        assert first.lineage == Var("a1")
        assert first.interval == Interval(2, 8)

    def test_wrong_arity_row(self):
        with pytest.raises(SchemaError):
            TPRelation.from_rows(Schema.of("A", "B"), [("x", "e1", 1, 2, 0.5)])

    def test_shared_event_space(self, booking_a):
        other = TPRelation.from_rows(
            Schema.of("Hotel", "Loc"),
            [("hotel1", "ZAK", "b3", 4, 6, 0.7)],
            events=booking_a.events,
            name="b",
        )
        assert other.events is booking_a.events
        assert booking_a.events.probability("b3") == 0.7


class TestConstraint:
    def test_same_fact_overlapping_intervals_rejected(self):
        with pytest.raises(ConstraintViolation):
            TPRelation.from_rows(
                Schema.of("Name"),
                [("Ann", "e1", 1, 5, 0.5), ("Ann", "e2", 3, 8, 0.5)],
            )

    def test_same_fact_adjacent_intervals_allowed(self):
        relation = TPRelation.from_rows(
            Schema.of("Name"),
            [("Ann", "e1", 1, 5, 0.5), ("Ann", "e2", 5, 8, 0.5)],
        )
        assert len(relation) == 2

    def test_different_facts_may_overlap(self):
        relation = TPRelation.from_rows(
            Schema.of("Name"),
            [("Ann", "e1", 1, 5, 0.5), ("Bob", "e2", 3, 8, 0.5)],
        )
        assert len(relation) == 2

    def test_check_can_be_disabled_for_derived_relations(self):
        events = EventSpace({"e1": 0.5, "e2": 0.5})
        tuples = [
            TPTuple(("Ann",), Var("e1"), Interval(1, 5)),
            TPTuple(("Ann",), Var("e2"), Interval(3, 8)),
        ]
        relation = TPRelation(Schema.of("Name"), tuples, events, check_constraint=False)
        with pytest.raises(ConstraintViolation):
            relation.check_duplicate_free()

    def test_validate_lineages(self, booking_a):
        booking_a.validate_lineages()
        bad = booking_a.derived(
            booking_a.schema,
            [TPTuple(("X", "Y"), Var("unknown"), Interval(1, 2))],
        )
        with pytest.raises(KeyError):
            bad.validate_lineages()


class TestAccessors:
    def test_attribute_values(self, booking_a):
        assert booking_a.attribute_values("Loc") == ["ZAK", "WEN"]

    def test_timespan(self, booking_a):
        assert booking_a.timespan() == Interval(2, 10)

    def test_timespan_empty(self):
        assert TPRelation(Schema.of("A")).timespan() is None

    def test_bool_and_len(self, booking_a):
        assert booking_a
        assert not TPRelation(Schema.of("A"))

    def test_repr_mentions_name_and_size(self, booking_a):
        assert "a" in repr(booking_a)
        assert "2 tuples" in repr(booking_a)


class TestDerivation:
    def test_with_probabilities(self, booking_a):
        derived = booking_a.derived(
            booking_a.schema,
            [TPTuple(("Ann", "ZAK"), lineage_and(Var("a1"), Var("a2")), Interval(7, 8))],
        )
        filled = derived.with_probabilities()
        assert filled.tuples[0].probability == pytest.approx(0.56)

    def test_filter(self, booking_a):
        only_ann = booking_a.filter(lambda t: t.fact[0] == "Ann")
        assert len(only_ann) == 1
        assert only_ann.tuples[0].fact[0] == "Ann"

    def test_sorted_by_interval(self, booking_a):
        relation = TPRelation.from_rows(
            Schema.of("Name"),
            [("B", "x1", 5, 9, 0.5), ("A", "x2", 1, 3, 0.5)],
        )
        ordered = relation.sorted_by_interval()
        assert [t.start for t in ordered] == [1, 5]

    def test_head(self, booking_a):
        assert len(booking_a.head(1)) == 1
        assert booking_a.head(10).tuples == booking_a.tuples

    def test_to_rows_and_pretty(self, booking_a):
        rows = booking_a.to_rows()
        assert rows[0][:2] == ("Ann", "ZAK")
        text = booking_a.pretty()
        assert "Name" in text and "Ann" in text
        truncated = booking_a.pretty(max_rows=1)
        assert "more" in truncated


def test_fresh_event_names():
    assert fresh_event_names("a", 3) == ["a1", "a2", "a3"]
