"""Tests for the non-join TP operators."""

from __future__ import annotations

import pytest

from repro.lineage import Var, lineage_or
from repro.relation import (
    Schema,
    TPRelation,
    difference,
    project,
    rename,
    select,
    select_eq,
    snapshot,
    timeslice,
    union,
)
from repro.temporal import Interval


@pytest.fixture()
def bookings() -> TPRelation:
    return TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [
            ("Ann", "ZAK", "a1", 2, 8, 0.7),
            ("Jim", "WEN", "a2", 7, 10, 0.8),
            ("Ann", "WEN", "a3", 9, 12, 0.5),
        ],
        name="bookings",
    )


class TestSelection:
    def test_select_by_predicate(self, bookings):
        result = select(bookings, lambda fact: fact[1] == "WEN")
        assert len(result) == 2
        assert all(t.fact[1] == "WEN" for t in result)

    def test_select_eq(self, bookings):
        result = select_eq(bookings, "Name", "Ann")
        assert {t.fact for t in result} == {("Ann", "ZAK"), ("Ann", "WEN")}

    def test_selection_preserves_lineage_and_interval(self, bookings):
        result = select_eq(bookings, "Name", "Jim")
        tp_tuple = result.tuples[0]
        assert tp_tuple.lineage == Var("a2")
        assert tp_tuple.interval == Interval(7, 10)


class TestTimeslice:
    def test_clips_intervals(self, bookings):
        result = timeslice(bookings, Interval(7, 9))
        assert {(t.fact, t.interval) for t in result} == {
            (("Ann", "ZAK"), Interval(7, 8)),
            (("Jim", "WEN"), Interval(7, 9)),
        }

    def test_drops_non_overlapping(self, bookings):
        result = timeslice(bookings, Interval(0, 2))
        assert len(result) == 0

    def test_snapshot(self, bookings):
        valid = snapshot(bookings, 7)
        assert {t.fact for t in valid} == {("Ann", "ZAK"), ("Jim", "WEN")}


class TestProjection:
    def test_projection_merges_lineages_on_overlap(self, bookings):
        result = project(bookings, ["Name"])
        ann_rows = [t for t in result if t.fact == ("Ann",)]
        # Ann appears in two source tuples with non-overlapping intervals:
        # [2,8) from a1 and [9,12) from a3 — they stay separate tuples.
        assert {t.interval for t in ann_rows} == {Interval(2, 8), Interval(9, 12)}

    def test_projection_disjoins_lineage_when_facts_collapse(self):
        relation = TPRelation.from_rows(
            Schema.of("Name", "Loc"),
            [("Ann", "ZAK", "e1", 1, 5, 0.5), ("Ann", "WEN", "e2", 3, 8, 0.4)],
        )
        result = project(relation, ["Name"])
        overlap_rows = [t for t in result if t.interval == Interval(3, 5)]
        assert len(overlap_rows) == 1
        assert overlap_rows[0].lineage == lineage_or(Var("e1"), Var("e2"))

    def test_projection_result_is_duplicate_free(self):
        relation = TPRelation.from_rows(
            Schema.of("Name", "Loc"),
            [("Ann", "ZAK", "e1", 1, 5, 0.5), ("Ann", "WEN", "e2", 3, 8, 0.4)],
        )
        project(relation, ["Name"]).check_duplicate_free()

    def test_projection_probability_of_disjunction(self):
        relation = TPRelation.from_rows(
            Schema.of("Name", "Loc"),
            [("Ann", "ZAK", "e1", 1, 5, 0.5), ("Ann", "WEN", "e2", 3, 8, 0.4)],
        )
        result = project(relation, ["Name"]).with_probabilities()
        overlap_row = next(t for t in result if t.interval == Interval(3, 5))
        assert overlap_row.probability == pytest.approx(1 - 0.5 * 0.6)


class TestSetOperators:
    def test_union_requires_same_schema(self, bookings):
        other = TPRelation.from_rows(Schema.of("X"), [("x", "u1", 1, 2, 0.5)])
        with pytest.raises(ValueError):
            union(bookings, other)

    def test_union_keeps_disjoint_tuples(self):
        left = TPRelation.from_rows(Schema.of("Name"), [("Ann", "e1", 1, 3, 0.5)])
        right = TPRelation.from_rows(Schema.of("Name"), [("Bob", "e2", 2, 4, 0.6)])
        result = union(left, right)
        assert {t.fact for t in result} == {("Ann",), ("Bob",)}

    def test_union_disjoins_lineage_on_same_fact_overlap(self):
        left = TPRelation.from_rows(Schema.of("Name"), [("Ann", "e1", 1, 5, 0.5)])
        right = TPRelation.from_rows(Schema.of("Name"), [("Ann", "e2", 3, 8, 0.6)])
        result = union(left, right)
        middle = next(t for t in result if t.interval == Interval(3, 5))
        assert middle.lineage == lineage_or(Var("e1"), Var("e2"))
        result.check_duplicate_free()

    def test_difference_is_anti_join_on_fact_equality(self):
        left = TPRelation.from_rows(Schema.of("Name"), [("Ann", "e1", 1, 8, 0.5)])
        right = TPRelation.from_rows(Schema.of("Name"), [("Ann", "e2", 3, 5, 0.6)])
        result = difference(left, right).with_probabilities()
        rows = {(t.interval, str(t.lineage)) for t in result}
        assert (Interval(1, 3), "e1") in rows
        assert (Interval(5, 8), "e1") in rows
        assert (Interval(3, 5), "e1 ∧ ¬e2") in rows

    def test_difference_requires_same_schema(self, bookings):
        other = TPRelation.from_rows(Schema.of("X"), [("x", "u1", 1, 2, 0.5)])
        with pytest.raises(ValueError):
            difference(bookings, other)


class TestRename:
    def test_rename(self, bookings):
        renamed = rename(bookings, {"Loc": "Location"})
        assert renamed.schema.attributes == ("Name", "Location")
        assert len(renamed) == len(bookings)
