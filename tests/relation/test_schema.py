"""Tests for repro.relation.schema."""

from __future__ import annotations

import pytest

from repro.relation import Schema, SchemaError, UnknownAttributeError


class TestConstruction:
    def test_of(self):
        schema = Schema.of("Name", "Loc")
        assert schema.attributes == ("Name", "Loc")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("Name", "Name")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("Name", "")

    def test_empty_schema_allowed(self):
        assert len(Schema.of()) == 0

    def test_iteration_and_membership(self):
        schema = Schema.of("A", "B")
        assert list(schema) == ["A", "B"]
        assert "A" in schema
        assert "C" not in schema

    def test_str(self):
        assert str(Schema.of("A", "B")) == "(A, B)"


class TestLookup:
    def test_index(self):
        assert Schema.of("Name", "Loc").index("Loc") == 1

    def test_index_unknown(self):
        with pytest.raises(UnknownAttributeError):
            Schema.of("Name").index("Hotel")


class TestDerivation:
    def test_project(self):
        assert Schema.of("A", "B", "C").project(["C", "A"]).attributes == ("C", "A")

    def test_project_unknown(self):
        with pytest.raises(UnknownAttributeError):
            Schema.of("A").project(["B"])

    def test_rename(self):
        schema = Schema.of("A", "B").rename({"A": "X"})
        assert schema.attributes == ("X", "B")

    def test_rename_unknown(self):
        with pytest.raises(UnknownAttributeError):
            Schema.of("A").rename({"Z": "X"})

    def test_prefixed(self):
        assert Schema.of("A", "B").prefixed("r").attributes == ("r.A", "r.B")

    def test_concat(self):
        combined = Schema.of("A").concat(Schema.of("B", "C"))
        assert combined.attributes == ("A", "B", "C")

    def test_concat_clash(self):
        with pytest.raises(SchemaError):
            Schema.of("A").concat(Schema.of("A"))

    def test_validate_fact(self):
        schema = Schema.of("A", "B")
        schema.validate_fact(("x", "y"))
        with pytest.raises(SchemaError):
            schema.validate_fact(("x",))
