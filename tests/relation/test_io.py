"""Tests for CSV input/output of TP relations."""

from __future__ import annotations

import pytest

from repro import Schema, TPRelation, equi_join_on, tp_left_outer_join
from repro.relation import read_relation_csv, write_relation_csv, write_result_csv


@pytest.fixture()
def base_relation() -> TPRelation:
    return TPRelation.from_rows(
        Schema.of("Name", "Loc"),
        [("Ann", "ZAK", "a1", 2, 8, 0.7), ("Jim", "WEN", "a2", 7, 10, 0.8)],
        name="a",
    )


class TestRoundTrip:
    def test_write_then_read_preserves_everything(self, base_relation, tmp_path):
        path = tmp_path / "a.csv"
        write_relation_csv(base_relation, path)
        restored = read_relation_csv(path)
        assert restored.schema.attributes == base_relation.schema.attributes
        assert len(restored) == len(base_relation)
        for original, loaded in zip(base_relation, restored):
            assert loaded.fact == original.fact
            assert loaded.interval == original.interval
            assert loaded.lineage == original.lineage
            assert loaded.probability == pytest.approx(original.probability)

    def test_read_uses_filename_as_default_name(self, base_relation, tmp_path):
        path = tmp_path / "bookings.csv"
        write_relation_csv(base_relation, path)
        assert read_relation_csv(path).name == "bookings"

    def test_read_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("Name,Loc,oops\nx,y,z\n")
        with pytest.raises(ValueError):
            read_relation_csv(path)

    def test_write_rejects_derived_relations(self, base_relation, tmp_path):
        hotels = TPRelation.from_rows(
            Schema.of("Hotel", "Loc"),
            [("hotel1", "ZAK", "b3", 4, 6, 0.7)],
            name="b",
        )
        theta = equi_join_on(base_relation.schema, hotels.schema, [("Loc", "Loc")])
        joined = tp_left_outer_join(base_relation, hotels, theta)
        with pytest.raises(ValueError):
            write_relation_csv(joined, tmp_path / "joined.csv")


class TestResultExport:
    def test_write_result_csv_serialises_lineage_text(self, base_relation, tmp_path):
        hotels = TPRelation.from_rows(
            Schema.of("Hotel", "Loc"),
            [("hotel1", "ZAK", "b3", 4, 6, 0.7)],
            name="b",
        )
        theta = equi_join_on(base_relation.schema, hotels.schema, [("Loc", "Loc")])
        joined = tp_left_outer_join(base_relation, hotels, theta)
        path = tmp_path / "result.csv"
        write_result_csv(joined, path)
        content = path.read_text()
        assert "lineage" in content.splitlines()[0]
        assert "a1 ∧ b3" in content
