"""Serving-layer telemetry: hub cursor lags, stats/watch verbs, Prometheus."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.dataflow import NodeSpec
from repro.serve import (
    FanoutHub,
    ServeClient,
    ServeServer,
    SlowSubscriberDisconnected,
    StandingQueryService,
)
from repro.stream.query import StreamQueryConfig
from tests.dataflow.conftest import make_stream_catalog

ON = (("Key", "Key"),)
JOIN = NodeSpec("j1", "left_outer", "a", "b", ON)


# --------------------------------------------------------------------------- #
# hub cursor lag
# --------------------------------------------------------------------------- #
def test_hub_cursor_lag_tracks_a_stalled_subscriber():
    hub = FanoutHub(capacity=64, policy="block")
    fast = hub.attach()
    slow = hub.attach()
    for value in range(10):
        hub.publish(value)
    # The fast subscriber drains; the stalled one never reads.
    for _ in range(10):
        fast.read(timeout=1.0)
    lags = hub.subscriber_lags()
    assert lags[fast.id] == 0
    assert lags[slow.id] == 10
    metrics = hub.metrics()
    assert metrics["max_cursor_lag"] == 10
    assert metrics["subscribers"] == 2
    assert metrics["published"] == 10
    assert metrics["ring_size"] == 10  # retained for the laggard
    assert metrics["ring_high_watermark"] == 10
    # Once the laggard catches up, lag and occupancy collapse.
    for _ in range(10):
        slow.read(timeout=1.0)
    assert hub.subscriber_lags()[slow.id] == 0
    assert hub.metrics()["ring_size"] == 0
    fast.close()
    slow.close()


def test_hub_metrics_exclude_disconnected_subscribers():
    hub = FanoutHub(capacity=4, policy="disconnect")
    laggard = hub.attach()
    for value in range(6):  # overflows capacity → laggard is dropped
        hub.publish(value)
    assert hub.metrics()["disconnects"] == 1
    assert hub.subscriber_lags() == {}  # nobody live is lagging
    with pytest.raises(SlowSubscriberDisconnected):
        laggard.read(timeout=0.1)


# --------------------------------------------------------------------------- #
# stats / watch over TCP + the Prometheus rendering
# --------------------------------------------------------------------------- #
@pytest.fixture()
def serving():
    """A metrics-enabled StandingQueryService behind a live TCP server."""
    service = StandingQueryService(
        make_stream_catalog(seed=5)[0],
        config=StreamQueryConfig(early_emit=True, metrics=True),
    )
    server = ServeServer(service)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def host():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()
        loop.run_until_complete(server.close())
        loop.close()

    thread = threading.Thread(target=host, name="serve-obs-test-loop", daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0)
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10.0)
    service.shutdown()


def _run_query_to_settlement(server) -> None:
    with ServeClient("127.0.0.1", server.port) as subscriber:
        subscriber.subscribe("q1")
        for message in subscriber.events():
            if message.get("type") == "end":
                break


def test_stats_verb_returns_serving_and_worker_telemetry(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
        _run_query_to_settlement(serving)
        stats = client.stats()
    assert stats["type"] == "stats"
    query_stats = stats["queries"]["q1"]
    assert query_stats["published"] > 0
    telemetry = stats["metrics"]["q1"]
    assert telemetry["hub"]["published"] == query_stats["published"]
    assert telemetry["hub"]["capacity"] == 256
    # The plan group ran with metrics on: worker totals came home.
    assert telemetry["workers"] is not None
    totals = telemetry["workers"]["totals"]
    assert totals["elements_routed"] == totals["elements_operated"] > 0
    assert "load_skew" in telemetry["workers"]


def test_watch_verb_streams_stats_until_detach(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
    with ServeClient("127.0.0.1", serving.port) as watcher:
        lines = []
        stream = watcher.watch(interval=0.05)
        for message in stream:
            lines.append(message)
            if len(lines) == 3:
                watcher.detach()
        assert len(lines) >= 3
        assert all(line["type"] == "stats" for line in lines)
        assert all("q1" in line["queries"] for line in lines)


def test_prometheus_rendering_covers_hubs_and_workers(serving):
    from repro.serve.__main__ import _render_prometheus

    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
    _run_query_to_settlement(serving)
    text = _render_prometheus(serving.service)
    assert "# TYPE repro_hub_published_total counter" in text
    assert 'query="q1"' in text
    assert "# TYPE repro_elements_routed_total counter" in text
    assert 'queries="q1"' in text


def test_service_worker_snapshots_relabel_by_group(serving):
    with ServeClient("127.0.0.1", serving.port) as client:
        client.register("q1", [JOIN])
    _run_query_to_settlement(serving)
    snapshots = serving.service.worker_snapshots()
    assert snapshots
    for snapshot in snapshots:
        assert snapshot["labels"]["queries"] == "q1"
        assert snapshot["labels"]["worker"].startswith("q1/")
