"""Engine-wide instrumentation: consistent counters across all transports.

The same workload, driven over every runtime transport, must produce the
same counter totals — the snapshots merely ride different carriers
(direct sampling, thread-shared lists, process queues, socket frames).
Live (mid-run) delivery is exercised separately per carrier, including a
remote ``python -m repro.runtime.worker --listen`` placement worker.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.dataflow import DataflowQuery, NodeSpec
from repro.obs import MetricsCollector
from repro.stream import StreamQuery, StreamQueryConfig
from tests.dataflow.conftest import make_stream_catalog

ON = (("Key", "Key"),)
TREE = [
    NodeSpec("n1", "left_outer", "a", "b", ON),
    NodeSpec("n2", "anti", "n1", "c", ON),
]
TRANSPORTS = ("inline", "threads", "processes", "sockets")

#: Deterministic counters compared across transports (histograms and the
#: loop gauges legitimately differ between carriers).
_FLOW = ("elements_routed", "elements_operated", "elements_emitted")
_REVISIONS = ("revision_emits", "revision_retracts", "revision_refines",
              "groups_settled")


def _run_with_metrics(backend: str, seed: int = 11):
    catalog, *_ = make_stream_catalog(seed, sizes=(25, 25, 20), disorder=4)
    config = StreamQueryConfig(early_emit=True, metrics=True)
    query = DataflowQuery(catalog, TREE, config)
    result = query.run(backend=backend, merge_seed=seed)
    aggregator = query.metrics()
    assert aggregator is not None
    return result, aggregator


@pytest.mark.parametrize("backend", TRANSPORTS)
def test_counters_match_final_stats_on_every_transport(backend):
    result, aggregator = _run_with_metrics(backend)
    totals = aggregator.totals()
    # Every element a worker accepted was handed to its operator.
    assert totals["elements_routed"] == totals["elements_operated"] > 0
    # The sampled revision counters agree with the authoritative result
    # stats (summed over the two nodes).
    for counter, attribute in (
        ("revision_emits", "emits"),
        ("revision_retracts", "retracts"),
        ("revision_refines", "refines"),
        ("groups_settled", "groups_settled"),
    ):
        expected = sum(
            getattr(node.stats, attribute) for node in result.nodes.values()
        )
        assert totals[counter] == expected, counter
    # One snapshot per (node, partition) worker, each carrying labels.
    snapshots = aggregator.snapshots()
    assert len(snapshots) == len(TREE)
    assert {snap["labels"]["node"] for snap in snapshots} == {"n1", "n2"}


def test_counter_totals_identical_across_transports():
    """A single-node graph has one producer per inbox, so every carrier
    sees the identical element sequence and the totals match bit-for-bit.

    (Multi-node pipelines interleave an internal edge with driver-routed
    source events, so their provisional-churn counters are legitimately
    timing-dependent on the threaded transports — the per-run invariants
    for those are covered above.)
    """
    single = [NodeSpec("n1", "left_outer", "a", "b", ON)]
    baseline = None
    for backend in TRANSPORTS:
        catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
        query = DataflowQuery(
            catalog, single, StreamQueryConfig(early_emit=True, metrics=True)
        )
        query.run(backend=backend, merge_seed=11)
        totals = query.metrics().totals()
        reading = {name: totals[name] for name in _FLOW + _REVISIONS}
        if baseline is None:
            baseline = reading
        else:
            assert reading == baseline, backend


def test_metrics_off_is_the_default_and_returns_none():
    catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
    query = DataflowQuery(catalog, TREE, StreamQueryConfig(early_emit=True))
    result = query.run(backend="inline", merge_seed=11)
    assert query.metrics() is None
    assert result.metrics_snapshots == []
    assert result.metrics() is None


def test_stream_query_metrics_across_partitions():
    catalog, *_ = make_stream_catalog(13, sizes=(30, 30, 10), disorder=3)
    query = StreamQuery(
        catalog,
        "left_outer",
        "a",
        "b",
        ON,
        config=StreamQueryConfig(partitions=2, workers="threads", metrics=True),
    )
    result = query.run(merge_seed=13)
    aggregator = query.metrics()
    assert aggregator is not None
    assert len(aggregator.snapshots()) == 2
    totals = aggregator.totals()
    assert totals["elements_routed"] == totals["elements_operated"] > 0
    assert totals["outputs_emitted"] == result.outputs_emitted
    skew = aggregator.load_skew()
    assert set(skew["per_worker"]) == {"0", "1"}
    assert skew["max"] >= skew["mean"] > 0


def test_probability_hash_cons_counters_flow_through():
    catalog, *_ = make_stream_catalog(17, sizes=(20, 20, 10), disorder=3)
    config = StreamQueryConfig(
        early_emit=True, metrics=True, materialize_probabilities=True
    )
    query = DataflowQuery(catalog, TREE, config)
    query.run(backend="inline", merge_seed=17)
    totals = query.metrics().totals()
    assert totals["probability_cache_misses"] > 0
    assert totals["probability_intern_misses"] > 0
    # Repeated windows of the same positives share interned subtrees.
    assert totals["probability_intern_hits"] > 0


def test_explain_analyze_includes_worker_metrics():
    catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
    query = DataflowQuery(
        catalog, TREE, StreamQueryConfig(early_emit=True, metrics=True)
    )
    result = query.run(backend="threads", merge_seed=11)
    report = result.explain_analyze()
    assert "worker metrics:" in report
    assert "flow: routed=" in report
    assert "n1 [left_outer]" in report


def test_taps_coexist_with_metrics_and_read_them_live():
    """Satellite: in-process taps and the metrics subsystem compose —
    and a tap makes a deterministic same-thread point to read live
    inline metrics mid-run."""
    from repro.dataflow.executor import run_graph
    from repro.dataflow.graph import DataflowGraph

    catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
    graph = DataflowGraph(catalog, TREE)
    collector = MetricsCollector()
    tapped = []
    live_readings = []

    def tap(_channel_id, element) -> None:
        tapped.append(element)
        if len(tapped) == 1:
            aggregator = collector.aggregate()
            if aggregator is not None:
                live_readings.append(aggregator.totals())

    outcome = run_graph(
        graph,
        StreamQueryConfig(early_emit=True),
        11,
        transport="inline",
        taps={"n2": tap},
        collector=collector,
    )
    assert tapped, "tap never fired"
    assert live_readings, "no live reading mid-run"
    final = collector.aggregate().totals()
    # The mid-run reading is a prefix of the final totals.
    assert live_readings[0]["elements_routed"] <= final["elements_routed"]
    assert outcome.metrics


def test_tap_error_message_points_at_metrics():
    from repro.dataflow.executor import run_graph
    from repro.dataflow.graph import DataflowGraph

    catalog, *_ = make_stream_catalog(11, sizes=(10, 10, 10))
    graph = DataflowGraph(catalog, TREE)
    with pytest.raises(ValueError, match="metrics=True") as excinfo:
        run_graph(
            graph,
            StreamQueryConfig(early_emit=True),
            11,
            transport="processes",
            taps={"n2": lambda *args: None},
        )
    assert "in-process callables" in str(excinfo.value)
    assert "MetricsCollector" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# live (mid-run) delivery per carrier
# --------------------------------------------------------------------------- #
def _throttled(merged, delay: float = 0.002):
    for tagged in merged:
        time.sleep(delay)
        yield tagged


def _shard_run(transport: str, collector, placement=None, seed: int = 19):
    """Drive run_stream_shards over a throttled element sequence so the
    run outlives several metrics intervals."""
    from dataclasses import replace

    from repro.datasets import ReplayConfig, stream_def
    from repro.engine import Catalog
    from repro.parallel.stream_exec import StreamShardSpec
    from repro.stream.operators import theta_from_pairs
    from repro.stream.query import run_stream_shards
    from repro.stream.source import merge_tagged
    from tests.conftest import make_random_relations

    left, right, _theta = make_random_relations(
        seed=seed, left_size=60, right_size=60
    )
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=3, seed=seed)))
    catalog.register_stream(
        "r", stream_def(right, ReplayConfig(disorder=3, seed=seed + 1))
    )
    left_def = catalog.lookup_stream("l")
    right_def = catalog.lookup_stream("r")
    theta = theta_from_pairs(left_def.schema, right_def.schema, ON)
    spec = StreamShardSpec(
        "left_outer", left_def.schema.attributes, right_def.schema.attributes, ON
    )
    specs = tuple(replace(spec, index=index) for index in range(2))
    merged = merge_tagged(left_def.replay(), right_def.replay())
    return run_stream_shards(
        transport,
        specs,
        _throttled(merged),
        theta,
        stamp_right=False,
        placement=placement,
        metrics_interval=0.05,
        collector=collector,
    )


@pytest.mark.parametrize("transport", ("threads", "processes", "sockets"))
def test_live_metrics_mid_run(transport):
    collector = MetricsCollector()
    live = []
    done = threading.Event()

    def poll() -> None:
        while not done.is_set():
            snapshots = collector.snapshots()
            if snapshots:
                live.append(len(snapshots))
            time.sleep(0.02)

    poller = threading.Thread(target=poll)
    poller.start()
    try:
        _reports, events, _blocks, ran = _shard_run(transport, collector)
    finally:
        done.set()
        poller.join()
    assert events > 0
    assert live, f"no live snapshot ever observed on {ran}"
    # After the run the collector serves the final report snapshots.
    finals = collector.snapshots()
    assert len(finals) == 2
    assert sum(
        snap["counters"]["elements_routed"] for snap in finals
    ) >= events


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_live_metrics_from_remote_entrypoint_workers():
    """Snapshots cross the wire from `python -m repro.runtime.worker`."""
    from repro.runtime import Placement

    ports = [_free_port(), _free_port()]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker",
                "--listen",
                f"127.0.0.1:{port}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        for port in ports
    ]
    try:
        for worker in workers:
            assert "listening on" in worker.stdout.readline()
        placement = Placement(tuple(f"127.0.0.1:{port}" for port in ports))
        collector = MetricsCollector()
        live = []
        done = threading.Event()

        def poll() -> None:
            while not done.is_set():
                snapshots = collector.snapshots()
                if snapshots:
                    live.append(len(snapshots))
                time.sleep(0.02)

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            _reports, _events, _blocks, ran = _shard_run(
                "sockets", collector, placement=placement
            )
        finally:
            done.set()
            poller.join()
        assert ran == "sockets"
        assert live, "no live snapshot arrived from the remote workers"
        finals = collector.snapshots()
        assert len(finals) == 2
        assert all(snap["counters"]["elements_routed"] > 0 for snap in finals)
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=10)
