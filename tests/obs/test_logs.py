"""Logging satellite: ``--log-json`` shape, level filtering, grep needles."""

from __future__ import annotations

import json
import logging
import os
import socket
import subprocess
import sys

import pytest

from repro.obs import configure_logging


@pytest.fixture()
def repro_logger():
    """Snapshot and restore the ``repro`` logger configure_logging mutates."""
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield logger
    logger.setLevel(saved[0])
    logger.handlers[:] = saved[1]
    logger.propagate = saved[2]


def test_default_output_is_message_only(repro_logger, capsys):
    """Plain mode keeps the readiness lines scripts grep byte-identical to
    the pre-logging ``print`` output: no level, no logger name, no time."""
    configure_logging("info")
    logging.getLogger("repro.runtime.sockets").info(
        "repro runtime worker listening on %s:%s", "127.0.0.1", 7654
    )
    captured = capsys.readouterr()
    assert captured.out == "repro runtime worker listening on 127.0.0.1:7654\n"
    assert captured.err == ""


def test_log_json_lines_parse_with_level_logger_message(repro_logger, capsys):
    configure_logging("debug", json_mode=True)
    logging.getLogger("repro.serve.cli").info("repro serve shutting down")
    logging.getLogger("repro.runtime").warning("seat %d is slow", 3)
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]  # every line is one object
    assert parsed[0]["level"] == "info"
    assert parsed[0]["logger"] == "repro.serve.cli"
    assert parsed[0]["message"] == "repro serve shutting down"
    assert parsed[1]["level"] == "warning"
    assert parsed[1]["message"] == "seat 3 is slow"
    for payload in parsed:
        assert isinstance(payload["ts"], float)


def test_log_json_attaches_tracebacks(repro_logger, capsys):
    configure_logging("info", json_mode=True)
    try:
        raise ValueError("boom")
    except ValueError:
        logging.getLogger("repro.test").exception("operation failed")
    payload = json.loads(capsys.readouterr().out)
    assert payload["level"] == "error"
    assert "ValueError: boom" in payload["exc"]


@pytest.mark.parametrize("json_mode", (False, True))
def test_log_level_filters_in_both_modes(repro_logger, capsys, json_mode):
    configure_logging("warning", json_mode=json_mode)
    logger = logging.getLogger("repro.anything")
    logger.info("suppressed")
    logger.debug("also suppressed")
    logger.error("kept")
    out = capsys.readouterr().out
    assert "suppressed" not in out
    assert out.count("\n") == 1 and "kept" in out


def test_unknown_level_falls_back_to_info(repro_logger):
    logger = configure_logging("nonsense")
    assert logger.level == logging.INFO


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.mark.parametrize("json_mode", (False, True))
def test_worker_entrypoint_honours_log_mode(json_mode):
    """The real ``--listen`` entrypoint emits its readiness needle either
    as the exact historical plain line or as one parseable JSON object."""
    port = _free_port()
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.runtime.worker",
        "--listen", f"127.0.0.1:{port}",
    ]
    if json_mode:
        command.append("--log-json")
    worker = subprocess.Popen(command, env=env, stdout=subprocess.PIPE, text=True)
    try:
        line = worker.stdout.readline()
        needle = f"repro runtime worker listening on 127.0.0.1:{port}"
        if json_mode:
            payload = json.loads(line)
            assert payload["message"] == needle
            assert payload["level"] == "info"
            assert payload["logger"].startswith("repro.runtime")
        else:
            assert line == needle + "\n"
    finally:
        worker.terminate()
        worker.wait(timeout=10)
