"""Tracing core: sampler, recorder ring, aggregator, codecs, exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    FlightRecorder,
    TraceAggregator,
    Tracer,
    TraceSampler,
    clock_anchor,
    estimate_clock_offset,
    render_flight_dump,
)
from repro.obs.trace import find_tuples, render_tuple_explanation, shift_spans


# --------------------------------------------------------------------------- #
# sampler
# --------------------------------------------------------------------------- #
def test_sampler_rate_one_samples_everything_sequentially():
    sampler = TraceSampler(1.0)
    assert [sampler.sample() for _ in range(5)] == [1, 2, 3, 4, 5]


def test_sampler_is_a_deterministic_error_accumulator():
    sampler = TraceSampler(0.25)
    picks = [sampler.sample() for _ in range(12)]
    # Every 4th element exactly — no RNG, so runs are reproducible.
    assert picks == [None, None, None, 1, None, None, None, 2,
                     None, None, None, 3]
    # A fresh sampler with the same rate makes identical decisions.
    again = TraceSampler(0.25)
    assert [again.sample() for _ in range(12)] == picks


def test_sampler_rate_zero_never_samples():
    sampler = TraceSampler(0.0)
    assert all(sampler.sample() is None for _ in range(100))


def test_sampler_first_id_offsets_the_sequence():
    sampler = TraceSampler(1.0, first_id=1_000_000)
    assert sampler.sample() == 1_000_000
    assert sampler.sample() == 1_000_001


@pytest.mark.parametrize("rate", (-0.1, 1.5))
def test_sampler_rejects_out_of_range_rates(rate):
    with pytest.raises(ValueError, match="sample rate"):
        TraceSampler(rate)


# --------------------------------------------------------------------------- #
# flight recorder ring
# --------------------------------------------------------------------------- #
def test_recorder_ring_is_bounded_and_keeps_the_newest():
    recorder = FlightRecorder(capacity=4)
    for index in range(10):
        recorder.record({"span": f"w:{index}"})
    assert len(recorder) == 4
    assert [span["span"] for span in recorder.dump()] == [
        "w:6", "w:7", "w:8", "w:9"
    ]


def test_recorder_pending_cursor_drains_only_new_spans():
    recorder = FlightRecorder(capacity=8)
    recorder.record({"span": "w:0"})
    recorder.record({"span": "w:1"})
    assert [span["span"] for span in recorder.pending()] == ["w:0", "w:1"]
    assert recorder.pending() == []  # nothing new since the last drain
    recorder.record({"span": "w:2"})
    assert [span["span"] for span in recorder.pending()] == ["w:2"]
    # dump() still returns everything retained, independent of the cursor.
    assert len(recorder.dump()) == 3


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(capacity=0)


def test_flight_dump_renders_spans_and_last_counters():
    tracer = Tracer("3")
    tracer.record("operate", 7, None, 1.0, 1.001, node="n1")
    text = render_flight_dump(
        "worker 3", tracer.dump(), {"counters": {"elements_routed": 42}}
    )
    assert "flight recorder dump for worker 3: 1 span(s) retained" in text
    assert "trace=7" in text and "operate" in text and "node=n1" in text
    assert "elements_routed=42" in text


def test_flight_dump_without_spans_says_so():
    text = render_flight_dump("worker 0", [])
    assert "no spans recorded" in text


# --------------------------------------------------------------------------- #
# tracer + aggregator
# --------------------------------------------------------------------------- #
def test_tracer_span_shape_and_unique_ids():
    tracer = Tracer("2", node="n1")
    first = tracer.record("queue_wait", 5, None, 1.0, 1.5, channel=0)
    second = tracer.record("operate", 5, first, 1.5, 1.7)
    spans = tracer.dump()
    assert [span["span"] for span in spans] == ["2:0", "2:1"]
    assert spans[0]["name"] == "queue_wait"
    assert spans[0]["worker"] == "2" and spans[0]["node"] == "n1"
    assert spans[0]["channel"] == 0 and "parent" not in spans[0]
    assert spans[1]["parent"] == first == "2:0"
    assert second == "2:1"


def test_aggregator_dedupes_overlapping_shipments_by_span_id():
    tracer = Tracer("0")
    tracer.record("operate", 1, None, 1.0, 1.1)
    periodic = tracer.pending()
    tracer.record("emit", 1, "0:0", 1.1, 1.2)
    final = tracer.dump()  # overlaps the periodic shipment
    aggregator = TraceAggregator()
    aggregator.add_spans(periodic)
    aggregator.add_spans(final)
    assert len(aggregator) == 2
    timeline = aggregator.timeline(1)
    assert [span["name"] for span in timeline] == ["operate", "emit"]


def test_aggregator_orders_timelines_by_start_time():
    aggregator = TraceAggregator()
    aggregator.add_spans(
        [
            {"span": "1:0", "trace": 9, "name": "late", "t0": 2.0, "t1": 2.1},
            {"span": "0:0", "trace": 9, "name": "early", "t0": 1.0, "t1": 1.1},
            {"span": "0:1", "trace": 4, "name": "other", "t0": 0.5, "t1": 0.6},
        ]
    )
    assert aggregator.trace_ids() == [4, 9]
    assert [s["name"] for s in aggregator.timeline(9)] == ["early", "late"]
    timelines = aggregator.timelines()
    assert set(timelines) == {4, 9}
    rendered = aggregator.render_timeline(9)
    assert rendered.startswith("trace 9: 2 span(s)")
    assert "early" in rendered and "late" in rendered
    assert aggregator.render_timeline(123) == "trace 123: no spans recorded"


def test_aggregator_applies_clock_offset_on_ingest():
    aggregator = TraceAggregator()
    aggregator.add_spans(
        [{"span": "r:0", "trace": 1, "name": "operate", "t0": 1.0, "t1": 2.0}],
        clock_offset=10.0,
    )
    span = aggregator.spans()[0]
    assert span["t0"] == 11.0 and span["t1"] == 12.0


# --------------------------------------------------------------------------- #
# chrome trace export
# --------------------------------------------------------------------------- #
def test_chrome_trace_is_valid_and_carries_metadata(tmp_path):
    tracer = Tracer("0")
    root = tracer.record("source", 1, None, 5.0, 5.0)
    tracer.record("operate", 1, root, 5.001, 5.002, node="n1")
    other = Tracer("1")
    other.record("emit", 1, root, 5.002, 5.003)
    aggregator = TraceAggregator()
    aggregator.add_spans(tracer.dump())
    aggregator.add_spans(other.dump())
    path = tmp_path / "trace.json"
    aggregator.write_chrome_trace(str(path))
    document = json.loads(path.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    complete = [event for event in events if event["ph"] == "X"]
    metadata = [event for event in events if event["ph"] == "M"]
    assert len(complete) == 3
    assert {event["name"] for event in metadata} == {
        "process_name", "thread_name",
    }
    # Two workers → two named thread lanes under one process.
    names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
    assert names == {"worker 0", "worker 1"}
    for event in complete:
        assert event["ts"] >= 0.0
        assert event["dur"] > 0.0  # zero-width spans get a visible floor
        assert event["pid"] == 1
        assert event["args"]["trace"] == 1


# --------------------------------------------------------------------------- #
# clock anchoring
# --------------------------------------------------------------------------- #
def test_clock_offset_recovers_a_simulated_remote_clock():
    wall, perf = clock_anchor()
    # A remote host whose perf_counter started 100s "later" than ours.
    remote = (wall, perf - 100.0)
    offset = estimate_clock_offset(remote, local_anchor=(wall, perf))
    assert offset == pytest.approx(100.0)
    # Same-host anchors are (near) zero offset.
    assert estimate_clock_offset((wall, perf), (wall, perf)) == 0.0


def test_shift_spans_copies_and_shifts():
    spans = [{"span": "0:0", "t0": 1.0, "t1": 2.0}]
    shifted = shift_spans(spans, 5.0)
    assert shifted[0]["t0"] == 6.0 and shifted[0]["t1"] == 7.0
    assert spans[0]["t0"] == 1.0  # originals untouched
    assert shift_spans(spans, 0.0) == spans


# --------------------------------------------------------------------------- #
# explain-tuple helpers
# --------------------------------------------------------------------------- #
def _settled_tuple():
    from repro.relation import Schema, TPRelation

    relation = TPRelation.from_rows(
        Schema.of("Key", "Serial"), [("k1", "a0", "a0", 0, 5, 0.5)]
    )
    return next(iter(relation))


def test_find_tuples_by_scalar_and_exact_fact():
    tp_tuple = _settled_tuple()
    tuples = [tp_tuple]
    assert find_tuples(tuples, "k1") == [tp_tuple]
    assert find_tuples(tuples, tuple(tp_tuple.fact)) == [tp_tuple]
    assert find_tuples(tuples, "nope") == []
    assert find_tuples(tuples, ("k1",)) == []  # partial facts do not match


def test_render_tuple_explanation_joins_lineage_with_spans():
    tp_tuple = _settled_tuple()
    aggregator = TraceAggregator()
    aggregator.add_spans(
        [
            {"span": "0:0", "trace": 3, "name": "source", "t0": 1.0, "t1": 1.0,
             "vars": ("a0",)},
            {"span": "0:1", "trace": 8, "name": "source", "t0": 1.0, "t1": 1.0,
             "vars": ("zz",)},
        ]
    )
    text = render_tuple_explanation(tp_tuple, aggregator)
    assert text.startswith(f"tuple {tuple(tp_tuple.fact)}")
    assert "interval: [0, 5)" in text
    assert "probability: 0.5" in text
    assert "1 contributing timeline(s)" in text
    assert "trace 3:" in text and "trace 8:" not in text


def test_render_tuple_explanation_without_traces():
    tp_tuple = _settled_tuple()
    assert "none recorded" in render_tuple_explanation(tp_tuple, None)
    empty = TraceAggregator()
    assert "none recorded" in render_tuple_explanation(tp_tuple, empty)
    unrelated = TraceAggregator()
    unrelated.add_spans(
        [{"span": "0:0", "trace": 1, "name": "source", "t0": 0, "t1": 0,
          "vars": ("zz",)}]
    )
    text = render_tuple_explanation(tp_tuple, unrelated)
    assert "no sampled element contributed" in text


# --------------------------------------------------------------------------- #
# wire codecs: trailing trace context stays backward compatible
# --------------------------------------------------------------------------- #
def test_tagged_codec_roundtrips_trace_context():
    from repro.parallel.serialize import decode_tagged, encode_tagged
    from repro.stream.elements import LEFT, StreamEvent, Tagged

    event = StreamEvent(_settled_tuple(), sequence=4)
    plain = Tagged(LEFT, event, 1.5)
    code = encode_tagged(plain)
    assert len(code) == 5  # untraced: the exact pre-trace wire shape
    assert decode_tagged(code).trace is None
    traced = Tagged(LEFT, event, 1.5, (7, "driver:0"))
    decoded = decode_tagged(encode_tagged(traced))
    assert decoded.trace == (7, "driver:0")
    assert decoded.ingest_clock == 1.5
    # Old five-field frames (pre-trace peers) still decode.
    assert decode_tagged(code[:5]).element.sequence == 4


def test_revision_codec_roundtrips_trace_context():
    from repro.dataflow.revision import Revision
    from repro.parallel.serialize import (
        decode_revision_tagged,
        encode_revision_tagged,
    )
    from repro.stream.elements import RIGHT, Tagged

    revision = Revision("emit", _settled_tuple(), provisional=True)
    plain = Tagged(RIGHT, revision, None)
    code = encode_revision_tagged(plain)
    assert len(code) == 6
    assert decode_revision_tagged(code).trace is None
    traced = Tagged(RIGHT, revision, None, (9, "2:5"))
    decoded = decode_revision_tagged(encode_revision_tagged(traced))
    assert decoded.trace == (9, "2:5")
    assert decoded.element.kind == "emit"


def test_report_codec_roundtrips_spans_and_clock_offset():
    from repro.runtime.worker import WorkerReport, decode_report, encode_report

    spans = [{"span": "0:0", "trace": 1, "name": "operate", "t0": 0, "t1": 1}]
    report = WorkerReport(index=3, spans=spans, clock_offset=0.25)
    decoded = decode_report(encode_report(report))
    assert decoded.spans == spans
    assert decoded.clock_offset == 0.25
    # Pre-trace seven-field reports (old remote workers) still decode.
    old = encode_report(WorkerReport(index=3))[:7]
    legacy = decode_report(old)
    assert legacy.spans is None and legacy.clock_offset is None
