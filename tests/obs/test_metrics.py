"""Unit tests for the metrics primitives and the driver-side aggregator."""

from __future__ import annotations

import pickle

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    registry_for_spec,
)


def test_counter_gauge_histogram_basics():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5

    gauge = Gauge()
    gauge.set(3.5)
    assert gauge.value == 3.5

    histogram = Histogram(bounds=(1, 4, 16))
    for value in (1, 2, 5, 100):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 108
    assert histogram.buckets == [1, 1, 1, 1]  # <=1, <=4, <=16, overflow


def test_registry_snapshot_is_plain_and_picklable():
    registry = MetricsRegistry(worker=3, node="j", kind="left_outer")
    registry.counter("elements_routed").inc(7)
    registry.gauge("watermark").set(12.0)
    registry.histogram("batch_size").observe(3)
    snapshot = registry.snapshot()
    assert snapshot["labels"] == {"worker": "3", "node": "j", "kind": "left_outer"}
    assert snapshot["counters"]["elements_routed"] == 7
    assert snapshot["gauges"]["watermark"] == 12.0
    assert snapshot["histograms"]["batch_size"]["count"] == 1
    # Crosses the runtime codecs / NDJSON front end as-is.
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot
    import json

    json.dumps(snapshot)


def test_registry_for_spec_duck_types_labels():
    class ShardSpec:
        index = 2
        kind = "anti"

    labels = registry_for_spec(ShardSpec()).labels
    assert labels["worker"] == "2"
    assert labels["kind"] == "anti"
    assert labels["partition"] == "2"  # falls back to the index

    class NodeSpec:
        index = 5
        name = "n1"
        kind = "left_outer"
        partition = 1

    labels = registry_for_spec(NodeSpec()).labels
    assert labels == {
        "worker": "5",
        "node": "n1",
        "kind": "left_outer",
        "partition": "1",
    }


def _snapshot(worker, counters=None, gauges=None, node="j"):
    return {
        "labels": {"worker": str(worker), "node": node, "kind": "left_outer"},
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": {},
    }


def test_aggregator_replaces_by_worker_never_double_counts():
    aggregator = MetricsAggregator()
    # A periodic snapshot followed by the final one from the same worker:
    aggregator.update(_snapshot(0, {"elements_routed": 10}))
    aggregator.update(_snapshot(0, {"elements_routed": 25}))
    aggregator.update(_snapshot(1, {"elements_routed": 5}))
    assert aggregator.counter_total("elements_routed") == 30
    assert aggregator.totals() == {"elements_routed": 30}


def test_aggregator_merges_gauges_min_for_progress_max_otherwise():
    aggregator = MetricsAggregator()
    aggregator.update(
        _snapshot(0, gauges={"watermark": 10.0, "inbox_depth": 3.0})
    )
    aggregator.update(
        _snapshot(1, gauges={"watermark": 7.0, "inbox_depth": 9.0})
    )
    node = aggregator.by_node()["j"]
    # A stage's effective watermark is its slowest partition's...
    assert node["gauges"]["watermark"] == 7.0
    # ...while occupancy-style gauges report the worst (largest) reading.
    assert node["gauges"]["inbox_depth"] == 9.0
    assert node["workers"] == 2


def test_aggregator_load_skew():
    aggregator = MetricsAggregator()
    aggregator.update(_snapshot(0, {"elements_operated": 30}))
    aggregator.update(_snapshot(1, {"elements_operated": 10}))
    skew = aggregator.load_skew()
    assert skew["max"] == 30
    assert skew["mean"] == 20.0
    assert skew["skew"] == 1.5
    assert skew["per_worker"] == {"0": 30, "1": 10}


def test_render_report_mentions_flow_and_skew():
    aggregator = MetricsAggregator()
    aggregator.update(
        _snapshot(
            0,
            {"elements_routed": 4, "elements_operated": 4, "revision_emits": 2},
            {"watermark": 3.0},
        )
    )
    report = aggregator.render_report()
    assert "j [left_outer]" in report
    assert "routed=4" in report
    assert "emits=2" in report
    assert "watermark=3" in report


def test_prometheus_text_exposition_format():
    aggregator = MetricsAggregator()
    registry = MetricsRegistry(worker=0, node="j")
    registry.counter("elements_routed").inc(3)
    registry.gauge("watermark").set(float("inf"))
    histogram = registry.histogram("batch_size", bounds=(1, 2))
    histogram.observe(1)
    histogram.observe(5)
    aggregator.update(registry.snapshot())
    text = aggregator.prometheus_text()
    assert '# TYPE repro_elements_routed_total counter' in text
    assert 'repro_elements_routed_total{node="j",worker="0"} 3' in text
    # Infinity renders in the exposition format, not as Python's "inf".
    assert 'repro_watermark{node="j",worker="0"} +Inf' in text
    # Histogram buckets are cumulative, with the +Inf bucket == count.
    assert 'le="1"} 1' in text
    assert 'le="2"} 1' in text
    assert 'le="+Inf"} 2' in text
    assert 'repro_batch_size_count{node="j",worker="0"} 2' in text
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    aggregator = MetricsAggregator()
    aggregator.update(
        {
            "labels": {"worker": 'a"b\\c'},
            "counters": {"x": 1},
            "gauges": {},
            "histograms": {},
        }
    )
    text = aggregator.prometheus_text()
    assert 'worker="a\\"b\\\\c"' in text


def test_default_buckets_cover_micro_batches():
    assert DEFAULT_BUCKETS[0] == 1
    assert DEFAULT_BUCKETS[-1] == 256
