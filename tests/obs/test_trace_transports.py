"""Tracing end to end: stitched timelines on every transport, Chrome
export, explain-tuple provenance, flight dumps, the serve trace verb."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.dataflow import DataflowQuery, NodeSpec
from repro.stream import StreamQuery, StreamQueryConfig
from tests.dataflow.conftest import make_stream_catalog

ON = (("Key", "Key"),)
TREE = [
    NodeSpec("n1", "left_outer", "a", "b", ON),
    NodeSpec("n2", "anti", "n1", "c", ON),
]
TRANSPORTS = ("inline", "threads", "processes", "sockets")

TRACED = StreamQueryConfig(early_emit=True, trace=True, trace_sample_rate=1.0)


def _traced_run(backend: str, seed: int = 11):
    catalog, *_ = make_stream_catalog(seed, sizes=(25, 25, 20), disorder=4)
    query = DataflowQuery(catalog, TREE, TRACED)
    result = query.run(backend=backend, merge_seed=seed)
    return query, result


@pytest.mark.parametrize("backend", TRANSPORTS)
def test_stitched_timelines_cover_source_to_sink(backend):
    query, result = _traced_run(backend)
    aggregator = result.trace()
    assert aggregator is not None
    timelines = aggregator.timelines()
    assert timelines
    names = set()
    emitted_traces = 0
    for spans in timelines.values():
        # Every timeline is rooted in exactly one driver-recorded source
        # span.  (Queue-wait spans start at the driver's ingest stamp, which
        # precedes the source record, so root-ness is causal, not temporal.)
        roots = [
            span
            for span in spans
            if span["name"] == "source" and span["worker"] == "driver"
        ]
        assert len(roots) == 1
        span_names = {span["name"] for span in spans}
        names |= span_names
        if "emit" in span_names:
            emitted_traces += 1
        # Child spans point back into their own trace.
        ids = {span["span"] for span in spans}
        for span in spans[1:]:
            parent = span.get("parent")
            assert parent is None or parent in ids
    # Source → operate → emit all appear across the run; queue-wait spans
    # exist wherever a channel does (inline dispatch is synchronous).
    expected = {"source", "operate", "emit"}
    if backend != "inline":
        expected.add("queue_wait")
    assert expected <= names
    # Early-emitting revision joins push sampled elements through to the
    # sink synchronously, so a healthy share of timelines reach an emit.
    assert emitted_traces > 0
    # The query-level accessor serves the same aggregator.
    assert query.trace() is not None
    assert len(query.trace()) == len(aggregator)


def test_tracing_is_off_by_default_and_returns_none():
    catalog, *_ = make_stream_catalog(11, sizes=(20, 20, 15), disorder=4)
    query = DataflowQuery(catalog, TREE, StreamQueryConfig(early_emit=True))
    result = query.run(backend="inline", merge_seed=11)
    assert query.trace() is None
    assert result.trace() is None
    assert result.trace_spans == []


def test_traced_output_matches_untraced_output():
    catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
    plain = DataflowQuery(
        catalog, TREE, StreamQueryConfig(early_emit=True)
    ).run(backend="inline", merge_seed=11)
    catalog, *_ = make_stream_catalog(11, sizes=(25, 25, 20), disorder=4)
    traced = DataflowQuery(catalog, TREE, TRACED).run(
        backend="inline", merge_seed=11
    )
    canonical = lambda result: sorted(  # noqa: E731
        (repr(tuple(t.fact)), t.start, t.end) for t in result.relation
    )
    assert canonical(plain) == canonical(traced)


def test_chrome_trace_export_from_a_traced_run(tmp_path):
    _query, result = _traced_run("threads")
    path = tmp_path / "trace.json"
    result.trace().write_chrome_trace(str(path))
    document = json.loads(path.read_text())
    events = document["traceEvents"]
    complete = [event for event in events if event["ph"] == "X"]
    assert complete
    lanes = {event["tid"] for event in complete}
    assert len(lanes) >= 3  # driver + the two node workers
    for event in complete:
        assert event["ts"] >= 0.0 and event["dur"] > 0.0


def test_explain_tuple_walks_provenance_for_a_settled_tuple():
    _query, result = _traced_run("inline")
    tuples = list(result.relation)
    assert tuples
    report = result.explain_tuple(tuple(tuples[0].fact))
    assert report.startswith("tuple ")
    assert "lineage:" in report
    # Rate 1.0 traced every element, so provenance must be attributable.
    assert "contributing timeline(s)" in report
    assert "source" in report
    # A key that matches nothing says so instead of raising.
    assert "no settled tuple matches" in result.explain_tuple("zz-no-such")


def test_stream_query_traces_across_partitions():
    catalog, *_ = make_stream_catalog(13, sizes=(30, 30, 10), disorder=3)
    query = StreamQuery(
        catalog,
        "left_outer",
        "a",
        "b",
        ON,
        config=StreamQueryConfig(
            partitions=2, workers="threads", trace=True, trace_sample_rate=1.0
        ),
    )
    result = query.run(merge_seed=13)
    aggregator = result.trace()
    assert aggregator is not None
    names = {span["name"] for span in aggregator.spans()}
    # Continuous shards settle at watermarks (untraced elements), so the
    # guaranteed per-element chain here is source → queue wait → operate.
    assert {"source", "queue_wait", "operate"} <= names
    workers = {span["worker"] for span in aggregator.spans()}
    assert {"driver", "0", "1"} <= workers
    assert query.trace() is not None
    assert isinstance(result.explain_tuple(object()), str)


def test_explain_marks_traced_plans():
    from repro.engine import Engine

    catalog, *_ = make_stream_catalog(seed=5)
    sql = "SELECT * FROM STREAM a TP LEFT OUTER JOIN STREAM b ON a.Key = b.Key"
    traced = Engine(
        stream_config=StreamQueryConfig(trace=True, trace_sample_rate=0.05)
    )
    plain = Engine(stream_config=StreamQueryConfig())
    for engine in (traced, plain):
        for name in ("a", "b"):
            engine.register_stream(name, catalog.lookup_stream(name))
    assert "[traced rate=0.05]" in traced.explain_sql(sql)
    assert "traced" not in plain.explain_sql(sql)


# --------------------------------------------------------------------------- #
# socket transport: clock anchoring + flight-recorder dump on a dead seat
# --------------------------------------------------------------------------- #
def test_socket_reports_carry_clock_offsets():
    from dataclasses import replace

    from repro.datasets import ReplayConfig, stream_def
    from repro.engine import Catalog
    from repro.parallel.stream_exec import StreamShardSpec
    from repro.stream.operators import theta_from_pairs
    from repro.stream.query import run_stream_shards
    from repro.stream.source import merge_tagged
    from tests.conftest import make_random_relations

    left, right, _theta = make_random_relations(seed=19, left_size=40, right_size=40)
    catalog = Catalog()
    catalog.register_stream("l", stream_def(left, ReplayConfig(disorder=3, seed=19)))
    catalog.register_stream("r", stream_def(right, ReplayConfig(disorder=3, seed=20)))
    left_def, right_def = catalog.lookup_stream("l"), catalog.lookup_stream("r")
    theta = theta_from_pairs(left_def.schema, right_def.schema, ON)
    spec = StreamShardSpec(
        "left_outer", left_def.schema.attributes, right_def.schema.attributes, ON
    )
    specs = tuple(replace(spec, index=index) for index in range(2))
    merged = merge_tagged(left_def.replay(), right_def.replay())
    reports, events, _blocks, ran = run_stream_shards(
        "sockets",
        specs,
        merged,
        theta,
        stamp_right=False,
        trace=True,
        trace_sample_rate=1.0,
    )
    assert ran == "sockets" and events > 0
    for report in reports:
        # Local spawns: the offset is a measured (tiny) skew, not None —
        # proof the anchor handshake ran and was applied.
        assert report.clock_offset is not None
        assert abs(report.clock_offset) < 5.0
        assert report.spans


def test_killed_socket_worker_yields_a_flight_dump():
    from repro.relation import Schema, TPRelation
    from repro.runtime.sockets import SocketSession
    from repro.runtime.transport import RuntimeJob
    from repro.parallel.stream_exec import StreamShardSpec
    from repro.stream.elements import LEFT, StreamEvent, Tagged

    relation = TPRelation.from_rows(
        Schema.of("Key", "Serial"),
        [(f"k{i % 3}", f"a{i}", f"a{i}", i, i + 4, 0.5) for i in range(12)],
    )
    spec = StreamShardSpec("left_outer", ("Key", "Serial"), ("Key", "Serial"), ON)
    job = RuntimeJob(
        (spec,),
        micro_batch_size=1,
        metrics=True,
        metrics_interval=0.05,
        trace=True,
    )
    session = SocketSession(job)
    try:
        tuples = list(relation)
        # Every element traced: the worker records spans and ships them on
        # the periodic frames, so the driver holds history when the seat dies.
        for sequence, tp_tuple in enumerate(tuples[:6]):
            event = StreamEvent(tp_tuple, sequence=sequence)
            session.send(
                0, None, Tagged(LEFT, event, None, (sequence + 1, "driver:0"))
            )
        time.sleep(0.2)  # > metrics_interval: the next batch flushes spans
        for sequence, tp_tuple in enumerate(tuples[6:], start=6):
            event = StreamEvent(tp_tuple, sequence=sequence)
            session.send(
                0, None, Tagged(LEFT, event, None, (sequence + 1, "driver:0"))
            )
        deadline = time.monotonic() + 5.0
        while not session.trace_spans() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert session.trace_spans(), "no periodic span frame ever arrived"
        session._processes[0].kill()
        with pytest.raises(RuntimeError) as excinfo:
            session.finish()
        message = str(excinfo.value)
        # The first line names the seat and where it lived ...
        first_line = message.splitlines()[0]
        assert first_line.startswith("worker 0 (127.0.0.1:")
        assert first_line.endswith("closed its connection without a result")
        # ... and the flight recorder's last-known spans ride along.
        assert "flight recorder dump for worker 0" in message
        assert "span(s) retained" in message
        assert "operate" in message
    finally:
        session._cleanup(failed=True)


# --------------------------------------------------------------------------- #
# serve front end: the trace NDJSON verb and hub spans
# --------------------------------------------------------------------------- #
@pytest.fixture()
def traced_serving():
    from repro.serve import ServeServer, StandingQueryService

    service = StandingQueryService(
        make_stream_catalog(seed=5)[0],
        config=StreamQueryConfig(
            early_emit=True, metrics=True, trace=True, trace_sample_rate=1.0
        ),
    )
    server = ServeServer(service)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def host():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()
        loop.run_until_complete(server.close())
        loop.close()

    thread = threading.Thread(target=host, name="serve-trace-test-loop", daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0)
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10.0)
    service.shutdown()


def test_trace_verb_returns_stitched_spans_over_ndjson(traced_serving):
    from repro.serve import ServeClient
    from repro.serve.hub import HUB_TRACE_ID_BASE

    with ServeClient("127.0.0.1", traced_serving.port) as client:
        client.register(
            "q1", [NodeSpec("j1", "left_outer", "a", "b", ON)]
        )
    with ServeClient("127.0.0.1", traced_serving.port) as subscriber:
        subscriber.subscribe("q1")
        for message in subscriber.events():
            if message.get("type") == "end":
                break
    with ServeClient("127.0.0.1", traced_serving.port) as client:
        spans = client.trace()
    assert spans and all(isinstance(span, dict) for span in spans)
    names = {span["name"] for span in spans}
    assert {"source", "operate", "hub_publish", "cursor_advance"} <= names
    # Hub spans live in their own trace-id block, disjoint from the
    # driver sampler's sequential ids — timelines can never collide.
    hub_ids = {s["trace"] for s in spans if s["name"] == "hub_publish"}
    element_ids = {s["trace"] for s in spans if s["name"] == "source"}
    assert hub_ids and min(hub_ids) >= HUB_TRACE_ID_BASE
    assert max(element_ids) < HUB_TRACE_ID_BASE
    # The verb's payload is NDJSON-safe by construction.
    json.dumps(spans)
