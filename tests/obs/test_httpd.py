"""Metrics HTTP endpoint: /metrics scrapes, /healthz probe, plain 404s."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import start_metrics_http_server


@pytest.fixture()
def endpoint():
    state = {"body": "# TYPE repro_up gauge\nrepro_up 1\n"}
    server = start_metrics_http_server("127.0.0.1", 0, lambda: state["body"])
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}", state
    server.shutdown()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


def test_metrics_paths_serve_the_rendered_exposition(endpoint):
    base, _state = endpoint
    for path in ("/metrics", "/", "/metrics?foo=bar"):
        status, headers, body = _get(base + path)
        assert status == 200
        assert body == b"# TYPE repro_up gauge\nrepro_up 1\n"
        assert headers["Content-Type"].startswith("text/plain")


def test_healthz_answers_without_invoking_render(endpoint):
    base, state = endpoint
    # A liveness probe must survive a broken metrics render.
    state["body"] = None  # render() would raise TypeError on .encode
    status, headers, body = _get(base + "/healthz")
    assert status == 200
    assert body == b"ok\n"
    assert headers["Content-Type"] == "text/plain; charset=utf-8"


def test_unknown_path_is_a_plain_text_404(endpoint):
    base, _state = endpoint
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(base + "/nope")
    error = excinfo.value
    assert error.code == 404
    assert error.headers["Content-Type"] == "text/plain; charset=utf-8"
    # Text body, not the stdlib HTML error page.
    assert error.read() == b"not found: /nope\n"


def test_render_failure_is_a_500_but_healthz_still_works(endpoint):
    base, state = endpoint
    state["body"] = None
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(base + "/metrics")
    assert excinfo.value.code == 500
    status, _headers, body = _get(base + "/healthz")
    assert status == 200 and body == b"ok\n"
