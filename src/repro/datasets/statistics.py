"""Descriptive statistics of TP workloads.

Used by the harness to document the generated datasets in EXPERIMENTS.md and
by tests to verify that the WebKit-like and Meteo-like generators actually
exhibit the properties the paper attributes to the real datasets (different
join selectivity, different overlap density).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relation import TPRelation, ThetaCondition
from ..temporal import Timeline


@dataclass(frozen=True, slots=True)
class WorkloadStatistics:
    """Summary statistics of one TP relation."""

    cardinality: int
    distinct_keys: int
    selectivity_ratio: float
    mean_interval_length: float
    max_interval_length: int
    timespan: int
    mean_probability: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary form for reporting."""
        return {
            "cardinality": self.cardinality,
            "distinct_keys": self.distinct_keys,
            "selectivity_ratio": self.selectivity_ratio,
            "mean_interval_length": self.mean_interval_length,
            "max_interval_length": self.max_interval_length,
            "timespan": self.timespan,
            "mean_probability": self.mean_probability,
        }


def workload_statistics(relation: TPRelation, key_attribute: str) -> WorkloadStatistics:
    """Compute summary statistics of a relation with respect to its join key."""
    if not relation:
        return WorkloadStatistics(0, 0, 0.0, 0.0, 0, 0, 0.0)
    keys = relation.attribute_values(key_attribute)
    durations = [t.interval.duration for t in relation]
    timespan = relation.timespan()
    probabilities = [
        t.probability
        if t.probability is not None
        else relation.events.probability(next(iter(t.lineage.variables())))
        for t in relation
    ]
    distinct = len(set(keys))
    return WorkloadStatistics(
        cardinality=len(relation),
        distinct_keys=distinct,
        selectivity_ratio=distinct / len(relation),
        mean_interval_length=sum(durations) / len(durations),
        max_interval_length=max(durations),
        timespan=0 if timespan is None else timespan.duration,
        mean_probability=sum(probabilities) / len(probabilities),
    )


def mean_matches_per_tuple(
    positive: TPRelation, negative: TPRelation, theta: ThetaCondition
) -> float:
    """Average number of valid, θ-matching partners per positive tuple.

    This is the overlap density that drives the number of negating windows —
    the main difference between the WebKit-like (sparse) and Meteo-like
    (dense) workloads.
    """
    if not positive:
        return 0.0
    timeline = Timeline((s.interval, s) for s in negative)
    total = 0
    for r in positive:
        partners = timeline.overlapping(r.interval)
        total += sum(1 for s in partners if theta.evaluate(r, s))
    return total / len(positive)
