"""Synthetic temporal-probabilistic workload generation.

The paper evaluates on two real datasets (WebKit and MeteoSwiss) that are not
redistributable here, so the benchmarks run on seeded synthetic workloads
whose *statistical shape* matches what the paper reports as the performance-
relevant properties: input cardinality, number of distinct join keys (join
selectivity), interval-length distribution and overlap density.  The
:class:`WorkloadConfig` captures those knobs; :func:`generate_relation`
produces a valid TP relation (per-fact disjoint intervals) from a config, and
:func:`generate_pair` produces the positive/negative relation pair a join
benchmark needs.

Determinism: all randomness flows through one :class:`random.Random` seeded
from the config, so a given config always yields byte-identical relations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from enum import Enum

from ..lineage import EventSpace
from ..relation import Schema, TPRelation, TPTuple
from ..temporal import Interval


class IntervalLengthDistribution(str, Enum):
    """Shape of the tuple interval-length distribution."""

    UNIFORM = "uniform"
    GEOMETRIC = "geometric"
    LONG_TAIL = "long_tail"


class KeyDistribution(str, Enum):
    """How join keys are assigned to tuples."""

    UNIFORM = "uniform"
    ZIPF = "zipf"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic TP relation.

    Attributes:
        size: number of tuples.
        distinct_keys: number of distinct join-key values; the ratio
            ``size / distinct_keys`` controls join selectivity (the paper's
            Meteo dataset has "a number of distinct values much smaller than
            its size").
        key_distribution: how keys are drawn for tuples.
        mean_interval_length: average tuple duration in time points.
        interval_distribution: shape of the duration distribution.
        gap_factor: average gap between consecutive intervals of the same
            fact, as a fraction of the mean interval length (0 = adjacent).
        min_probability / max_probability: range of tuple probabilities.
        event_prefix: prefix of the generated event-variable names.
        key_attribute / payload_attribute: schema attribute names.
        seed: RNG seed; two configs differing only in ``seed`` produce
            statistically identical but different relations.
    """

    size: int
    distinct_keys: int
    key_distribution: KeyDistribution = KeyDistribution.UNIFORM
    mean_interval_length: int = 10
    interval_distribution: IntervalLengthDistribution = IntervalLengthDistribution.GEOMETRIC
    gap_factor: float = 0.5
    min_probability: float = 0.05
    max_probability: float = 0.95
    event_prefix: str = "e"
    key_attribute: str = "Key"
    payload_attribute: str = "Payload"
    seed: int = 0

    def with_size(self, size: int) -> "WorkloadConfig":
        """A copy of the config with a different cardinality."""
        return replace(self, size=size)

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """A copy of the config with a different RNG seed."""
        return replace(self, seed=seed)

    def schema(self) -> Schema:
        """The schema of the generated relation."""
        return Schema.of(self.key_attribute, self.payload_attribute)


def generate_relation(
    config: WorkloadConfig,
    events: EventSpace | None = None,
    name: str = "synthetic",
) -> TPRelation:
    """Generate one TP relation from a workload configuration.

    Tuples are laid out key by key: for each key the generator walks a
    private timeline, drawing a duration and a gap for every tuple, so tuples
    sharing a fact never overlap (the TP duplicate-free constraint holds by
    construction).  The payload attribute is a per-tuple serial number, so
    facts are unique per tuple — which mirrors the WebKit/Meteo layout where
    the joined attribute (file, station/metric) is one of several columns.
    """
    if config.size <= 0:
        raise ValueError("workload size must be positive")
    if config.distinct_keys <= 0:
        raise ValueError("distinct_keys must be positive")
    rng = random.Random(config.seed)
    space = events if events is not None else EventSpace()

    key_of_tuple = _assign_keys(config, rng)
    timelines: dict[str, int] = {}
    tuples: list[TPTuple] = []
    for index, key in enumerate(key_of_tuple):
        duration = _draw_duration(config, rng)
        gap = _draw_gap(config, rng)
        start = timelines.get(key, 0) + gap
        interval = Interval(start, start + duration)
        timelines[key] = interval.end
        probability = rng.uniform(config.min_probability, config.max_probability)
        event = f"{config.event_prefix}{name}_{index}"
        space.register(event, probability)
        fact = (key, index)
        tuples.append(TPTuple.base(fact, event, interval, probability))
    return TPRelation(config.schema(), tuples, space, name=name, check_constraint=False)


def generate_pair(
    positive_config: WorkloadConfig,
    negative_config: WorkloadConfig,
    positive_name: str = "r",
    negative_name: str = "s",
) -> tuple[TPRelation, TPRelation]:
    """Generate a positive/negative relation pair over a shared event space."""
    events = EventSpace()
    positive = generate_relation(positive_config, events, name=positive_name)
    negative = generate_relation(negative_config, events, name=negative_name)
    return positive, negative


def uniform_subset(relation: TPRelation, size: int, seed: int = 0) -> TPRelation:
    """A uniformly sampled subset of ``size`` tuples (the paper's scaling method).

    The paper derives its 50K–200K input sizes by uniform sampling from the
    full datasets, explicitly preserving the distinct-value ratio; sampling
    uniformly without replacement does the same here.
    """
    if size >= len(relation):
        return relation
    rng = random.Random(seed)
    chosen = rng.sample(range(len(relation)), size)
    chosen.sort()
    picked = [relation.tuples[index] for index in chosen]
    return TPRelation(
        relation.schema, picked, relation.events, name=relation.name, check_constraint=False
    )


# --------------------------------------------------------------------------- #
# internals
# --------------------------------------------------------------------------- #
def _assign_keys(config: WorkloadConfig, rng: random.Random) -> list[str]:
    keys = [f"k{index}" for index in range(config.distinct_keys)]
    if config.key_distribution is KeyDistribution.UNIFORM:
        return [rng.choice(keys) for _ in range(config.size)]
    # Zipf-ish: weight key i by 1 / (i + 1).
    weights = [1.0 / (rank + 1) for rank in range(config.distinct_keys)]
    return rng.choices(keys, weights=weights, k=config.size)


def _draw_duration(config: WorkloadConfig, rng: random.Random) -> int:
    mean = max(config.mean_interval_length, 1)
    if config.interval_distribution is IntervalLengthDistribution.UNIFORM:
        return rng.randint(1, 2 * mean - 1)
    if config.interval_distribution is IntervalLengthDistribution.GEOMETRIC:
        duration = 1
        while rng.random() > 1.0 / mean and duration < 50 * mean:
            duration += 1
        return duration
    # Long tail: mostly short, occasionally very long (WebKit-like files that
    # stay unchanged for a long time).
    if rng.random() < 0.9:
        return rng.randint(1, mean)
    return rng.randint(mean, 20 * mean)


def _draw_gap(config: WorkloadConfig, rng: random.Random) -> int:
    mean_gap = config.gap_factor * config.mean_interval_length
    if mean_gap <= 0:
        return 0
    return rng.randint(0, max(1, int(2 * mean_gap)))
