"""WebKit-like synthetic workload.

The paper's WebKit dataset records, per file of the WebKit repository,
predictions that the file remains unchanged over an interval; tuples
referring to the same file are combined, and the join condition is equality
on the file.  Performance-wise the dataset is characterised by

* a *large* number of distinct join keys relative to its size (one key per
  file, hundreds of thousands of files), so an equality θ is very selective;
* skewed activity: a minority of files concentrate most of the revisions;
* long-tailed interval lengths: most "unchanged" periods are short, some are
  very long.

The generator below reproduces those properties at a configurable scale.  The
default ratio of one distinct key per ~8 tuples keeps the per-key overlap
density similar to the real dataset's file/revision ratio while staying
meaningful at the scaled-down benchmark sizes.
"""

from __future__ import annotations

from ..relation import TPRelation
from .generators import (
    IntervalLengthDistribution,
    KeyDistribution,
    WorkloadConfig,
    generate_pair,
)

#: Tuples per distinct file in the generated workload.
TUPLES_PER_FILE = 8


def webkit_config(size: int, seed: int = 0) -> WorkloadConfig:
    """The WebKit-like configuration for one relation of ``size`` tuples."""
    return WorkloadConfig(
        size=size,
        distinct_keys=max(1, size // TUPLES_PER_FILE),
        key_distribution=KeyDistribution.ZIPF,
        mean_interval_length=12,
        interval_distribution=IntervalLengthDistribution.LONG_TAIL,
        gap_factor=0.4,
        min_probability=0.4,
        max_probability=0.99,
        key_attribute="File",
        payload_attribute="Revision",
        seed=seed,
    )


def webkit_pair(size: int, seed: int = 0) -> tuple[TPRelation, TPRelation]:
    """Generate a WebKit-like positive/negative relation pair.

    Both relations describe predictions over the same universe of files (the
    paper joins predictions about the same file), so they share the key space
    but are drawn with different seeds.
    """
    positive = webkit_config(size, seed=seed)
    negative = webkit_config(size, seed=seed + 1)
    return generate_pair(positive, negative, positive_name="webkit_r", negative_name="webkit_s")
