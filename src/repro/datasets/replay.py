"""Replay generation: finite TP relations as out-of-order event streams.

The continuous-query subsystem consumes unbounded, watermarked event
streams; the repository's workloads are finite synthetic relations.  This
module bridges the two: it *replays* a relation as a stream whose arrival
order deviates from event-time order by a configurable **disorder** bound.

The disorder model perturbs each tuple's interval start by a uniform jitter
in ``[0, disorder]`` and sorts arrivals by the perturbed value, so a tuple
can arrive after tuples that start up to ``disorder`` time points later —
the bounded-disorder pattern of real event logs (network reordering, batchy
collectors).  A :class:`~repro.stream.StreamSource` configured with
``lateness >= disorder`` then provably evicts nothing: when a tuple arrives,
the largest start seen is at most ``disorder`` ahead of it, so the source
watermark (``max start - lateness``) has not passed it.

:func:`stream_def` packages a relation as a registered-stream definition for
the engine catalog; :func:`meteo_stream_pair` / :func:`webkit_stream_pair`
are the streaming variants of the batch workload builders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional

from ..relation import TPRelation, TPTuple
from ..stream import StreamDef, StreamElement, StreamSource, StreamStats
from .meteo import meteo_pair
from .webkit import webkit_pair


@dataclass(frozen=True)
class ReplayConfig:
    """How a finite relation is replayed as a stream.

    Attributes:
        disorder: maximal event-time displacement of the arrival order, in
            time points.  ``0`` replays in perfect event-time order.
        lateness: bounded-lateness allowance of the ingesting source;
            defaults to ``disorder`` (the tight bound under which nothing is
            evicted).  Set it *below* the disorder to exercise eviction.
        watermark_every: events between consecutive watermark emissions.
        seed: jitter RNG seed (per-stream determinism).
    """

    disorder: int = 0
    lateness: Optional[int] = None
    watermark_every: int = 8
    seed: int = 0

    def effective_lateness(self) -> int:
        """The source's lateness bound (defaults to the disorder)."""
        return self.disorder if self.lateness is None else self.lateness

    def with_disorder(self, disorder: int) -> "ReplayConfig":
        """A copy of the config with a different disorder bound."""
        return replace(self, disorder=disorder)


def arrival_order(
    relation: TPRelation, disorder: int = 0, seed: int = 0
) -> List[TPTuple]:
    """The relation's tuples in a disorder-bounded arrival order.

    Sorting by ``start + uniform(0, disorder)`` guarantees that whenever a
    tuple arrives, every earlier arrival starts at most ``disorder`` time
    points after it — the bound the watermark lateness is matched against.
    """
    if disorder < 0:
        raise ValueError("disorder must be non-negative")
    rng = random.Random(seed)
    keyed = [
        (tp_tuple.start + rng.uniform(0, disorder), index, tp_tuple)
        for index, tp_tuple in enumerate(relation)
    ]
    keyed.sort(key=lambda item: (item[0], item[1]))
    return [tp_tuple for _, _, tp_tuple in keyed]


def replay_source(
    relation: TPRelation, config: ReplayConfig | None = None, name: str = ""
) -> StreamSource:
    """A fresh watermarking source replaying ``relation`` with disorder."""
    config = config or ReplayConfig()
    ordered = arrival_order(relation, config.disorder, config.seed)
    return StreamSource(
        ordered,
        lateness=config.effective_lateness(),
        watermark_every=config.watermark_every,
        name=name or relation.name,
    )


def replay_elements(
    relation: TPRelation, config: ReplayConfig | None = None
) -> Iterator[StreamElement]:
    """One replay pass over the relation's element stream."""
    return iter(replay_source(relation, config))


def stream_def(
    relation: TPRelation, config: ReplayConfig | None = None, name: str = ""
) -> StreamDef:
    """Package a relation as a registered-stream definition.

    Every call of the returned definition's ``replay`` builds a fresh source
    over the same deterministic arrival order, so a registered stream can
    serve any number of queries.
    """
    fixed = config or ReplayConfig()
    label = name or relation.name
    # The arrival order is deterministic per config: compute it once and let
    # every replay share it instead of re-drawing jitter and re-sorting.
    ordered = arrival_order(relation, fixed.disorder, fixed.seed)

    def fresh_replay() -> StreamSource:
        # Return the source itself (it is iterable): consumers that care,
        # like StreamQuery, can read its eviction stats after the run.
        return StreamSource(
            ordered,
            lateness=fixed.effective_lateness(),
            watermark_every=fixed.watermark_every,
            name=label,
        )

    # A replay stream knows its content exactly: record the cardinality and
    # per-attribute key selectivity so the partition planner can size
    # per-stage worker counts (live sources would estimate these instead).
    distinct_counts = {
        attribute: len({tp_tuple.fact[index] for tp_tuple in relation})
        for index, attribute in enumerate(relation.schema.attributes)
    }
    return StreamDef(
        schema=relation.schema,
        events=relation.events,
        replay=fresh_replay,
        name=label,
        stats=StreamStats(
            cardinality=len(relation), attribute_distinct_counts=distinct_counts
        ),
    )


def meteo_stream_pair(
    size: int, config: ReplayConfig | None = None, seed: int = 0
) -> tuple[StreamDef, StreamDef]:
    """Streaming variant of :func:`repro.datasets.meteo_pair`."""
    config = config or ReplayConfig()
    positive, negative = meteo_pair(size, seed=seed)
    return (
        stream_def(positive, config),
        stream_def(negative, replace(config, seed=config.seed + 1)),
    )


def webkit_stream_pair(
    size: int, config: ReplayConfig | None = None, seed: int = 0
) -> tuple[StreamDef, StreamDef]:
    """Streaming variant of :func:`repro.datasets.webkit_pair`."""
    config = config or ReplayConfig()
    positive, negative = webkit_pair(size, seed=seed)
    return (
        stream_def(positive, config),
        stream_def(negative, replace(config, seed=config.seed + 1)),
    )
