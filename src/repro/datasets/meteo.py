"""MeteoSwiss-like synthetic workload.

The paper's Meteo dataset records, per meteorological metric, predictions
that the measured value does not vary by more than 0.1 over an interval;
tuples with measurements of the same metric at *different stations* are
combined, so the join key is the metric.  The paper highlights the property
that matters for performance: "the Meteo dataset contains a number of
distinct values much smaller than its size, an analogy maintained in the
subsets due to the use of the uniform distribution in their creation.  As a
result, the condition is not very selective and the runtime of both NJ and TA
is higher than it was in the case of the webkit dataset."

The generator therefore uses a *fixed, small* number of distinct join keys
(independent of the relation size, like a fixed set of metrics), uniform key
assignment and comparatively short, dense intervals.
"""

from __future__ import annotations

from ..relation import TPRelation
from .generators import (
    IntervalLengthDistribution,
    KeyDistribution,
    WorkloadConfig,
    generate_pair,
)

#: Number of distinct metrics; fixed regardless of relation size.
DISTINCT_METRICS = 40


def meteo_config(size: int, seed: int = 0) -> WorkloadConfig:
    """The Meteo-like configuration for one relation of ``size`` tuples."""
    return WorkloadConfig(
        size=size,
        distinct_keys=DISTINCT_METRICS,
        key_distribution=KeyDistribution.UNIFORM,
        mean_interval_length=6,
        interval_distribution=IntervalLengthDistribution.GEOMETRIC,
        gap_factor=0.2,
        min_probability=0.2,
        max_probability=0.95,
        key_attribute="Metric",
        payload_attribute="Measurement",
        seed=seed,
    )


def meteo_pair(size: int, seed: int = 0) -> tuple[TPRelation, TPRelation]:
    """Generate a Meteo-like positive/negative relation pair."""
    positive = meteo_config(size, seed=seed)
    negative = meteo_config(size, seed=seed + 1)
    return generate_pair(positive, negative, positive_name="meteo_r", negative_name="meteo_s")
