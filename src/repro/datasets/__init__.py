"""Synthetic dataset generators standing in for the paper's real workloads."""

from .generators import (
    IntervalLengthDistribution,
    KeyDistribution,
    WorkloadConfig,
    generate_pair,
    generate_relation,
    uniform_subset,
)
from .meteo import DISTINCT_METRICS, meteo_config, meteo_pair
from .replay import (
    ReplayConfig,
    arrival_order,
    meteo_stream_pair,
    replay_elements,
    replay_source,
    stream_def,
    webkit_stream_pair,
)
from .statistics import WorkloadStatistics, mean_matches_per_tuple, workload_statistics
from .webkit import TUPLES_PER_FILE, webkit_config, webkit_pair

__all__ = [
    "DISTINCT_METRICS",
    "IntervalLengthDistribution",
    "KeyDistribution",
    "ReplayConfig",
    "TUPLES_PER_FILE",
    "WorkloadConfig",
    "WorkloadStatistics",
    "arrival_order",
    "generate_pair",
    "generate_relation",
    "mean_matches_per_tuple",
    "meteo_config",
    "meteo_pair",
    "meteo_stream_pair",
    "replay_elements",
    "replay_source",
    "stream_def",
    "uniform_subset",
    "webkit_config",
    "webkit_pair",
    "webkit_stream_pair",
    "workload_statistics",
]
