"""Harness runner: execute experiments and collect their measurements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .experiments import ExperimentSpec, Measurement, resolve_experiments
from .reporting import experiment_report


@dataclass(frozen=True)
class RunResult:
    """Measurements and report text of one executed experiment.

    The workload seed rides along so results written to ``BENCH_*.json``
    record how to reproduce themselves.
    """

    spec: ExperimentSpec
    measurements: tuple[Measurement, ...]
    report: str
    seed: int = 0


def run_experiment(
    spec: ExperimentSpec,
    sizes: Sequence[int] | None = None,
    seed: int = 0,
) -> RunResult:
    """Run one experiment spec and build its report."""
    measurements = tuple(spec.run(sizes=sizes, seed=seed))
    return RunResult(spec, measurements, experiment_report(spec, measurements), seed=seed)


def run_by_name(
    name: str,
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    paper_scale: bool = False,
) -> list[RunResult]:
    """Run an experiment (or group) by name.

    ``paper_scale`` switches to the paper's original input sizes (50K–200K
    tuples); expect long runtimes, especially for the TA series.
    """
    results: list[RunResult] = []
    for spec in resolve_experiments(name):
        chosen_sizes = sizes
        if chosen_sizes is None and paper_scale:
            chosen_sizes = spec.paper_sizes
        results.append(run_experiment(spec, sizes=chosen_sizes, seed=seed))
    return results
