"""Experiment harness: re-run the paper's figures and report the series."""

from .experiments import (
    EXPERIMENT_GROUPS,
    EXPERIMENTS,
    ExperimentSpec,
    Measurement,
    SeriesSpec,
    resolve_experiments,
)
from .reporting import (
    bench_payload,
    bench_payload_base,
    environment_info,
    experiment_report,
    measurements_table,
    speedup_summary,
    write_bench_file,
    write_bench_json,
    write_csv,
)
from .runner import RunResult, run_by_name, run_experiment

__all__ = [
    "EXPERIMENTS",
    "EXPERIMENT_GROUPS",
    "ExperimentSpec",
    "Measurement",
    "RunResult",
    "SeriesSpec",
    "bench_payload",
    "bench_payload_base",
    "environment_info",
    "experiment_report",
    "measurements_table",
    "resolve_experiments",
    "run_by_name",
    "run_experiment",
    "speedup_summary",
    "write_bench_file",
    "write_bench_json",
    "write_csv",
]
