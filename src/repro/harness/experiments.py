"""Experiment registry: one entry per figure of the paper's evaluation.

Every experiment knows how to build its workload (WebKit-like or Meteo-like
synthetic data), which measurements (approach × input size) it performs and
what series the paper plots, so the harness can print the same rows/series
the paper reports.  The expected *shape* of each figure (who wins, by what
rough factor) is recorded alongside and written into EXPERIMENTS.md by the
reporting module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..baselines.temporal_alignment import ta_left_outer_join, ta_wuo, ta_wuon
from ..core.joins import nj_wn, nj_wuo, nj_wuon, tp_left_outer_join
from ..datasets import meteo_pair, webkit_pair
from ..relation import EquiJoinCondition, TPRelation, ThetaCondition


@dataclass(frozen=True, slots=True)
class Measurement:
    """One timed run: an approach on a dataset at one input size."""

    experiment: str
    dataset: str
    series: str
    size: int
    seconds: float
    output_count: int


@dataclass(frozen=True)
class SeriesSpec:
    """One series of a figure (e.g. "NJ" or "TA")."""

    name: str
    run: Callable[[TPRelation, TPRelation, ThetaCondition], Sequence]


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure of the paper's evaluation."""

    experiment_id: str
    title: str
    dataset: str
    series: tuple[SeriesSpec, ...]
    default_sizes: tuple[int, ...]
    paper_sizes: tuple[int, ...]
    expected_shape: str
    workload: Callable[[int, int], tuple[TPRelation, TPRelation]] = field(repr=False, default=None)  # type: ignore[assignment]

    def build_workload(self, size: int, seed: int = 0) -> tuple[TPRelation, TPRelation, ThetaCondition]:
        """Materialise the positive/negative relations and θ for one size."""
        positive, negative = self.workload(size, seed)
        key = positive.schema.attributes[0]
        theta = EquiJoinCondition(positive.schema, negative.schema, ((key, key),))
        return positive, negative, theta

    def run(self, sizes: Sequence[int] | None = None, seed: int = 0) -> list[Measurement]:
        """Run every series at every size and return the measurements."""
        measurements: list[Measurement] = []
        for size in sizes if sizes is not None else self.default_sizes:
            positive, negative, theta = self.build_workload(size, seed)
            for series in self.series:
                started = time.perf_counter()
                result = series.run(positive, negative, theta)
                elapsed = time.perf_counter() - started
                measurements.append(
                    Measurement(
                        experiment=self.experiment_id,
                        dataset=self.dataset,
                        series=series.name,
                        size=size,
                        seconds=elapsed,
                        output_count=len(result),
                    )
                )
        return measurements


# --------------------------------------------------------------------------- #
# the measured computations (shared by the harness and the pytest benchmarks)
# --------------------------------------------------------------------------- #
def run_nj_wuo(positive, negative, theta):
    """NJ's overlapping + unmatched windows (Fig. 5, NJ series)."""
    return nj_wuo(positive, negative, theta)


def run_ta_wuo(positive, negative, theta):
    """TA's overlapping + unmatched windows — two conventional joins (Fig. 5, TA)."""
    return ta_wuo(positive, negative, theta)


def run_nj_wn(positive, negative, theta):
    """NJ's negating windows only (Fig. 6, NJ-WN series)."""
    return nj_wn(positive, negative, theta)


def run_nj_wuon(positive, negative, theta):
    """NJ's full window set WUON (Fig. 6, NJ-WUON series)."""
    return nj_wuon(positive, negative, theta)


def run_ta_negating(positive, negative, theta):
    """TA's window set including negating windows (Fig. 6, TA series)."""
    return ta_wuon(positive, negative, theta)


def run_nj_left_outer(positive, negative, theta):
    """NJ's TP left outer join without probability materialisation (Fig. 7, NJ)."""
    return tp_left_outer_join(positive, negative, theta, compute_probabilities=False)


def run_ta_left_outer(positive, negative, theta):
    """TA's TP left outer join: union-based plan with nested loops (Fig. 7, TA)."""
    return ta_left_outer_join(
        positive, negative, theta, compute_probabilities=False, nested_loop=True
    )


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def _spec(experiment_id, title, dataset, series, default_sizes, paper_sizes, shape, workload):
    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        dataset=dataset,
        series=series,
        default_sizes=default_sizes,
        paper_sizes=paper_sizes,
        expected_shape=shape,
        workload=workload,
    )


_WUO_SERIES = (SeriesSpec("NJ", run_nj_wuo), SeriesSpec("TA", run_ta_wuo))
_NEGATING_SERIES = (
    SeriesSpec("NJ-WN", run_nj_wn),
    SeriesSpec("NJ-WUON", run_nj_wuon),
    SeriesSpec("TA", run_ta_negating),
)
_OUTER_SERIES = (SeriesSpec("NJ", run_nj_left_outer), SeriesSpec("TA", run_ta_left_outer))

EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig5a": _spec(
        "fig5a", "WUO: overlapping and unmatched windows (WebKit)", "webkit",
        _WUO_SERIES, (1000, 2000, 4000, 8000), (50_000, 100_000, 150_000, 200_000),
        "Both approaches grow roughly linearly; NJ is ~2-4x faster because TA "
        "executes the conventional outer join twice.", webkit_pair,
    ),
    "fig5b": _spec(
        "fig5b", "WUO: overlapping and unmatched windows (Meteo)", "meteo",
        _WUO_SERIES, (1000, 2000, 4000, 8000), (50_000, 100_000, 150_000, 200_000),
        "Same trend as fig5a but higher absolute runtimes (non-selective θ); "
        "NJ stays ~2-4x faster.", meteo_pair,
    ),
    "fig6a": _spec(
        "fig6a", "Negating windows (WebKit)", "webkit",
        _NEGATING_SERIES, (1000, 2000, 4000, 8000), (40_000, 80_000, 120_000, 160_000, 200_000),
        "NJ-WUON is ~4-10x faster than TA; NJ-WN (negating only) is ~12-20x faster.",
        webkit_pair,
    ),
    "fig6b": _spec(
        "fig6b", "Negating windows (Meteo)", "meteo",
        _NEGATING_SERIES, (1000, 2000, 4000, 8000), (40_000, 80_000, 120_000, 160_000, 200_000),
        "Same ordering as fig6a with higher absolute runtimes.", meteo_pair,
    ),
    "fig7a": _spec(
        "fig7a", "TP left outer join (WebKit)", "webkit",
        _OUTER_SERIES, (250, 500, 1000, 2000), (40_000, 80_000, 120_000, 160_000, 200_000),
        "TA's union-based plan degenerates to nested loops and duplicate "
        "elimination; NJ wins by one to two orders of magnitude.", webkit_pair,
    ),
    "fig7b": _spec(
        "fig7b", "TP left outer join (Meteo)", "meteo",
        _OUTER_SERIES, (250, 500, 1000, 2000), (40_000, 80_000, 120_000, 160_000, 200_000),
        "Non-selective θ narrows the gap relative to fig7a; NJ remains ~4-10x "
        "faster and both absolute runtimes are higher.", meteo_pair,
    ),
}

#: Grouped aliases accepted by the CLI.
EXPERIMENT_GROUPS: dict[str, tuple[str, ...]] = {
    "fig5": ("fig5a", "fig5b"),
    "fig6": ("fig6a", "fig6b"),
    "fig7": ("fig7a", "fig7b"),
    "all": tuple(EXPERIMENTS),
}


def resolve_experiments(name: str) -> list[ExperimentSpec]:
    """Resolve an experiment or group name to the specs to run."""
    if name in EXPERIMENTS:
        return [EXPERIMENTS[name]]
    if name in EXPERIMENT_GROUPS:
        return [EXPERIMENTS[key] for key in EXPERIMENT_GROUPS[name]]
    raise KeyError(
        f"unknown experiment {name!r}; available: "
        f"{sorted(EXPERIMENTS) + sorted(EXPERIMENT_GROUPS)}"
    )
