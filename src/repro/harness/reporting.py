"""Formatting of harness measurements.

The harness prints, for every figure, the same series the paper plots —
runtime per input size per approach — plus the NJ-vs-TA speedup factors so
the "shape" claims of the paper (who wins, by roughly how much) can be read
off directly and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
import os
import platform
import sys
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .experiments import ExperimentSpec, Measurement


def measurements_table(measurements: Sequence[Measurement]) -> str:
    """Render measurements as a fixed-width table (size × series runtimes)."""
    if not measurements:
        return "(no measurements)"
    series_names = _series_order(measurements)
    by_size: dict[int, dict[str, Measurement]] = defaultdict(dict)
    for measurement in measurements:
        by_size[measurement.size][measurement.series] = measurement

    header = ["size", *(f"{name} [ms]" for name in series_names), *(f"{name} windows" for name in series_names)]
    rows: list[list[str]] = []
    for size in sorted(by_size):
        row = [str(size)]
        for name in series_names:
            cell = by_size[size].get(name)
            row.append("-" if cell is None else f"{cell.seconds * 1000:.1f}")
        for name in series_names:
            cell = by_size[size].get(name)
            row.append("-" if cell is None else str(cell.output_count))
        rows.append(row)
    return _fixed_width(header, rows)


def speedup_summary(measurements: Sequence[Measurement], baseline: str = "TA") -> str:
    """Render NJ-vs-baseline speedup factors per size and series."""
    series_names = [name for name in _series_order(measurements) if name != baseline]
    by_size: dict[int, dict[str, Measurement]] = defaultdict(dict)
    for measurement in measurements:
        by_size[measurement.size][measurement.series] = measurement

    header = ["size", *(f"{baseline}/{name}" for name in series_names)]
    rows: list[list[str]] = []
    for size in sorted(by_size):
        base = by_size[size].get(baseline)
        row = [str(size)]
        for name in series_names:
            cell = by_size[size].get(name)
            if base is None or cell is None or cell.seconds == 0:
                row.append("-")
            else:
                row.append(f"{base.seconds / cell.seconds:.1f}x")
        rows.append(row)
    return _fixed_width(header, rows)


def experiment_report(spec: ExperimentSpec, measurements: Sequence[Measurement]) -> str:
    """The full text block printed for one experiment."""
    lines = [
        f"== {spec.experiment_id}: {spec.title} ==",
        f"dataset: {spec.dataset} (synthetic stand-in)",
        f"expected shape (paper): {spec.expected_shape}",
        "",
        measurements_table(measurements),
        "",
        "speedups (baseline runtime / series runtime):",
        speedup_summary(measurements),
    ]
    return "\n".join(lines)


def write_csv(measurements: Iterable[Measurement], path: str | Path) -> None:
    """Write measurements to a CSV file for downstream plotting."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment", "dataset", "series", "size", "seconds", "output_count"])
        for measurement in measurements:
            writer.writerow(
                [
                    measurement.experiment,
                    measurement.dataset,
                    measurement.series,
                    measurement.size,
                    f"{measurement.seconds:.6f}",
                    measurement.output_count,
                ]
            )


# --------------------------------------------------------------------------- #
# machine-readable results (perf trajectory across PRs)
# --------------------------------------------------------------------------- #
def bench_payload_base(
    experiment: str,
    title: str,
    *,
    seed: int,
    skipped_reason: "str | None" = None,
    metrics: "Mapping | None" = None,
    metrics_enabled: bool = False,
    **extra,
) -> dict:
    """The shared top-level schema of every ``BENCH_*.json`` payload.

    One implementation serves every payload writer — the harness figures
    (:func:`bench_payload`) and the standalone ``benchmarks/bench_*.py``
    scripts (re-exported through ``benchmarks/conftest.py``) — so the keys
    the CI perf-regression gate reads cannot drift between producers:

    * ``seed`` — the workload-generator seed, making the payload
      self-reproducing;
    * ``cpu_count`` — so ≈1× speedups on single-core runners stay
      interpretable;
    * ``skipped_reason`` — why a gate was skipped, or ``None`` when it ran;
    * ``metrics`` — the flat name → number mapping
      ``benchmarks/check_perf_baselines.py`` compares against committed
      baselines (``*_count`` keys exactly, ``*_seconds`` within the
      wall-clock tolerance band);
    * ``metrics_enabled`` — whether the run had the engine telemetry
      subsystem (``ExecutionOptions(metrics=True)``) switched on, so a
      figure measured with instrumentation live is never compared against
      an uninstrumented baseline without the difference being visible.
    """
    payload = {
        "experiment": experiment,
        "title": title,
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "skipped_reason": skipped_reason,
        "metrics": dict(metrics or {}),
        "metrics_enabled": bool(metrics_enabled),
        "environment": environment_info(),
    }
    payload.update(extra)
    return payload


def bench_payload(
    spec: ExperimentSpec, measurements: Sequence[Measurement], seed: int = 0
) -> dict:
    """The JSON payload written for one experiment's measurements.

    ``seed`` is the workload-generator seed the run used; recording it makes
    every ``BENCH_*.json`` self-reproducing (re-run the same experiment with
    the recorded seed and sizes to regenerate the identical workload).
    """
    metrics: dict = {}
    for m in measurements:
        prefix = f"{m.series}_s{m.size}"
        metrics[f"{prefix}_output_count"] = m.output_count
        metrics[f"{prefix}_seconds"] = round(m.seconds, 6)
    return bench_payload_base(
        spec.experiment_id,
        spec.title,
        seed=seed,
        metrics=metrics,
        dataset=spec.dataset,
        expected_shape=spec.expected_shape,
        measurements=[
            {
                "series": m.series,
                "size": m.size,
                "seconds": round(m.seconds, 6),
                "output_count": m.output_count,
            }
            for m in measurements
        ],
    )


def environment_info() -> dict:
    """The runtime environment recorded alongside every BENCH file."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def write_bench_file(name: str, payload: Mapping, directory: str | Path) -> Path:
    """Write one ``BENCH_<name>.json`` result file and return its path.

    The fixed prefix and stable key layout make the files greppable and
    diffable across PRs — the perf trajectory lives in version control, not
    in terminal scrollback.
    """
    destination = Path(directory) / f"BENCH_{name}.json"
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return destination


def write_bench_json(
    spec: ExperimentSpec,
    measurements: Sequence[Measurement],
    directory: str | Path,
    seed: int = 0,
) -> Path:
    """Write one experiment's measurements as ``BENCH_<experiment>.json``."""
    return write_bench_file(
        spec.experiment_id, bench_payload(spec, measurements, seed=seed), directory
    )


def _series_order(measurements: Sequence[Measurement]) -> list[str]:
    order: list[str] = []
    for measurement in measurements:
        if measurement.series not in order:
            order.append(measurement.series)
    return order


def _fixed_width(header: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].rjust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
