"""Command-line entry point of the experiment harness.

Examples::

    python -m repro.harness fig5
    python -m repro.harness fig7 --sizes 250,500,1000
    python -m repro.harness all --csv results.csv
    python -m repro.harness fig6a --paper-scale      # original 40K-200K sizes
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .reporting import write_bench_json, write_csv
from .runner import run_by_name


def _parse_sizes(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid size list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    """The harness argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Re-run the experiments of the paper's evaluation section.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig5a, fig5b, fig6a, fig6b, fig7a, fig7b) or group (fig5, fig6, fig7, all)",
    )
    parser.add_argument(
        "--sizes",
        type=_parse_sizes,
        default=None,
        help="comma-separated input sizes, e.g. 1000,2000,4000 (defaults per experiment)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload generator seed")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's original input sizes (50K-200K tuples; slow)",
    )
    parser.add_argument("--csv", default=None, help="also write measurements to this CSV file")
    parser.add_argument(
        "--json-dir",
        default="bench_results",
        help="directory for machine-readable BENCH_<experiment>.json files "
        "(default: bench_results; pass an empty string to disable)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the harness; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        results = run_by_name(
            arguments.experiment,
            sizes=arguments.sizes,
            seed=arguments.seed,
            paper_scale=arguments.paper_scale,
        )
    except KeyError as error:
        parser.error(str(error))
        return 2
    all_measurements = []
    for result in results:
        print(result.report)
        print()
        all_measurements.extend(result.measurements)
        if arguments.json_dir:
            path = write_bench_json(
                result.spec, result.measurements, arguments.json_dir, seed=result.seed
            )
            print(f"wrote {path}")
    if arguments.csv:
        write_csv(all_measurements, arguments.csv)
        print(f"wrote {len(all_measurements)} measurements to {arguments.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
