"""Lineage normalisation, restriction and equivalence.

The window definitions of the paper compare lineages for *equivalence*
(written ``λ ≡ λ'`` in Table I): an unmatched window is maximal because at
the boundary time point the disjunction of matching lineages *changes*.  The
algorithms only ever need to compare the structured disjunctions they build
themselves, but the declarative window predicates used in the test suite need
a genuine semantic equivalence check, provided here.

Expressions produced by the joins are small (a handful of variables), so the
equivalence check can afford exact co-factoring; it short-circuits on cheap
structural equality first.
"""

from __future__ import annotations

from typing import Mapping

from .builders import lineage_and, lineage_not, lineage_or
from .expr import FALSE, TRUE, And, LineageExpr, Not, Or, Var


def restrict(expr: LineageExpr, assignment: Mapping[str, bool]) -> LineageExpr:
    """Substitute truth values for some variables and simplify.

    Variables not mentioned in ``assignment`` are left symbolic.  The result
    never contains an assigned variable.
    """
    if isinstance(expr, Var):
        if expr.name in assignment:
            return TRUE if assignment[expr.name] else FALSE
        return expr
    if expr == TRUE or expr == FALSE:
        return expr
    if isinstance(expr, Not):
        return lineage_not(restrict(expr.child, assignment))
    if isinstance(expr, And):
        return lineage_and(*(restrict(operand, assignment) for operand in expr.operands))
    if isinstance(expr, Or):
        return lineage_or(*(restrict(operand, assignment) for operand in expr.operands))
    raise TypeError(f"unsupported lineage node {type(expr).__name__}")


def is_tautology(expr: LineageExpr) -> bool:
    """Return ``True`` if the expression is true under every assignment."""
    return _all_models(expr, value=True)


def is_contradiction(expr: LineageExpr) -> bool:
    """Return ``True`` if the expression is false under every assignment."""
    return _all_models(expr, value=False)


def equivalent(left: LineageExpr, right: LineageExpr) -> bool:
    """Semantic equivalence of two lineage expressions.

    Structural equality is checked first; otherwise the two expressions are
    compared by exhaustive co-factoring over their (small) joint variable
    set.
    """
    if left == right:
        return True
    variables = sorted(left.variables() | right.variables())
    return _equivalent_rec(left, right, variables)


def _equivalent_rec(left: LineageExpr, right: LineageExpr, variables: list[str]) -> bool:
    if not variables:
        return _constant_value(left) == _constant_value(right)
    if left == right:
        return True
    name, rest = variables[0], variables[1:]
    for value in (True, False):
        left_cofactor = restrict(left, {name: value})
        right_cofactor = restrict(right, {name: value})
        if not _equivalent_rec(left_cofactor, right_cofactor, rest):
            return False
    return True


def implies(antecedent: LineageExpr, consequent: LineageExpr) -> bool:
    """Return ``True`` if every model of ``antecedent`` satisfies ``consequent``."""
    return is_contradiction(lineage_and(antecedent, lineage_not(consequent)))


def to_nnf(expr: LineageExpr) -> LineageExpr:
    """Rewrite into negation normal form (negations only on variables)."""
    if isinstance(expr, (Var,)) or expr == TRUE or expr == FALSE:
        return expr
    if isinstance(expr, And):
        return lineage_and(*(to_nnf(operand) for operand in expr.operands))
    if isinstance(expr, Or):
        return lineage_or(*(to_nnf(operand) for operand in expr.operands))
    if isinstance(expr, Not):
        child = expr.child
        if isinstance(child, Var):
            return expr
        if child == TRUE:
            return FALSE
        if child == FALSE:
            return TRUE
        if isinstance(child, Not):
            return to_nnf(child.child)
        if isinstance(child, And):
            return lineage_or(*(to_nnf(lineage_not(operand)) for operand in child.operands))
        if isinstance(child, Or):
            return lineage_and(*(to_nnf(lineage_not(operand)) for operand in child.operands))
    raise TypeError(f"unsupported lineage node {type(expr).__name__}")


def canonical(expr: LineageExpr) -> LineageExpr:
    """Return a canonical form with commutative operands sorted.

    Two expressions that differ only in the order of ``∧`` / ``∨`` operands
    (e.g. ``b3 ∨ b2`` vs ``b2 ∨ b3``, which NJ and the naive oracle produce
    depending on their internal processing order) canonicalise to the same
    expression.  This is *not* full logical canonicalisation — use
    :func:`equivalent` for semantic comparisons — but it is deterministic,
    cheap, and sufficient to compare join results structurally.
    """
    if isinstance(expr, Var) or expr == TRUE or expr == FALSE:
        return expr
    if isinstance(expr, Not):
        return lineage_not(canonical(expr.child))
    if isinstance(expr, And):
        operands = sorted((canonical(op) for op in expr.operands), key=str)
        return lineage_and(*operands)
    if isinstance(expr, Or):
        operands = sorted((canonical(op) for op in expr.operands), key=str)
        return lineage_or(*operands)
    raise TypeError(f"unsupported lineage node {type(expr).__name__}")


def is_read_once(expr: LineageExpr) -> bool:
    """Return ``True`` if no variable occurs more than once in the expression.

    Read-once lineages admit linear-time exact probability computation via
    the independence fast path; the ablation benchmark uses this predicate to
    report how often join lineages are read-once (for the joins of the paper:
    always, because the two input relations have disjoint event variables and
    each relation contributes each variable at most once per window).
    """
    seen: set[str] = set()
    for node in expr.walk():
        if isinstance(node, Var):
            if node.name in seen:
                return False
            seen.add(node.name)
    return True


def _all_models(expr: LineageExpr, value: bool) -> bool:
    variables = sorted(expr.variables())
    return _check_all(expr, variables, value)


def _check_all(expr: LineageExpr, variables: list[str], value: bool) -> bool:
    if not variables:
        return _constant_value(expr) == value
    simplified = expr
    if simplified == TRUE:
        return value is True
    if simplified == FALSE:
        return value is False
    name, rest = variables[0], variables[1:]
    for truth in (True, False):
        if not _check_all(restrict(simplified, {name: truth}), rest, value):
            return False
    return True


def _constant_value(expr: LineageExpr) -> bool:
    if expr == TRUE:
        return True
    if expr == FALSE:
        return False
    raise ValueError(f"expression {expr} is not constant")
