"""Simplifying constructors for lineage expressions.

The join algorithms build lineages incrementally (e.g. extending the running
disjunction ``λs`` of a negating window every time a matching tuple starts
being valid).  The helpers here apply the cheap, always-safe rewrites —
constant folding, flattening of nested conjunctions/disjunctions, removal of
duplicate operands and double negation — so that lineages stay small without
requiring a full logic minimiser on the hot path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .expr import FALSE, TRUE, And, LineageExpr, Not, Or, Var


def var(name: str) -> Var:
    """Create an event variable."""
    return Var(name)


def lineage_and(*operands: LineageExpr) -> LineageExpr:
    """Build the simplified conjunction of ``operands``.

    Simplifications applied: identity (``true`` removed), annihilation
    (any ``false`` operand makes the result ``false``), flattening of nested
    conjunctions and removal of duplicates while preserving first-occurrence
    order.  An empty conjunction is ``true``.
    """
    flat = _flatten(operands, And)
    if any(operand is FALSE or operand == FALSE for operand in flat):
        return FALSE
    unique = _dedupe(operand for operand in flat if operand != TRUE)
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return And(tuple(unique))


def lineage_or(*operands: LineageExpr) -> LineageExpr:
    """Build the simplified disjunction of ``operands``.

    Simplifications applied: identity (``false`` removed), annihilation
    (any ``true`` operand makes the result ``true``), flattening of nested
    disjunctions and removal of duplicates.  An empty disjunction is
    ``false``.
    """
    flat = _flatten(operands, Or)
    if any(operand is TRUE or operand == TRUE for operand in flat):
        return TRUE
    unique = _dedupe(operand for operand in flat if operand != FALSE)
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return Or(tuple(unique))


def lineage_not(operand: LineageExpr) -> LineageExpr:
    """Build the simplified negation of ``operand``.

    Double negation is removed and constants are folded.
    """
    if operand == TRUE:
        return FALSE
    if operand == FALSE:
        return TRUE
    if isinstance(operand, Not):
        return operand.child
    return Not(operand)


def and_not(positive: LineageExpr, negated: LineageExpr) -> LineageExpr:
    """The ``andNot`` lineage-concatenation function of the paper.

    Negating windows produce output tuples whose lineage expresses that the
    positive tuple is true while *all* matching negative tuples are false:
    ``λr ∧ ¬λs``.
    """
    return lineage_and(positive, lineage_not(negated))


def disjunction_of(operands: Iterable[LineageExpr]) -> LineageExpr:
    """Disjunction of an iterable (``false`` when empty)."""
    return lineage_or(*list(operands))


def conjunction_of(operands: Iterable[LineageExpr]) -> LineageExpr:
    """Conjunction of an iterable (``true`` when empty)."""
    return lineage_and(*list(operands))


def _flatten(
    operands: Sequence[LineageExpr], node_type: type
) -> list[LineageExpr]:
    """Flatten nested nodes of the same type into a single operand list."""
    flat: list[LineageExpr] = []
    for operand in operands:
        if operand is None:
            raise TypeError("lineage operand must not be None")
        if isinstance(operand, node_type):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return flat


def _dedupe(operands: Iterable[LineageExpr]) -> list[LineageExpr]:
    """Remove duplicate operands, keeping first-occurrence order."""
    seen: set[LineageExpr] = set()
    unique: list[LineageExpr] = []
    for operand in operands:
        if operand not in seen:
            seen.add(operand)
            unique.append(operand)
    return unique
