"""Lineage expressions.

In a tuple-independent probabilistic database, every base tuple is annotated
with a Boolean *event variable*; derived tuples carry a *lineage* — a Boolean
expression over those variables recording how the tuple was derived.  The
temporal-probabilistic model of the paper attaches exactly such a lineage to
every tuple, and the joins with negation produce lineages of the form
``λr ∧ λs`` (overlapping windows), ``λr`` (unmatched windows) and
``λr ∧ ¬(λs1 ∨ ... ∨ λsk)`` (negating windows).

Expressions are immutable, hashable trees built from :class:`Var`,
:class:`And`, :class:`Or`, :class:`Not` and the constants :data:`TRUE` /
:data:`FALSE`.  Construction through the helpers in
:mod:`repro.lineage.builders` performs light-weight simplification (constant
folding, flattening, duplicate removal); the raw constructors here never
rewrite their arguments so tests can build exact shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping


class LineageError(ValueError):
    """Raised for malformed lineage expressions or evaluation errors."""


class LineageExpr:
    """Base class of all lineage expressions.

    The Python operators ``&``, ``|`` and ``~`` are overloaded to build
    simplified conjunctions, disjunctions and negations, which makes lineage
    construction in the join algorithms read like the paper's formulas.
    """

    __slots__ = ()

    # -- operator sugar -------------------------------------------------- #
    def __and__(self, other: "LineageExpr") -> "LineageExpr":
        from .builders import lineage_and

        return lineage_and(self, other)

    def __or__(self, other: "LineageExpr") -> "LineageExpr":
        from .builders import lineage_or

        return lineage_or(self, other)

    def __invert__(self) -> "LineageExpr":
        from .builders import lineage_not

        return lineage_not(self)

    # -- interface ------------------------------------------------------- #
    def variables(self) -> frozenset[str]:
        """Return the names of the event variables mentioned in the expression."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the expression under a truth assignment.

        Raises:
            LineageError: if a variable has no value in ``assignment``.
        """
        raise NotImplementedError

    def children(self) -> tuple["LineageExpr", ...]:
        """Return the direct sub-expressions."""
        return ()

    def is_constant(self) -> bool:
        """Return ``True`` for the constants ``TRUE`` and ``FALSE``."""
        return isinstance(self, _Const)

    def walk(self) -> Iterator["LineageExpr"]:
        """Yield the expression and all sub-expressions, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return sum(1 for _node in self.walk())


@dataclass(frozen=True, slots=True)
class _Const(LineageExpr):
    """A Boolean constant; only two instances exist (``TRUE`` and ``FALSE``)."""

    value: bool

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: The always-true lineage (lineage of a certain tuple).
TRUE = _Const(True)
#: The always-false lineage (lineage of an impossible tuple).
FALSE = _Const(False)


@dataclass(frozen=True, slots=True)
class Var(LineageExpr):
    """An event variable, identified by its name (e.g. ``"a1"``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise LineageError("event variable name must be non-empty")

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError as exc:
            raise LineageError(f"no truth value for event variable {self.name!r}") from exc

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Not(LineageExpr):
    """Negation of a sub-expression."""

    child: LineageExpr

    def variables(self) -> frozenset[str]:
        return self.child.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.child.evaluate(assignment)

    def children(self) -> tuple[LineageExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"¬{_wrap(self.child)}"


@dataclass(frozen=True, slots=True)
class And(LineageExpr):
    """Conjunction of two or more sub-expressions."""

    operands: tuple[LineageExpr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise LineageError("And requires at least two operands")

    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names |= operand.variables()
        return names

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def children(self) -> tuple[LineageExpr, ...]:
        return self.operands

    def __str__(self) -> str:
        return " ∧ ".join(_wrap(operand) for operand in self.operands)


@dataclass(frozen=True, slots=True)
class Or(LineageExpr):
    """Disjunction of two or more sub-expressions."""

    operands: tuple[LineageExpr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise LineageError("Or requires at least two operands")

    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names |= operand.variables()
        return names

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def children(self) -> tuple[LineageExpr, ...]:
        return self.operands

    def __str__(self) -> str:
        return " ∨ ".join(_wrap(operand) for operand in self.operands)


def _wrap(expr: LineageExpr) -> str:
    """Parenthesise composite operands when printing."""
    if isinstance(expr, (And, Or)):
        return f"({expr})"
    return str(expr)
