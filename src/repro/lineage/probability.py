"""Exact probability computation for lineage expressions.

The probability of a derived tuple is the probability that its lineage is
true when every base event is drawn independently with its marginal
probability.  Exact computation is #P-hard in general, but the lineages
produced by temporal-probabilistic joins have a lot of exploitable structure:

* **Independent decomposition** — if the operands of a conjunction
  (disjunction) mention pairwise disjoint sets of variables, the probability
  factorises.  Lineages like ``a1 ∧ ¬(b3 ∨ b2)`` produced by negating windows
  decompose completely this way, so the common case is linear time.
* **Shannon expansion** — when variables are shared between operands, the
  computation conditions on the most frequently shared variable and recurses
  on both cofactors, with memoisation on (expression, partial assignment)
  restrictions.

The :class:`ProbabilityComputer` implements both, and
:func:`probability` is the convenience entry point used by the relation and
join layers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping

#: Entries the id-keyed intern memo may hold before it is reset.  The memo
#: (and its pin list) grows with every distinct lineage *object* seen, which
#: for a long-lived computer over an unbounded stream is unbounded even when
#: the distinct structures are few; resetting it costs only the O(size)
#: re-interning of subsequently seen objects, while the structural intern
#: table and the probability cache — bounded by distinct structures — are
#: kept.
_INTERN_MEMO_LIMIT = 250_000

from .events import EventSpace
from .expr import FALSE, TRUE, And, LineageExpr, Not, Or, Var
from .simplify import restrict


class ProbabilityComputer:
    """Exact probability computation over a fixed :class:`EventSpace`.

    Instances memoise intermediate results keyed by the restricted
    sub-expressions encountered during Shannon expansion, so computing the
    probabilities of many structurally related lineages (as a join result
    contains) shares work.

    With ``hash_cons=True`` (the default) sub-expressions are additionally
    *interned*: structurally equal nodes are mapped to one canonical
    instance, and the memo cache is keyed on the canonical node's identity.
    Cache hits then cost one ``id()`` dictionary lookup instead of a deep
    structural hash + equality walk — the difference that matters when the
    same positive tuple's lineage recurs across many windows (every window
    of a continuous query re-derives ``λr ∧ ¬(λs1 ∨ ...)`` shapes sharing
    whole subtrees).  Setting ``hash_cons=False`` restores the purely
    structural cache.
    """

    __slots__ = (
        "_events",
        "_cache",
        "_hash_cons",
        "_intern_table",
        "_intern_memo",
        "_pins",
        "cache_hits",
        "cache_misses",
        "intern_hits",
        "intern_misses",
    )

    def __init__(self, events: EventSpace, hash_cons: bool = True) -> None:
        self._events = events
        self._hash_cons = hash_cons
        # Structural cache (hash_cons=False) or id-keyed cache over interned
        # nodes (hash_cons=True); the key type differs, the values agree.
        self._cache: Dict[object, float] = {}
        # Hash-consing state: structural key → canonical node, plus a memo
        # from id(original) → canonical so repeatedly seen *objects* skip
        # the structural walk entirely.  The pin list keeps every id-keyed
        # object alive for the computer's lifetime (ids must not be reused).
        self._intern_table: Dict[tuple, LineageExpr] = {}
        self._intern_memo: Dict[int, LineageExpr] = {}
        self._pins: list = []
        # Telemetry: plain ints (an increment is cheaper than any gating
        # check would be), read by the observability layer via
        # ``probability_counters()`` on the owning maintainer.
        self.cache_hits = 0
        self.cache_misses = 0
        self.intern_hits = 0
        self.intern_misses = 0

    @property
    def events(self) -> EventSpace:
        """The event space used for the marginal probabilities."""
        return self._events

    @property
    def memoises_subexpressions(self) -> bool:
        """Whether the hash-consed identity cache is active."""
        return self._hash_cons

    def probability(self, lineage: LineageExpr) -> float:
        """Return ``P(lineage)`` under independence of the base events."""
        if self._hash_cons:
            lineage = self._intern(lineage)
            cached = self._cache.get(id(lineage))
            if cached is not None:
                # Already computed (and therefore already validated): a
                # repeated window of the same positive tuple pays one
                # intern-memo lookup, not a re-validation walk.
                self.cache_hits += 1
                return cached
        self._events.validate_lineage(lineage)
        return self._probability(lineage)

    # ------------------------------------------------------------------ #
    # cache export / import (checkpointed recovery)
    # ------------------------------------------------------------------ #
    def cache_entries(self) -> list:
        """Every memoised ``(lineage, probability)`` pair this computer holds.

        Under hash-consing the pairs carry the canonical interned nodes; a
        fresh computer seeded with them (:meth:`seed_cache`) re-interns the
        structures and lands in the same memo state.  Used by the recovery
        checkpoint codec — exporting then re-seeding is bitwise-safe
        because the cached floats *are* the values the uncached path would
        recompute.
        """
        if not self._hash_cons:
            return [
                (expr, value)
                for expr, value in self._cache.items()
                if isinstance(expr, LineageExpr)
            ]
        entries = []
        for canonical in self._intern_table.values():
            value = self._cache.get(id(canonical))
            if value is not None:
                entries.append((canonical, value))
        return entries

    def seed_cache(self, pairs) -> None:
        """Warm the memo cache from :meth:`cache_entries` output.

        Each lineage is interned (under hash-consing) so later structurally
        equal expressions hit the seeded value by identity, exactly as they
        would have hit the original computer's cache.
        """
        for expr, value in pairs:
            if self._hash_cons:
                canonical = self._intern(expr)
                self._cache[id(canonical)] = value
            else:
                self._cache[expr] = value

    # ------------------------------------------------------------------ #
    # hash-consing
    # ------------------------------------------------------------------ #
    def intern(self, expr: LineageExpr) -> LineageExpr:
        """Public interning entry point: the canonical node for ``expr``.

        Structurally equal expressions map to one instance, so ``id()`` of
        the result is a valid dedup key for batch evaluation
        (:func:`repro.columnar.probs.batch_probabilities`).  Without
        hash-consing the expression is returned unchanged — structural
        equality is then the only dedup the caller can rely on.
        """
        if not self._hash_cons:
            return expr
        return self._intern(expr)

    def _intern(self, expr: LineageExpr) -> LineageExpr:
        """Map ``expr`` to the canonical instance of its structure.

        Structural keys are built from the *identities* of already-interned
        children, so every node costs O(fan-out) to key — no recursive
        hashing.  Both memo tables pin their keys via ``_pins``.
        """
        memoised = self._intern_memo.get(id(expr))
        if memoised is not None:
            self.intern_hits += 1
            return memoised
        self.intern_misses += 1
        if isinstance(expr, Var):
            key: tuple = ("v", expr.name)
        elif expr == TRUE:
            key = ("t",)
        elif expr == FALSE:
            key = ("f",)
        elif isinstance(expr, Not):
            key = ("n", id(self._intern(expr.child)))
        elif isinstance(expr, And):
            # Operand order is part of the key on purpose: float products
            # are evaluated in operand order, and interning must never
            # change the result bit-for-bit versus the uncached path.
            key = ("a", *(id(self._intern(operand)) for operand in expr.operands))
        elif isinstance(expr, Or):
            key = ("o", *(id(self._intern(operand)) for operand in expr.operands))
        else:  # pragma: no cover - defensive, all node types handled above
            raise TypeError(f"unsupported lineage node {type(expr).__name__}")
        canonical = self._intern_table.get(key)
        if canonical is None:
            canonical = expr
            self._intern_table[key] = expr
        if len(self._pins) >= _INTERN_MEMO_LIMIT:
            # Bound the duplicate-object memo; canonical nodes stay alive
            # (and id-stable) as values of the intern table.
            self._pins.clear()
            self._intern_memo.clear()
        self._intern_memo[id(expr)] = canonical
        self._pins.append(expr)
        return canonical

    def _cache_key(self, expr: LineageExpr) -> object:
        return id(expr) if self._hash_cons else expr

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _probability(self, expr: LineageExpr) -> float:
        if expr == TRUE:
            return 1.0
        if expr == FALSE:
            return 0.0
        if isinstance(expr, Var):
            return self._events.probability(expr.name)
        key = self._cache_key(expr)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if isinstance(expr, Not):
            value = 1.0 - self._probability(expr.child)
        elif isinstance(expr, And):
            value = self._connective(expr, is_and=True)
        elif isinstance(expr, Or):
            value = self._connective(expr, is_and=False)
        else:  # pragma: no cover - defensive, all node types handled above
            raise TypeError(f"unsupported lineage node {type(expr).__name__}")
        self._cache[key] = value
        return value

    def _connective(self, expr: LineageExpr, is_and: bool) -> float:
        operands = expr.children()
        shared = _shared_variable(operands)
        if shared is None:
            # Independent operands: the probability factorises.
            if is_and:
                product = 1.0
                for operand in operands:
                    product *= self._probability(operand)
                return product
            complement = 1.0
            for operand in operands:
                complement *= 1.0 - self._probability(operand)
            return 1.0 - complement
        return self._shannon(expr, shared)

    def _shannon(self, expr: LineageExpr, variable: str) -> float:
        """Condition on ``variable`` and recurse on both cofactors."""
        p_true = self._events.probability(variable)
        positive = restrict(expr, {variable: True})
        negative = restrict(expr, {variable: False})
        if self._hash_cons:
            positive = self._intern(positive)
            negative = self._intern(negative)
        return p_true * self._probability(positive) + (1.0 - p_true) * self._probability(
            negative
        )


def _shared_variable(operands: tuple[LineageExpr, ...]) -> str | None:
    """Return the variable shared by the most operands, or ``None``.

    ``None`` means the operands mention pairwise disjoint variable sets and
    the independence fast path applies.
    """
    counts: Counter[str] = Counter()
    for operand in operands:
        for name in operand.variables():
            counts[name] += 1
    if not counts:
        return None
    name, count = counts.most_common(1)[0]
    if count <= 1:
        return None
    return name


def probability(lineage: LineageExpr, events: EventSpace) -> float:
    """Compute ``P(lineage)`` (convenience wrapper without explicit computer)."""
    return ProbabilityComputer(events).probability(lineage)


def probabilities(
    lineages: Mapping[object, LineageExpr], events: EventSpace
) -> dict[object, float]:
    """Compute the probabilities of several lineages sharing one memo cache."""
    computer = ProbabilityComputer(events)
    return {key: computer.probability(expr) for key, expr in lineages.items()}


def conditional_probability(
    lineage: LineageExpr, given: LineageExpr, events: EventSpace
) -> float:
    """Return ``P(lineage | given)``.

    Raises:
        ZeroDivisionError: if ``P(given)`` is zero.
    """
    computer = ProbabilityComputer(events)
    joint = computer.probability(lineage & given)
    condition = computer.probability(given)
    if condition == 0.0:
        raise ZeroDivisionError("conditioning event has probability zero")
    return joint / condition
