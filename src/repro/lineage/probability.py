"""Exact probability computation for lineage expressions.

The probability of a derived tuple is the probability that its lineage is
true when every base event is drawn independently with its marginal
probability.  Exact computation is #P-hard in general, but the lineages
produced by temporal-probabilistic joins have a lot of exploitable structure:

* **Independent decomposition** — if the operands of a conjunction
  (disjunction) mention pairwise disjoint sets of variables, the probability
  factorises.  Lineages like ``a1 ∧ ¬(b3 ∨ b2)`` produced by negating windows
  decompose completely this way, so the common case is linear time.
* **Shannon expansion** — when variables are shared between operands, the
  computation conditions on the most frequently shared variable and recurses
  on both cofactors, with memoisation on (expression, partial assignment)
  restrictions.

The :class:`ProbabilityComputer` implements both, and
:func:`probability` is the convenience entry point used by the relation and
join layers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping

from .events import EventSpace
from .expr import FALSE, TRUE, And, LineageExpr, Not, Or, Var
from .simplify import restrict


class ProbabilityComputer:
    """Exact probability computation over a fixed :class:`EventSpace`.

    Instances memoise intermediate results keyed by the restricted
    sub-expressions encountered during Shannon expansion, so computing the
    probabilities of many structurally related lineages (as a join result
    contains) shares work.
    """

    __slots__ = ("_events", "_cache")

    def __init__(self, events: EventSpace) -> None:
        self._events = events
        self._cache: Dict[LineageExpr, float] = {}

    @property
    def events(self) -> EventSpace:
        """The event space used for the marginal probabilities."""
        return self._events

    def probability(self, lineage: LineageExpr) -> float:
        """Return ``P(lineage)`` under independence of the base events."""
        self._events.validate_lineage(lineage)
        return self._probability(lineage)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _probability(self, expr: LineageExpr) -> float:
        if expr == TRUE:
            return 1.0
        if expr == FALSE:
            return 0.0
        if isinstance(expr, Var):
            return self._events.probability(expr.name)
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        if isinstance(expr, Not):
            value = 1.0 - self._probability(expr.child)
        elif isinstance(expr, And):
            value = self._connective(expr, is_and=True)
        elif isinstance(expr, Or):
            value = self._connective(expr, is_and=False)
        else:  # pragma: no cover - defensive, all node types handled above
            raise TypeError(f"unsupported lineage node {type(expr).__name__}")
        self._cache[expr] = value
        return value

    def _connective(self, expr: LineageExpr, is_and: bool) -> float:
        operands = expr.children()
        shared = _shared_variable(operands)
        if shared is None:
            # Independent operands: the probability factorises.
            if is_and:
                product = 1.0
                for operand in operands:
                    product *= self._probability(operand)
                return product
            complement = 1.0
            for operand in operands:
                complement *= 1.0 - self._probability(operand)
            return 1.0 - complement
        return self._shannon(expr, shared)

    def _shannon(self, expr: LineageExpr, variable: str) -> float:
        """Condition on ``variable`` and recurse on both cofactors."""
        p_true = self._events.probability(variable)
        positive = restrict(expr, {variable: True})
        negative = restrict(expr, {variable: False})
        return p_true * self._probability(positive) + (1.0 - p_true) * self._probability(
            negative
        )


def _shared_variable(operands: tuple[LineageExpr, ...]) -> str | None:
    """Return the variable shared by the most operands, or ``None``.

    ``None`` means the operands mention pairwise disjoint variable sets and
    the independence fast path applies.
    """
    counts: Counter[str] = Counter()
    for operand in operands:
        for name in operand.variables():
            counts[name] += 1
    if not counts:
        return None
    name, count = counts.most_common(1)[0]
    if count <= 1:
        return None
    return name


def probability(lineage: LineageExpr, events: EventSpace) -> float:
    """Compute ``P(lineage)`` (convenience wrapper without explicit computer)."""
    return ProbabilityComputer(events).probability(lineage)


def probabilities(
    lineages: Mapping[object, LineageExpr], events: EventSpace
) -> dict[object, float]:
    """Compute the probabilities of several lineages sharing one memo cache."""
    computer = ProbabilityComputer(events)
    return {key: computer.probability(expr) for key, expr in lineages.items()}


def conditional_probability(
    lineage: LineageExpr, given: LineageExpr, events: EventSpace
) -> float:
    """Return ``P(lineage | given)``.

    Raises:
        ZeroDivisionError: if ``P(given)`` is zero.
    """
    computer = ProbabilityComputer(events)
    joint = computer.probability(lineage & given)
    condition = computer.probability(given)
    if condition == 0.0:
        raise ZeroDivisionError("conditioning event has probability zero")
    return joint / condition
