"""Probabilistic substrate: lineage expressions, event space, probability."""

from .builders import (
    and_not,
    conjunction_of,
    disjunction_of,
    lineage_and,
    lineage_not,
    lineage_or,
    var,
)
from .events import EventSpace, InvalidProbabilityError, UnknownEventError
from .expr import FALSE, TRUE, And, LineageError, LineageExpr, Not, Or, Var
from .probability import (
    ProbabilityComputer,
    conditional_probability,
    probabilities,
    probability,
)
from .sampling import Estimate, MonteCarloEstimator
from .simplify import (
    canonical,
    equivalent,
    implies,
    is_contradiction,
    is_read_once,
    is_tautology,
    restrict,
    to_nnf,
)

__all__ = [
    "And",
    "Estimate",
    "EventSpace",
    "FALSE",
    "InvalidProbabilityError",
    "LineageError",
    "LineageExpr",
    "MonteCarloEstimator",
    "Not",
    "Or",
    "ProbabilityComputer",
    "TRUE",
    "UnknownEventError",
    "Var",
    "and_not",
    "canonical",
    "conditional_probability",
    "conjunction_of",
    "disjunction_of",
    "equivalent",
    "implies",
    "is_contradiction",
    "is_read_once",
    "is_tautology",
    "lineage_and",
    "lineage_not",
    "lineage_or",
    "probabilities",
    "probability",
    "restrict",
    "to_nnf",
    "var",
]
