"""Monte-Carlo estimation of lineage probabilities.

Exact probability computation (``repro.lineage.probability``) covers every
lineage the joins of this library produce, but a credible probabilistic-
database substrate also offers an approximate evaluator: for adversarially
shared lineages the exact algorithm is exponential, while naive Monte-Carlo
sampling converges at the usual ``O(1/sqrt(n))`` rate regardless of
structure.  The sampler is also the cross-check used by the property-based
tests: exact and sampled probabilities must agree within the confidence
interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .events import EventSpace
from .expr import LineageExpr


@dataclass(frozen=True, slots=True)
class Estimate:
    """A Monte-Carlo probability estimate with a normal-approximation CI."""

    value: float
    samples: int
    confidence: float
    half_width: float

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval, clamped to ``[0, 1]``."""
        return max(0.0, self.value - self.half_width)

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval, clamped to ``[0, 1]``."""
        return min(1.0, self.value + self.half_width)

    def contains(self, probability: float) -> bool:
        """Return ``True`` if ``probability`` lies inside the interval."""
        return self.lower <= probability <= self.upper


class MonteCarloEstimator:
    """Estimate lineage probabilities by direct sampling of the event space."""

    __slots__ = ("_events", "_random")

    def __init__(self, events: EventSpace, seed: int | None = None) -> None:
        self._events = events
        self._random = random.Random(seed)

    def estimate(
        self,
        lineage: LineageExpr,
        samples: int = 10_000,
        confidence: float = 0.99,
    ) -> Estimate:
        """Estimate ``P(lineage)`` from ``samples`` independent worlds.

        Args:
            lineage: the expression to estimate.
            samples: number of sampled possible worlds; must be positive.
            confidence: two-sided confidence level of the reported interval.

        Returns:
            An :class:`Estimate` with the sample mean and half-width of the
            normal-approximation confidence interval.
        """
        if samples <= 0:
            raise ValueError("samples must be positive")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self._events.validate_lineage(lineage)
        variables = sorted(lineage.variables())
        marginals = {name: self._events.probability(name) for name in variables}
        successes = 0
        for _ in range(samples):
            world = {
                name: self._random.random() < marginal
                for name, marginal in marginals.items()
            }
            if lineage.evaluate(world):
                successes += 1
        mean = successes / samples
        z_score = _normal_quantile(0.5 + confidence / 2.0)
        half_width = z_score * math.sqrt(max(mean * (1.0 - mean), 1e-12) / samples)
        return Estimate(mean, samples, confidence, half_width)


def _normal_quantile(quantile: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency on the hot path
    of the sampler while still giving correct confidence intervals.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be strictly between 0 and 1")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if quantile < p_low:
        q = math.sqrt(-2.0 * math.log(quantile))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if quantile > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - quantile))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = quantile - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
