"""Event space: probabilities of the independent base events.

Every base tuple of a temporal-probabilistic relation introduces one Boolean
event variable; the variables of different base tuples are independent.  The
:class:`EventSpace` records the marginal probability of each variable and is
the single source of truth consulted by the exact and approximate probability
computations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping

from .expr import LineageExpr


class UnknownEventError(KeyError):
    """Raised when a lineage references an event with no recorded probability."""


class InvalidProbabilityError(ValueError):
    """Raised when a probability outside ``[0, 1]`` is registered."""


class EventSpace:
    """A mapping from event-variable names to marginal probabilities.

    The space is mutable (relations register their tuples' events when they
    are created) but registration is idempotent only when the probability is
    unchanged; re-registering an event with a different probability raises,
    because it almost certainly indicates two distinct tuples accidentally
    sharing a variable name.
    """

    __slots__ = ("_probabilities",)

    def __init__(self, probabilities: Mapping[str, float] | None = None) -> None:
        self._probabilities: Dict[str, float] = {}
        if probabilities:
            for name, probability in probabilities.items():
                self.register(name, probability)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, probability: float) -> None:
        """Record the marginal probability of event ``name``.

        Raises:
            InvalidProbabilityError: if ``probability`` is outside ``[0, 1]``.
            ValueError: if ``name`` is already registered with a different
                probability.
        """
        if not 0.0 <= probability <= 1.0:
            raise InvalidProbabilityError(
                f"probability of event {name!r} must be in [0, 1], got {probability}"
            )
        existing = self._probabilities.get(name)
        if existing is not None and existing != probability:
            raise ValueError(
                f"event {name!r} already registered with probability {existing}, "
                f"refusing to overwrite with {probability}"
            )
        self._probabilities[name] = probability

    def merge(self, other: "EventSpace") -> "EventSpace":
        """Return a new space containing the events of both spaces."""
        merged = EventSpace(self._probabilities)
        for name, probability in other._probabilities.items():
            merged.register(name, probability)
        return merged

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def probability(self, name: str) -> float:
        """Return the marginal probability of event ``name``."""
        try:
            return self._probabilities[name]
        except KeyError as exc:
            raise UnknownEventError(name) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._probabilities

    def __len__(self) -> int:
        return len(self._probabilities)

    def __iter__(self) -> Iterator[str]:
        return iter(self._probabilities)

    def names(self) -> list[str]:
        """Return all registered event names (sorted, for determinism)."""
        return sorted(self._probabilities)

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the underlying mapping."""
        return dict(self._probabilities)

    def validate_lineage(self, lineage: LineageExpr) -> None:
        """Check that every variable of ``lineage`` has a registered probability.

        Raises:
            UnknownEventError: naming the first missing variable.
        """
        for name in sorted(lineage.variables()):
            if name not in self._probabilities:
                raise UnknownEventError(name)

    def restrict(self, names: Iterable[str]) -> "EventSpace":
        """Return a new space containing only the given events."""
        subset = {}
        for name in names:
            subset[name] = self.probability(name)
        return EventSpace(subset)
