"""Revision streams: the element algebra flowing along dataflow edges.

A dataflow edge does not carry plain events: it carries *revisions* of an
operator's output, so downstream nodes can consume provisional results that
are later corrected.  Three revision kinds exist:

* ``EMIT`` — a tuple enters the output (first publication for its group).
* ``RETRACT`` — withdraw a previously emitted tuple, carried verbatim so the
  consumer can locate the exact state to unwind (tuple-level retraction, the
  revision-tuple model of incremental dataflow systems).
* ``REFINE`` — a replacement publication for a group that had published
  before: the operator retracted some of the group's windows and this element
  carries one of the corrected ones.  Consumers treat it exactly like
  ``EMIT`` (the state delta is identical); the distinct kind exists so
  observers can tell first publications from corrections — the retraction
  *rate* the benchmarks report.

``provisional`` flags output published *before* the watermark finalized its
group (early emission).  Provisional tuples may be retracted; settled ones
never are.  :class:`~repro.stream.elements.Watermark` elements interleave
with revisions and carry each node's **derived watermark**: the promise that
every future revision (including retractions!) concerns tuples whose
interval starts at or after the value.  It is computed as::

    min(combined input watermark,  min start of still-open positive groups)

i.e. the inputs' watermark minus the operator's current lag — exactly what a
chained operator needs to finalize its own windows soundly.

A base source is the degenerate revision stream that only ever emits:
:func:`as_revision` adapts plain :class:`StreamEvent` elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from ..relation import TPTuple
from ..stream.elements import StreamEvent, Watermark


class RevisionKind(str, Enum):
    """What a revision element does to the consumer's view of the output."""

    EMIT = "emit"
    RETRACT = "retract"
    REFINE = "refine"


@dataclass(frozen=True, slots=True)
class Revision:
    """One change to an operator's published output set.

    Attributes:
        kind: emit / retract / refine (see module docstring).
        tuple: the published (or withdrawn) TP tuple, verbatim.
        provisional: whether the tuple's group was still open (early
            emission) when this element was produced.
    """

    kind: RevisionKind
    tuple: TPTuple
    provisional: bool = False

    @property
    def adds(self) -> bool:
        """Whether this revision adds the tuple to the consumer's state."""
        return self.kind is not RevisionKind.RETRACT


#: Anything a dataflow edge carries.
RevisionElement = Union[Revision, Watermark]


def as_revision(element: StreamEvent) -> Revision:
    """Adapt a base-source event into its revision-stream form (a plain emit)."""
    return Revision(RevisionKind.EMIT, element.tuple)


@dataclass
class RevisionCounters:
    """Observer-side tally of one edge's revision traffic."""

    emits: int = 0
    retracts: int = 0
    refines: int = 0
    provisional: int = 0

    def record(self, revision: Revision) -> None:
        if revision.kind is RevisionKind.EMIT:
            self.emits += 1
        elif revision.kind is RevisionKind.RETRACT:
            self.retracts += 1
        else:
            self.refines += 1
        if revision.provisional:
            self.provisional += 1

    @property
    def additions(self) -> int:
        return self.emits + self.refines

    @property
    def retraction_rate(self) -> float:
        """Retractions per addition (0 when nothing was added)."""
        if not self.additions:
            return 0.0
        return self.retracts / self.additions
