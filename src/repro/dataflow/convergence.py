"""Convergence harness: settled dataflow output vs. the batch re-run.

The dataflow subsystem's core guarantee is *eventual exactness*: however
early windows were published and however many retraction/refine cycles ran,
once every watermark closes, each node's settled output equals the batch
join re-run over the settled inputs — tuple for tuple, with bitwise-equal
probabilities.  This module makes that checkable:

* :func:`batch_rerun` replays every source stream to a relation (the same
  delivered tuples the graph saw, post lateness-eviction) and evaluates the
  graph bottom-up with the unchanged batch joins of :mod:`repro.core`.
* :func:`assert_converged` compares every node of a
  :class:`~repro.dataflow.query.DataflowResult` against its batch
  counterpart in canonical order, computing probabilities on both sides the
  identical way so equality is exact (``==`` on floats), not approximate.

The check is partition-oblivious by construction: a node with
``NodeSpec.partitions = K`` settles key-disjoint outputs per partition, the
executors merge them in the canonical deterministic order, and the batch
re-run — which never partitions — must produce the identical sequence.  The
same harness therefore gates serial, pipelined and K-way partitioned runs
on every backend.

The harness is used by the randomized/property tests and by
``benchmarks/bench_retraction_latency.py``, which refuses to report numbers
for a run that did not converge.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from ..core import (
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from ..lineage import canonical
from ..relation import TPRelation, TPTuple
from ..stream.elements import StreamEvent
from ..stream.operators import theta_from_pairs
from .graph import NodeSpec
from .query import DataflowResult

#: Batch evaluator per continuous join kind.
BATCH_JOINS = {
    "anti": tp_anti_join,
    "left_outer": tp_left_outer_join,
    "right_outer": tp_right_outer_join,
    "full_outer": tp_full_outer_join,
    "inner": tp_inner_join,
}


def drained_relation(stream_def) -> TPRelation:
    """The settled content of a registered stream: one full replay's events.

    This is exactly the tuple set the graph executor delivered (the source's
    lateness eviction applies in both), so the comparison is apples to
    apples even for replays that drop late events.
    """
    tuples = [
        element.tuple
        for element in stream_def.replay()
        if isinstance(element, StreamEvent)
    ]
    return TPRelation(
        stream_def.schema,
        tuples,
        stream_def.events,
        name=stream_def.name,
        check_constraint=False,
    )


def batch_rerun(
    catalog, nodes: Sequence[NodeSpec], compute_probabilities: bool = True
) -> Dict[str, TPRelation]:
    """Evaluate the graph bottom-up with the batch joins of :mod:`repro.core`."""
    relations: Dict[str, TPRelation] = {}
    for spec in nodes:
        for input_name in (spec.left, spec.right):
            if input_name not in relations:
                relations[input_name] = drained_relation(
                    catalog.lookup_stream(input_name)
                )
        left = relations[spec.left]
        right = relations[spec.right]
        theta = theta_from_pairs(left.schema, right.schema, spec.on)
        joined = BATCH_JOINS[spec.kind](left, right, theta, compute_probabilities=False)
        # Rename to the node so downstream schema prefixing matches the graph.
        relations[spec.name] = TPRelation(
            joined.schema,
            joined.tuples,
            joined.events,
            name=spec.name,
            check_constraint=False,
        )
    result = {spec.name: relations[spec.name] for spec in nodes}
    if compute_probabilities:
        result = {name: rel.with_probabilities() for name, rel in result.items()}
    return result


def identity_rows(
    relation_or_tuples: Iterable[TPTuple], with_probability: bool = True
) -> list:
    """Canonically ordered (fact, interval, canonical lineage[, p]) rows."""
    rows = []
    for tp_tuple in sorted(relation_or_tuples, key=TPTuple.key):
        row = (
            tp_tuple.fact,
            tp_tuple.start,
            tp_tuple.end,
            str(canonical(tp_tuple.lineage)),
        )
        if with_probability:
            row += (tp_tuple.probability,)
        rows.append(row)
    return rows


class ConvergenceError(AssertionError):
    """Raised when a settled node output diverges from its batch re-run."""


def assert_converged(
    result: DataflowResult,
    catalog,
    nodes: Sequence[NodeSpec],
    check_probabilities: bool = True,
) -> Dict[str, int]:
    """Check every node of a settled run against the batch re-run.

    Probabilities are recomputed from the lineages on *both* sides with the
    same code path, so the comparison is exact float equality — bitwise, not
    approximate.  Returns the per-node settled cardinality for reporting.

    Raises:
        ConvergenceError: naming the first diverging node.
    """
    batch = batch_rerun(catalog, nodes, compute_probabilities=check_probabilities)
    cardinalities: Dict[str, int] = {}
    for spec in nodes:
        settled = result.nodes[spec.name].relation
        if check_probabilities:
            settled = settled.with_probabilities()
        got = identity_rows(settled, with_probability=check_probabilities)
        want = identity_rows(batch[spec.name], with_probability=check_probabilities)
        if got != want:
            missing = [row for row in want if row not in got]
            spurious = [row for row in got if row not in want]
            raise ConvergenceError(
                f"node {spec.name!r} did not converge to the batch re-run: "
                f"{len(missing)} missing, {len(spurious)} spurious "
                f"(of {len(want)} expected); first missing: "
                f"{missing[0] if missing else None}; first spurious: "
                f"{spurious[0] if spurious else None}"
            )
        cardinalities[spec.name] = len(want)
    return cardinalities
