"""Retractable multi-way continuous dataflow over TP streams.

Chained lineage-aware operators with revision streams and derived
watermarks — the multi-way, correction-tolerant layer above
:mod:`repro.stream`:

* :mod:`repro.dataflow.revision` — ``Emit`` / ``Retract`` / ``Refine``
  elements, the algebra every dataflow edge carries.
* :mod:`repro.dataflow.operators` — :class:`RevisionJoin`, the retractable
  early-emitting continuous join (all five Table II kinds, reverse windows
  included).
* :mod:`repro.dataflow.graph` — :class:`NodeSpec` / :class:`DataflowGraph`:
  DAG description, validation, schema and watermark topology.
* :mod:`repro.dataflow.executor` — the one graph driver over the runtime
  transports (:mod:`repro.runtime`): inline / threads / processes /
  sockets, all sharing the bounded-channel backpressure seam.
* :mod:`repro.dataflow.query` — :class:`DataflowQuery` /
  :class:`DataflowResult`, the registered executable form.
* :mod:`repro.dataflow.convergence` — the batch re-run harness proving
  settled output is tuple-for-tuple (probabilities bitwise) equal to the
  batch joins.
"""

from .convergence import (
    BATCH_JOINS,
    ConvergenceError,
    assert_converged,
    batch_rerun,
    drained_relation,
    identity_rows,
)
from .executor import (
    ChannelWatermarks,
    GraphRunOutcome,
    route_partition,
    run_graph,
    run_graph_inline,
    run_graph_threads,
    stage_watermark,
)
from .graph import DataflowGraph, GraphError, NodeSpec
from .operators import RevisionJoin, RevisionJoinStats
from .query import (
    GRAPH_BACKENDS,
    IN_PROCESS_BACKENDS,
    DataflowQuery,
    MultipleConsumerError,
    DataflowResult,
    NodeResult,
    percentile,
    summarize_ms,
)
from .revision import (
    Revision,
    RevisionCounters,
    RevisionElement,
    RevisionKind,
    as_revision,
)

__all__ = [
    "BATCH_JOINS",
    "ChannelWatermarks",
    "ConvergenceError",
    "DataflowGraph",
    "DataflowQuery",
    "DataflowResult",
    "GRAPH_BACKENDS",
    "GraphError",
    "GraphRunOutcome",
    "IN_PROCESS_BACKENDS",
    "MultipleConsumerError",
    "NodeResult",
    "NodeSpec",
    "Revision",
    "RevisionCounters",
    "RevisionElement",
    "RevisionJoin",
    "RevisionJoinStats",
    "RevisionKind",
    "as_revision",
    "assert_converged",
    "batch_rerun",
    "drained_relation",
    "identity_rows",
    "percentile",
    "route_partition",
    "run_graph",
    "run_graph_inline",
    "run_graph_threads",
    "stage_watermark",
    "summarize_ms",
]
