"""Retractable continuous TP joins: the operator behind a dataflow node.

:class:`RevisionJoin` runs the same incremental window machinery as the
finalizing operators in :mod:`repro.stream.operators` — one forward
:class:`~repro.stream.incremental.IncrementalWindowMaintainer`, plus the
mirrored reverse maintainer for right/full outer joins — but its inputs and
outputs are *revision streams* (:mod:`repro.dataflow.revision`):

* Input ``Emit``/``Refine`` elements are additions; ``Retract`` elements
  unwind the matching addition exactly (drop the open positive and its
  published windows, or strip the negative's overlap records from every open
  group).  The upstream watermark contract guarantees a retractable tuple's
  group is still open here, so unwinding is always possible.
* In **early-emission** mode the operator publishes each open group's
  current windows as *provisional* revisions — on the positive's arrival and
  again whenever the group's match list changes — instead of waiting for the
  watermark.  A change republishes the group: stale windows are retracted,
  corrected ones arrive as ``Refine`` elements.  Emit latency is recorded at
  the group's first publication, which is what drops it below the watermark
  lag.
* Watermark finalization *settles* a group: the final windows are diffed
  against the published provisional ones (retract stale / emit missing), the
  group's bookkeeping is dropped, and from then on the derived watermark
  moving past the group guarantees downstream that none of its tuples will
  ever be revised again.

The settled output therefore converges: once both inputs close, the net
published set of every node equals the batch join re-run over the settled
inputs, tuple for tuple — the convergence harness in
:mod:`repro.dataflow.convergence` asserts exactly that, probabilities
bitwise.

With ``materialize_probabilities`` the operator computes each published
tuple's probability through the maintainer-owned per-key hash-consed
:class:`~repro.lineage.ProbabilityComputer`; a refined window's probability
is recomputed through the same computer, so repeated sub-expressions of the
group's lineage are interned once and reused across all its revisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..columnar import maintainer_class
from ..lineage import EventSpace
from ..relation import Schema, TPTuple, ThetaCondition
from ..stream.elements import LEFT, RIGHT, StreamEvent, Tagged, Watermark
from ..stream.incremental import (
    FinalizedGroup,
    IncrementalWindowMaintainer,
    OpenPositive,
)
from ..stream.operators import (
    CONTINUOUS_OPERATORS,
    REVERSE_KINDS,
    continuous_output_schema,
    forward_group_tuples,
    group_of,
    reverse_group_tuples,
    theta_from_pairs,
)
from .revision import Revision, RevisionElement, RevisionKind

# swap_theta lives with the batch joins; imported here once for the mirrored
# maintainer so this module does not re-derive the swapped condition.
from ..core.joins import swap_theta

#: Identity of one open group across both maintainers: (is_reverse, serial).
GroupId = Tuple[bool, int]


@dataclass
class RevisionJoinStats:
    """Operator-side counters of one retractable join."""

    emits: int = 0
    retracts: int = 0
    refines: int = 0
    groups_published_early: int = 0
    groups_settled: int = 0
    inputs_retracted: int = 0

    @classmethod
    def merged(cls, parts: "Sequence[RevisionJoinStats]") -> "RevisionJoinStats":
        """Sum the counters of a stage's partition workers into one record."""
        total = cls()
        for stats in parts:
            total.emits += stats.emits
            total.retracts += stats.retracts
            total.refines += stats.refines
            total.groups_published_early += stats.groups_published_early
            total.groups_settled += stats.groups_settled
            total.inputs_retracted += stats.inputs_retracted
        return total


class RevisionJoin:
    """A retractable continuous TP join over tagged revision elements.

    Args:
        kind: any key of :data:`repro.stream.operators.CONTINUOUS_OPERATORS`.
        left_schema / right_schema: input schemas.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        early_emit: publish provisional windows before finalization.
        events: merged event space of every source feeding this node
            (required for ``materialize_probabilities``).
        materialize_probabilities: compute published tuples' probabilities
            inline via the maintainer-owned per-key computers.
    """

    def __init__(
        self,
        kind: str,
        left_schema: Schema,
        right_schema: Schema,
        on: Sequence[tuple[str, str]] = (),
        *,
        left_name: str = "r",
        right_name: str = "s",
        early_emit: bool = False,
        events: Optional[EventSpace] = None,
        materialize_probabilities: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        layout: str = "object",
    ) -> None:
        if kind not in CONTINUOUS_OPERATORS:
            raise ValueError(
                f"dataflow nodes support {sorted(CONTINUOUS_OPERATORS)}, not {kind!r}"
            )
        if materialize_probabilities and events is None:
            raise ValueError("materialize_probabilities requires an event space")
        self.kind = kind
        self._left_schema = left_schema
        self._right_schema = right_schema
        self._left_name = left_name
        self._right_name = right_name
        self._theta: ThetaCondition = theta_from_pairs(left_schema, right_schema, on)
        self._early = early_emit
        self._materialize = materialize_probabilities
        self._clock = clock
        self._layout = layout
        maintainer_cls = maintainer_class(layout)
        self._forward = maintainer_cls(self._theta, events=events)
        self._reverse: Optional[IncrementalWindowMaintainer] = (
            maintainer_cls(swap_theta(self._theta), events=events)
            if kind in REVERSE_KINDS
            else None
        )
        #: Published provisional tuples per open group, keyed by tuple identity.
        self._published: Dict[GroupId, Dict[tuple, TPTuple]] = {}
        self._latency_recorded: set[GroupId] = set()
        #: Net output applied so far (emits/refines minus retracts).
        self.settled_outputs: Dict[tuple, TPTuple] = {}
        self.stats = RevisionJoinStats()
        self.emit_latencies: List[float] = []
        #: Event-time emit lag per group: how far the input frontier (max
        #: event start seen) had progressed past the group's interval end at
        #: first publication.  Watermark-only emission floors this at the
        #: watermark lag; early emission drives it negative.
        self.emit_event_lags: List[float] = []
        self._frontier: float = float("-inf")
        self._last_watermark: float = float("-inf")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> ThetaCondition:
        return self._theta

    @property
    def early_emit(self) -> bool:
        return self._early

    @property
    def maintainer(self) -> IncrementalWindowMaintainer:
        return self._forward

    @property
    def reverse_maintainer(self) -> Optional[IncrementalWindowMaintainer]:
        return self._reverse

    def output_schema(self) -> Schema:
        return continuous_output_schema(
            self.kind, self._left_schema, self._right_schema, self._right_name
        )

    def describe(self) -> str:
        mode = "early-emit" if self._early else "watermark-only"
        return (
            f"RevisionJoin[{self.kind}] {self._left_name} × {self._right_name} "
            f"on {self._theta.describe()} ({mode})"
        )

    def derived_watermark(self) -> float:
        """The output watermark this node can currently promise.

        Every future revision concerns either a still-open group (tuples
        start at or after the group positive's start) or a future input
        event (starts at or after the combined input watermark).
        """
        derived = self._forward.combined_watermark
        open_start = self._forward.min_open_start()
        if self._reverse is not None:
            open_start = min(open_start, self._reverse.min_open_start())
        return min(derived, open_start)

    # ------------------------------------------------------------------ #
    # element processing
    # ------------------------------------------------------------------ #
    def process(self, tagged: Tagged) -> List[RevisionElement]:
        """Apply one tagged input element; returns output revision elements.

        The returned sequence always lists revisions first and, when the
        node's derived watermark advanced, a trailing :class:`Watermark`
        covering them.
        """
        element = tagged.element
        out: List[RevisionElement] = []
        if isinstance(element, StreamEvent):
            element = Revision(RevisionKind.EMIT, element.tuple)
        if isinstance(element, Revision):
            if element.kind is RevisionKind.RETRACT:
                self._retract(tagged.side, element.tuple, out)
                # Dropping an open group can raise the min open start.
                self._advance_watermark(out)
            else:
                if element.tuple.start > self._frontier:
                    self._frontier = element.tuple.start
                self._add(tagged.side, element.tuple, tagged.ingest_clock, out)
        elif isinstance(element, Watermark):
            if tagged.side == LEFT:
                finalized = self._forward.advance_left(element.value)
                finalized_reverse = (
                    self._reverse.advance_right(element.value) if self._reverse else []
                )
            elif tagged.side == RIGHT:
                finalized = self._forward.advance_right(element.value)
                finalized_reverse = (
                    self._reverse.advance_left(element.value) if self._reverse else []
                )
            else:
                raise ValueError(f"unknown stream side {tagged.side!r}")
            for group in finalized:
                self._settle(False, group, out)
            for group in finalized_reverse:
                self._settle(True, group, out)
            self._advance_watermark(out)
        else:
            raise TypeError(f"unsupported dataflow element {element!r}")
        return out

    def close(self) -> List[RevisionElement]:
        """Force both sides closed, settling every remaining group."""
        out: List[RevisionElement] = []
        for group in self._forward.close():
            self._settle(False, group, out)
        if self._reverse is not None:
            for group in self._reverse.close():
                self._settle(True, group, out)
        self._advance_watermark(out)
        return out

    # ------------------------------------------------------------------ #
    # additions and retractions
    # ------------------------------------------------------------------ #
    def _add(
        self,
        side: str,
        tp_tuple: TPTuple,
        ingest_clock: Optional[float],
        out: List[RevisionElement],
    ) -> None:
        now = ingest_clock if ingest_clock is not None else self._clock()
        affected: List[Tuple[bool, OpenPositive]] = []
        if side == LEFT:
            entry = self._forward.add_positive(tp_tuple, ingest_clock=now)
            if entry is not None:
                affected.append((False, entry))
            if self._reverse is not None:
                affected.extend(
                    (True, hit) for hit in self._reverse.add_negative(tp_tuple)
                )
        elif side == RIGHT:
            affected.extend(
                (False, hit) for hit in self._forward.add_negative(tp_tuple)
            )
            if self._reverse is not None:
                entry = self._reverse.add_positive(tp_tuple, ingest_clock=now)
                if entry is not None:
                    affected.append((True, entry))
        else:
            raise ValueError(f"unknown stream side {side!r}")
        if self._early:
            for is_reverse, entry in affected:
                self._publish(is_reverse, entry, out)

    def _retract(
        self, side: str, tp_tuple: TPTuple, out: List[RevisionElement]
    ) -> None:
        self.stats.inputs_retracted += 1
        affected: List[Tuple[bool, OpenPositive]] = []
        if side == LEFT:
            entry = self._forward.remove_positive(tp_tuple)
            if entry is not None:
                self._unpublish((False, entry.serial), out)
            if self._reverse is not None:
                affected.extend(
                    (True, hit) for hit in self._reverse.remove_negative(tp_tuple)
                )
        elif side == RIGHT:
            affected.extend(
                (False, hit) for hit in self._forward.remove_negative(tp_tuple)
            )
            if self._reverse is not None:
                entry = self._reverse.remove_positive(tp_tuple)
                if entry is not None:
                    self._unpublish((True, entry.serial), out)
        else:
            raise ValueError(f"unknown stream side {side!r}")
        if self._early:
            for is_reverse, entry in affected:
                self._publish(is_reverse, entry, out)

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #
    def _group_tuples(
        self,
        is_reverse: bool,
        group,
        key: Hashable,
    ) -> Dict[tuple, TPTuple]:
        left_width = len(self._left_schema)
        right_width = len(self._right_schema)
        derive = reverse_group_tuples if is_reverse else forward_group_tuples
        maintainer = self._reverse if is_reverse else self._forward
        tuples: Dict[tuple, TPTuple] = {}
        computer = maintainer.computer_for(key) if self._materialize else None
        if computer is not None and self._layout == "columnar":
            # Batch kernel: one evaluation per distinct interned
            # sub-expression of the group, scattered by intern id — values
            # bitwise-identical to the sequential memo path below.
            from ..columnar.probs import batch_probabilities

            derived = list(derive(self.kind, group, left_width, right_width))
            values = batch_probabilities(
                computer, [tp_tuple.lineage for tp_tuple in derived]
            )
            for tp_tuple, value in zip(derived, values):
                tp_tuple = replace(tp_tuple, probability=value)
                tuples[tp_tuple.key()] = tp_tuple
            return tuples
        for tp_tuple in derive(self.kind, group, left_width, right_width):
            if computer is not None:
                tp_tuple = replace(
                    tp_tuple, probability=computer.probability(tp_tuple.lineage)
                )
            tuples[tp_tuple.key()] = tp_tuple
        return tuples

    def _publish(
        self, is_reverse: bool, entry: OpenPositive, out: List[RevisionElement]
    ) -> None:
        """Republish one open group's provisional windows (early mode)."""
        gid: GroupId = (is_reverse, entry.serial)
        current = self._group_tuples(is_reverse, group_of(entry), entry.key)
        previous = self._published.get(gid)
        if previous is None and not current:
            return  # nothing to say about this group yet
        if previous is None:
            previous = {}
            self.stats.groups_published_early += 1
        self._diff(gid, previous, current, provisional=True, out=out)
        self._published[gid] = current
        if current and gid not in self._latency_recorded:
            self._record_latency(gid, entry.ingest_clock, entry.tuple.end)

    def _settle(
        self, is_reverse: bool, finalized: FinalizedGroup, out: List[RevisionElement]
    ) -> None:
        """Finalize one group: publish the settled diff, drop its bookkeeping."""
        gid: GroupId = (is_reverse, finalized.serial)
        final = self._group_tuples(is_reverse, finalized.group, finalized.key)
        previous = self._published.pop(gid, {})
        self._diff(gid, previous, final, provisional=False, out=out)
        self.stats.groups_settled += 1
        if gid not in self._latency_recorded:
            self._record_latency(gid, finalized.ingest_clock, finalized.group.r.end)
        # The group is gone for good; drop its latency bookkeeping with it.
        self._latency_recorded.discard(gid)

    def _diff(
        self,
        gid: GroupId,
        previous: Dict[tuple, TPTuple],
        current: Dict[tuple, TPTuple],
        provisional: bool,
        out: List[RevisionElement],
    ) -> None:
        refining = bool(previous)
        for identity, old in previous.items():
            if identity not in current:
                out.append(Revision(RevisionKind.RETRACT, old, provisional=True))
                self.stats.retracts += 1
                self.settled_outputs.pop(identity, None)
        for identity, tp_tuple in current.items():
            if identity in previous:
                # Unchanged window: keep the previously published object so
                # downstream never sees a spurious retract/re-emit cycle.
                current[identity] = previous[identity]
                continue
            kind = RevisionKind.REFINE if refining else RevisionKind.EMIT
            out.append(Revision(kind, tp_tuple, provisional=provisional))
            if kind is RevisionKind.EMIT:
                self.stats.emits += 1
            else:
                self.stats.refines += 1
            self.settled_outputs[identity] = tp_tuple

    def _record_latency(self, gid: GroupId, ingest_clock: float, end: float) -> None:
        self._latency_recorded.add(gid)
        self.emit_latencies.append(max(0.0, self._clock() - ingest_clock))
        self.emit_event_lags.append(self._frontier - end)

    def _unpublish(self, gid: GroupId, out: List[RevisionElement]) -> None:
        """Retract everything a removed group had published."""
        for old in self._published.pop(gid, {}).values():
            out.append(Revision(RevisionKind.RETRACT, old, provisional=True))
            self.stats.retracts += 1
            self.settled_outputs.pop(old.key(), None)
        self._latency_recorded.discard(gid)

    def _advance_watermark(self, out: List[RevisionElement]) -> None:
        derived = self.derived_watermark()
        if derived > self._last_watermark:
            self._last_watermark = derived
            out.append(Watermark(derived))
