"""DataflowQuery: the registered, executable form of a dataflow graph.

Mirrors :class:`repro.stream.StreamQuery` one level up: where a stream query
binds one continuous join to two registered streams, a dataflow query binds
a whole operator *graph* to the catalog and executes it to settlement on a
chosen runtime transport — ``inline``, ``threads``, ``processes`` or
``sockets`` (:mod:`repro.runtime`), the out-of-process ones degrading to
threads with a warning when their workers cannot start.  It reuses
:class:`~repro.stream.StreamQueryConfig` for its knobs: ``workers`` picks
the backend, ``buffer_capacity``/``micro_batch_size`` shape the
backpressure seam, ``early_emit`` switches provisional publication on and
``materialize_probabilities`` computes output probabilities inline through
the maintainer-owned per-key computers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..relation import TPRelation, TPTuple
from ..runtime import WorkerStartError
from ..stream.query import StreamQueryConfig, summarize_latency_ms as summarize_ms
from .executor import GraphRunOutcome, run_graph
from .graph import DataflowGraph, NodeSpec
from .operators import RevisionJoinStats

#: Valid executor backends of a dataflow query — the runtime transports.
GRAPH_BACKENDS = ("inline", "threads", "processes", "sockets")


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of a sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class NodeResult:
    """The settled output and revision statistics of one graph node."""

    name: str
    kind: str
    relation: TPRelation
    stats: RevisionJoinStats
    emit_latencies: List[float] = field(default_factory=list)
    emit_event_lags: List[float] = field(default_factory=list)

    def latency_summary(self) -> dict:
        """Wall-clock first-publication latency percentiles (ms)."""
        return summarize_ms(self.emit_latencies)

    @property
    def retraction_rate(self) -> float:
        """Output retractions per addition (emits + refines)."""
        additions = self.stats.emits + self.stats.refines
        if not additions:
            return 0.0
        return self.stats.retracts / additions


@dataclass
class DataflowResult:
    """The settled outcome of one dataflow graph execution."""

    nodes: Dict[str, NodeResult]
    sink: str
    events_processed: int
    elapsed_seconds: float
    backend: str
    backpressure_blocks: int = 0

    @property
    def relation(self) -> TPRelation:
        """The sink node's settled output relation."""
        return self.nodes[self.sink].relation

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds


class DataflowQuery:
    """A continuous operator graph registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream`` (the engine catalog).
        nodes: node specs in topological order (see :class:`NodeSpec`).
        config: execution knobs; ``config.workers`` picks the default
            backend (``"threads"`` maps to the node-per-thread pipeline).
    """

    def __init__(
        self,
        catalog,
        nodes: Sequence[NodeSpec],
        config: StreamQueryConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._graph = DataflowGraph(catalog, nodes)
        self._config = config or StreamQueryConfig()

    @property
    def graph(self) -> DataflowGraph:
        return self._graph

    @property
    def config(self) -> StreamQueryConfig:
        return self._config

    def describe(self) -> str:
        mode = "early-emit" if self._config.early_emit else "watermark-only"
        parts = "/".join(str(count) for count in self._graph.partition_counts)
        return (
            f"DataflowQuery[{len(self._graph.nodes)} nodes, sink={self._graph.sink}, "
            f"parts={parts}, {mode}, workers={self._config.workers}]"
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self, merge_seed: Optional[int] = None, backend: Optional[str] = None
    ) -> DataflowResult:
        """Execute the graph over fresh source replays until settlement."""
        chosen = backend or self._config.workers
        if chosen not in GRAPH_BACKENDS:
            raise ValueError(f"backend must be one of {GRAPH_BACKENDS}, got {chosen!r}")
        started = time.perf_counter()
        try:
            outcome = run_graph(self._graph, self._config, merge_seed, transport=chosen)
        except WorkerStartError as error:
            # Workers unavailable (sandbox without fork, unreachable host):
            # degrade to the thread transport — safe, no source element was
            # consumed yet.  The result's ``backend`` records what ran.
            warnings.warn(
                f"{chosen!r} workers could not start "
                f"({error}); falling back to the thread transport",
                RuntimeWarning,
                stacklevel=2,
            )
            outcome = run_graph(self._graph, self._config, merge_seed, transport="threads")
        elapsed = time.perf_counter() - started
        return self._build_result(outcome, elapsed)

    def _build_result(self, outcome: GraphRunOutcome, elapsed: float) -> DataflowResult:
        events = self._graph.merged_events()
        nodes: Dict[str, NodeResult] = {}
        for spec in self._graph.nodes:
            tuples = sorted(outcome.settled[spec.name], key=TPTuple.key)
            relation = TPRelation(
                self._graph.schema_of(spec.name),
                tuples,
                events,
                name=spec.name,
                check_constraint=False,
            )
            nodes[spec.name] = NodeResult(
                name=spec.name,
                kind=spec.kind,
                relation=relation,
                stats=outcome.stats[spec.name],
                emit_latencies=outcome.emit_latencies[spec.name],
                emit_event_lags=outcome.emit_event_lags[spec.name],
            )
        return DataflowResult(
            nodes=nodes,
            sink=self._graph.sink,
            events_processed=outcome.events_processed,
            elapsed_seconds=elapsed,
            backend=outcome.backend,
            backpressure_blocks=outcome.backpressure_blocks,
        )
