"""DataflowQuery: the registered, executable form of a dataflow graph.

Mirrors :class:`repro.stream.StreamQuery` one level up: where a stream query
binds one continuous join to two registered streams, a dataflow query binds
a whole operator *graph* to the catalog and executes it to settlement on a
chosen runtime transport — ``inline``, ``threads``, ``processes`` or
``sockets`` (:mod:`repro.runtime`), the out-of-process ones degrading to
threads with a warning when their workers cannot start.  It takes the same
unified :class:`repro.ExecutionOptions` for its knobs: ``transport`` picks
the backend, ``buffer_capacity``/``micro_batch_size`` shape the
backpressure seam, ``early_emit`` switches provisional publication on and
``materialize_probabilities`` computes output probabilities inline through
the maintainer-owned per-key computers.  The recovery knobs
(``checkpoint_interval``/``restart_limit``) are accepted but inert here:
dataflow nodes have peer edges, so a dead node is not a self-contained
shard — :meth:`DataflowResult.recoveries` is always empty.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..options import ExecutionOptions
from ..recovery.types import RecoveryEvent
from ..relation import TPRelation, TPTuple
from ..runtime import Channel, ChannelClosed, ChannelWatermarks, WorkerStartError
from ..stream.elements import Watermark
from ..stream.query import summarize_latency_ms as summarize_ms
from .executor import GraphRunOutcome, run_graph
from .graph import DataflowGraph, NodeSpec
from .operators import RevisionJoinStats
from .revision import RevisionElement

#: Valid executor backends of a dataflow query — the runtime transports.
GRAPH_BACKENDS = ("inline", "threads", "processes", "sockets")

#: In-process backends — the only ones whose workers can call back into the
#: driver's address space (taps), which live revision iteration requires.
IN_PROCESS_BACKENDS = ("inline", "threads")


class MultipleConsumerError(RuntimeError):
    """A second consumer attached to a single-consumer revision stream.

    A :meth:`DataflowQuery.iter_revisions` stream is owned by exactly one
    consumer: elements are *taken*, not copied, so a second iterator would
    silently steal revisions from the first and both would observe a
    corrupted (interleaved, gap-ridden) view of the output.  Multi-subscriber
    delivery is the serving layer's job — register the query as a standing
    query with :class:`repro.serve.StandingQueryService`, whose fan-out hub
    gives every subscriber its own cursor over one shared execution.
    """


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of a sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class NodeResult:
    """The settled output and revision statistics of one graph node."""

    name: str
    kind: str
    relation: TPRelation
    stats: RevisionJoinStats
    emit_latencies: List[float] = field(default_factory=list)
    emit_event_lags: List[float] = field(default_factory=list)

    def latency_summary(self) -> dict:
        """Wall-clock first-publication latency percentiles (ms)."""
        return summarize_ms(self.emit_latencies)

    @property
    def retraction_rate(self) -> float:
        """Output retractions per addition (emits + refines)."""
        additions = self.stats.emits + self.stats.refines
        if not additions:
            return 0.0
        return self.stats.retracts / additions


@dataclass
class DataflowResult:
    """The settled outcome of one dataflow graph execution."""

    nodes: Dict[str, NodeResult]
    sink: str
    events_processed: int
    elapsed_seconds: float
    backend: str
    backpressure_blocks: int = 0
    #: Final per-worker metrics snapshots (empty unless ``config.metrics``).
    metrics_snapshots: List[dict] = field(default_factory=list)
    #: Every span the run recorded (empty unless ``config.trace``).
    trace_spans: List[dict] = field(default_factory=list)
    #: Seat recoveries (always empty: graph recovery is unsupported, the
    #: field exists so dataflow and stream results introspect identically).
    recovery_events: List[RecoveryEvent] = field(default_factory=list)

    @property
    def relation(self) -> TPRelation:
        """The sink node's settled output relation."""
        return self.nodes[self.sink].relation

    def metrics(self):
        """The run's final snapshots as a :class:`repro.obs.MetricsAggregator`.

        ``None`` when the run was not instrumented (``metrics=False``).
        """
        if not self.metrics_snapshots:
            return None
        from ..obs.metrics import MetricsAggregator

        aggregator = MetricsAggregator()
        aggregator.update_all(self.metrics_snapshots)
        return aggregator

    def recoveries(self) -> List[RecoveryEvent]:
        """Seat recoveries performed during the run (always empty here).

        Dataflow nodes exchange revisions over peer edges, so a dead node
        cannot be replayed in isolation — graph recovery is not supported
        and this list is always empty.  The method exists so dataflow and
        stream results expose the same introspection surface.
        """
        return list(self.recovery_events)

    def trace(self):
        """The run's spans as a :class:`repro.obs.TraceAggregator`.

        ``None`` when the run was not traced (or nothing was sampled).
        """
        if not self.trace_spans:
            return None
        from ..obs.trace import TraceAggregator

        aggregator = TraceAggregator()
        aggregator.add_spans(self.trace_spans)
        return aggregator

    def explain_tuple(self, key) -> str:
        """Provenance of one settled sink tuple: lineage plus its trace.

        ``key`` is either a full fact tuple (exact match) or a scalar that
        any fact attribute may equal.  The report shows the tuple's
        interval, probability and lineage tree, then every sampled span
        timeline that contributed to it — the per-event evidence chain
        from source ingestion through each node's operate/emit to the sink.
        """
        from ..obs.trace import find_tuples, render_tuple_explanation

        matches = find_tuples(self.relation, key)
        if not matches:
            return f"no settled tuple matches {key!r}"
        aggregator = self.trace()
        return "\n\n".join(
            render_tuple_explanation(tp_tuple, aggregator) for tp_tuple in matches
        )

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.events_processed / self.elapsed_seconds

    def explain_analyze(self) -> str:
        """``EXPLAIN ANALYZE``-style per-node report of the finished run.

        Combines the settled revision statistics every run records with the
        metrics snapshots of an instrumented run (``config.metrics``) —
        watermark lag, loop busy/idle split, load skew — when present.
        """
        lines = [
            f"DataflowQuery run: backend={self.backend} "
            f"events={self.events_processed} "
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"({self.events_per_second:.0f} ev/s) "
            f"backpressure_blocks={self.backpressure_blocks}"
        ]
        for name, node in self.nodes.items():
            latency = node.latency_summary()
            lines.append(
                f"  {name} [{node.kind}]"
                f"{'  <- sink' if name == self.sink else ''}"
            )
            lines.append(
                "    revisions: emits={0.emits} retracts={0.retracts} "
                "refines={0.refines} settled={0.groups_settled} "
                "early={0.groups_published_early}".format(node.stats)
            )
            lines.append(
                f"    output: {len(node.relation)} tuples, "
                f"retraction_rate={node.retraction_rate:.3f}, "
                f"p50 latency {latency['p50_ms']:.2f}ms"
            )
        if self.recovery_events:
            lines.append("recoveries:")
            lines.extend("  " + event.describe() for event in self.recovery_events)
        aggregated = self.metrics()
        if aggregated is not None:
            lines.append("worker metrics:")
            lines.extend(
                "  " + line for line in aggregated.render_report().splitlines()
            )
        return "\n".join(lines)


class DataflowQuery:
    """A continuous operator graph registered against catalogued streams.

    Args:
        catalog: any object with ``lookup_stream`` (the engine catalog).
        nodes: node specs in topological order (see :class:`NodeSpec`).
        config: execution knobs; ``config.transport`` picks the default
            backend (``"threads"`` maps to the node-per-thread pipeline).
    """

    def __init__(
        self,
        catalog,
        nodes: Sequence[NodeSpec],
        config: ExecutionOptions | None = None,
    ) -> None:
        self._catalog = catalog
        self._graph = DataflowGraph(catalog, nodes)
        self._config = config or ExecutionOptions()
        self._consumer_lock = threading.Lock()
        self._live_consumer = False
        self._collector = None
        if self._config.metrics:
            from ..obs.collector import MetricsCollector

            self._collector = MetricsCollector()
        self._trace_collector = None
        if self._config.trace:
            from ..obs.trace import TraceCollector

            self._trace_collector = TraceCollector()

    @property
    def graph(self) -> DataflowGraph:
        return self._graph

    @property
    def config(self) -> ExecutionOptions:
        return self._config

    def metrics(self):
        """Aggregated worker metrics: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.MetricsAggregator`, or ``None`` when
        the config has ``metrics=False`` or nothing has been collected yet.
        """
        if self._collector is None:
            return None
        return self._collector.aggregate()

    def trace(self):
        """Aggregated span timelines: live during :meth:`run`, final after.

        Returns a :class:`repro.obs.TraceAggregator`, or ``None`` when the
        config has ``trace=False`` or no span has been recorded yet.
        """
        if self._trace_collector is None:
            return None
        return self._trace_collector.aggregate()

    def describe(self) -> str:
        mode = "early-emit" if self._config.early_emit else "watermark-only"
        parts = "/".join(str(count) for count in self._graph.partition_counts)
        return (
            f"DataflowQuery[{len(self._graph.nodes)} nodes, sink={self._graph.sink}, "
            f"parts={parts}, {mode}, workers={self._config.workers}]"
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self, merge_seed: Optional[int] = None, backend: Optional[str] = None
    ) -> DataflowResult:
        """Execute the graph over fresh source replays until settlement."""
        chosen = backend or self._config.transport
        if chosen not in GRAPH_BACKENDS:
            raise ValueError(f"backend must be one of {GRAPH_BACKENDS}, got {chosen!r}")
        started = time.perf_counter()
        try:
            outcome = run_graph(
                self._graph,
                self._config,
                merge_seed,
                transport=chosen,
                collector=self._collector,
                trace_collector=self._trace_collector,
            )
        except WorkerStartError as error:
            # Workers unavailable (sandbox without fork, unreachable host):
            # degrade to the thread transport — safe, no source element was
            # consumed yet.  The result's ``backend`` records what ran.
            warnings.warn(
                f"{chosen!r} workers could not start "
                f"({error}); falling back to the thread transport",
                RuntimeWarning,
                stacklevel=2,
            )
            outcome = run_graph(
                self._graph,
                self._config,
                merge_seed,
                transport="threads",
                collector=self._collector,
                trace_collector=self._trace_collector,
            )
        elapsed = time.perf_counter() - started
        return self._build_result(outcome, elapsed)

    def iter_revisions(
        self, merge_seed: Optional[int] = None, backend: Optional[str] = None
    ) -> Iterator[RevisionElement]:
        """Live, single-consumer iteration over the sink's revision stream.

        Runs the graph on an in-process transport in a background thread and
        yields the sink node's output elements —
        :class:`~repro.dataflow.Revision` and
        :class:`~repro.stream.elements.Watermark` — as they are produced.
        Per-partition sink watermarks are min-merged before they are
        yielded, so the watermark sequence carries the stage's true output
        frontier.  Abandoning the iterator (``close()`` or garbage
        collection) cancels the run cooperatively: routing stops and the
        graph settles over what was already ingested.

        The stream is **single-consumer**: elements are taken, not copied.
        A second call while an iteration is live raises
        :class:`MultipleConsumerError` — fan-out to many subscribers is the
        serving layer's job (:class:`repro.serve.StandingQueryService`).
        """
        chosen = backend or self._config.transport
        if backend is not None and backend not in IN_PROCESS_BACKENDS:
            raise ValueError(
                f"iter_revisions taps the sink in-process; backend must be "
                f"one of {IN_PROCESS_BACKENDS}, got {backend!r}"
            )
        if chosen not in IN_PROCESS_BACKENDS:
            chosen = "threads"
        with self._consumer_lock:
            if self._live_consumer:
                raise MultipleConsumerError(
                    f"{self.describe()} already has a live revision consumer; "
                    "a dataflow revision stream is single-consumer (a second "
                    "iterator would silently steal elements from the first). "
                    "Register the query as a standing query with "
                    "repro.serve.StandingQueryService to fan one execution "
                    "out to many subscribers."
                )
            self._live_consumer = True

        sink = self._graph.sink
        sink_index = self._graph.node_names.index(sink)
        partitions = self._graph.partitions_of(sink)
        channel: Channel = Channel(self._config.buffer_capacity, producers=1)
        cancel = threading.Event()
        failures: List[BaseException] = []

        def tap(channel_id, element) -> None:
            try:
                channel.put((channel_id, element))
            except ChannelClosed:
                # The consumer abandoned the iterator; stop the run instead
                # of failing the worker.
                cancel.set()

        def drive() -> None:
            try:
                run_graph(
                    self._graph,
                    self._config,
                    merge_seed,
                    transport=chosen,
                    taps={sink: tap},
                    cancel=cancel,
                    collector=self._collector,
                    trace_collector=self._trace_collector,
                )
            except BaseException as error:  # noqa: BLE001 - re-raised to consumer
                failures.append(error)
            finally:
                channel.producer_done()

        thread = threading.Thread(
            target=drive, name=f"dataflow-revisions-{sink}", daemon=True
        )

        def iterate() -> Iterator[RevisionElement]:
            tracker = ChannelWatermarks(
                [("node", sink_index, partition) for partition in range(partitions)]
            )
            thread.start()
            try:
                while True:
                    batch = channel.take_batch(self._config.micro_batch_size)
                    if batch is None:
                        break
                    for channel_id, element in batch:
                        if isinstance(element, Watermark):
                            merged = tracker.update(channel_id, element.value)
                            if merged is not None:
                                yield Watermark(merged)
                        else:
                            yield element
                if failures:
                    raise failures[0]
            finally:
                cancel.set()
                channel.close()
                thread.join()
                with self._consumer_lock:
                    self._live_consumer = False

        return iterate()

    def _build_result(self, outcome: GraphRunOutcome, elapsed: float) -> DataflowResult:
        events = self._graph.merged_events()
        nodes: Dict[str, NodeResult] = {}
        for spec in self._graph.nodes:
            tuples = sorted(outcome.settled[spec.name], key=TPTuple.key)
            relation = TPRelation(
                self._graph.schema_of(spec.name),
                tuples,
                events,
                name=spec.name,
                check_constraint=False,
            )
            nodes[spec.name] = NodeResult(
                name=spec.name,
                kind=spec.kind,
                relation=relation,
                stats=outcome.stats[spec.name],
                emit_latencies=outcome.emit_latencies[spec.name],
                emit_event_lags=outcome.emit_event_lags[spec.name],
            )
        return DataflowResult(
            nodes=nodes,
            sink=self._graph.sink,
            events_processed=outcome.events_processed,
            elapsed_seconds=elapsed,
            backend=outcome.backend,
            backpressure_blocks=outcome.backpressure_blocks,
            metrics_snapshots=outcome.metrics,
            trace_spans=outcome.trace_spans,
        )
