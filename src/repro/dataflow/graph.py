"""Dataflow graph topology: chained continuous TP operators.

A :class:`DataflowGraph` is a DAG of join nodes over registered streams.
Each :class:`NodeSpec` names its two inputs — either a catalogued stream or
an earlier node — so arbitrary join *trees* compose: the output revision
stream of one lineage-aware operator feeds the next, with derived watermarks
propagating progress along every edge.

The graph is a pure description plus static validation and schema/θ
inference; execution lives in :mod:`repro.dataflow.executor` and the
process backend in :mod:`repro.parallel.stream_exec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..lineage import EventSpace
from ..relation import Schema
from ..stream.elements import LEFT, RIGHT
from ..stream.operators import CONTINUOUS_OPERATORS, continuous_output_schema


class GraphError(ValueError):
    """Raised when a dataflow graph description is invalid."""


@dataclass(frozen=True)
class NodeSpec:
    """One join node of a dataflow graph.

    Attributes:
        name: unique node name (also the right-prefix of its output schema
            when a downstream join clashes attribute names).
        kind: join kind — any key of
            :data:`repro.stream.operators.CONTINUOUS_OPERATORS`.
        left / right: input names; each is a registered stream or an
            earlier node of the same graph.
        on: ``(left_attribute, right_attribute)`` equality pairs (θ).
        partitions: intra-stage parallelism degree — the executor fans the
            node out into this many key-partitioned workers.  More than one
            partition requires a non-empty equi-θ: revision elements are
            routed by the stable hash of their join key, so key-disjoint
            partitions never interact (the same shared-nothing property the
            batch shard planner relies on).
    """

    name: str
    kind: str
    left: str
    right: str
    on: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    partitions: int = 1

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self.on) or "true"
        parts = f" [parts={self.partitions}]" if self.partitions > 1 else ""
        return (
            f"{self.name}: {self.kind}({self.left}, {self.right}) on {condition}{parts}"
        )


#: An edge of the compiled graph: (consumer node name, input side).
Edge = Tuple[str, str]


class DataflowGraph:
    """A validated DAG of continuous join nodes over catalogued streams.

    Args:
        catalog: any object with ``lookup_stream(name)`` (the engine catalog).
        nodes: node specs in topological order (inputs must precede uses).
    """

    def __init__(self, catalog, nodes: Sequence[NodeSpec]) -> None:
        if not nodes:
            raise GraphError("a dataflow graph needs at least one node")
        self._catalog = catalog
        self._nodes: Tuple[NodeSpec, ...] = tuple(nodes)
        self._schemas: Dict[str, Schema] = {}
        self._sources: List[str] = []
        self._consumers: Dict[str, List[Edge]] = {}
        seen: Dict[str, NodeSpec] = {}
        for spec in self._nodes:
            if spec.kind not in CONTINUOUS_OPERATORS:
                raise GraphError(
                    f"node {spec.name!r}: unknown join kind {spec.kind!r} "
                    f"(supported: {sorted(CONTINUOUS_OPERATORS)})"
                )
            if spec.name in seen or spec.name in self._schemas:
                raise GraphError(f"duplicate node name {spec.name!r}")
            if spec.partitions < 1:
                raise GraphError(
                    f"node {spec.name!r}: partitions must be at least 1, "
                    f"got {spec.partitions}"
                )
            if spec.partitions > 1 and not spec.on:
                raise GraphError(
                    f"node {spec.name!r}: partitions={spec.partitions} needs an "
                    "equi-join condition to route by (a θ-free node cannot be "
                    "key-partitioned)"
                )
            if hasattr(catalog, "is_stream") and catalog.is_stream(spec.name):
                raise GraphError(
                    f"node {spec.name!r} clashes with a registered stream name"
                )
            for side, input_name in ((LEFT, spec.left), (RIGHT, spec.right)):
                self._resolve_input(input_name, spec)
                self._consumers.setdefault(input_name, []).append((spec.name, side))
            left_schema = self._schemas[spec.left]
            right_schema = self._schemas[spec.right]
            self._schemas[spec.name] = continuous_output_schema(
                spec.kind, left_schema, right_schema, spec.right
            )
            seen[spec.name] = spec
        produced = set(seen)
        self._sinks = [
            spec.name
            for spec in self._nodes
            if not any(consumer in produced for consumer, _ in self._consumers.get(spec.name, []))
        ]

    def _resolve_input(self, input_name: str, spec: NodeSpec) -> None:
        if input_name in self._schemas:
            return  # earlier node or already-resolved stream
        try:
            stream = self._catalog.lookup_stream(input_name)
        except Exception as error:
            raise GraphError(
                f"node {spec.name!r}: input {input_name!r} is neither an "
                f"earlier node nor a registered stream"
            ) from error
        self._schemas[input_name] = stream.schema
        if input_name not in self._sources:
            self._sources.append(input_name)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def catalog(self):
        """The catalog the graph's streams are registered in."""
        return self._catalog

    @property
    def nodes(self) -> Tuple[NodeSpec, ...]:
        """Node specs in topological order."""
        return self._nodes

    @property
    def node_names(self) -> List[str]:
        return [spec.name for spec in self._nodes]

    @property
    def partition_counts(self) -> List[int]:
        """Per-node partition degree, in topological node order."""
        return [spec.partitions for spec in self._nodes]

    def partitions_of(self, name: str) -> int:
        """Partition degree of one node (sources are always 1)."""
        for spec in self._nodes:
            if spec.name == name:
                return spec.partitions
        if name in self._schemas:
            return 1
        raise GraphError(f"unknown graph input/node {name!r}")

    @property
    def source_names(self) -> List[str]:
        """Registered streams the graph reads, in first-use order."""
        return list(self._sources)

    @property
    def sink(self) -> str:
        """The graph's result node (the last node with no graph consumer)."""
        return self._sinks[-1]

    def schema_of(self, name: str) -> Schema:
        """Output schema of a node or source."""
        try:
            return self._schemas[name]
        except KeyError:
            raise GraphError(f"unknown graph input/node {name!r}") from None

    def consumers_of(self, name: str) -> List[Edge]:
        """The (node, side) edges fed by a source or node output."""
        return list(self._consumers.get(name, []))

    def merged_events(self) -> EventSpace:
        """The merged event space of every source stream."""
        events = None
        for name in self._sources:
            space = self._catalog.lookup_stream(name).events
            events = space if events is None else events.merge(space)
        return events if events is not None else EventSpace()

    def describe(self) -> str:
        lines = [f"DataflowGraph ({len(self._nodes)} nodes, sink={self.sink})"]
        lines.extend(f"  {spec.describe()}" for spec in self._nodes)
        return "\n".join(lines)
