"""Dataflow graph execution: inline and thread-pipelined backends.

Both backends drive the same :class:`~repro.dataflow.operators.RevisionJoin`
per node and differ only in scheduling:

* **inline** — a single thread merges every source edge and pushes elements
  through the graph depth-first: each output revision of a node is delivered
  to its consumers before the next input element is read.  The fast path for
  small streams and the engine's SQL entry point.
* **threads** — one worker thread per *node partition*, connected by the
  same :class:`~repro.stream.buffer.BoundedBuffer` seam the partitioned
  :class:`~repro.stream.StreamQuery` uses: a router thread merges the source
  edges and every edge hop goes through a bounded buffer, so a slow
  downstream operator backpressures its producers (and, transitively, the
  sources) instead of queueing without bound.

The graph parallelises along **two independent axes**:

* *pipeline* — chained operators run concurrently (one worker set per node);
* *partition* — a node with ``NodeSpec.partitions = K`` fans out into K
  key-partitioned workers.  Revision elements are routed by the stable hash
  of the node's equi-join key (:func:`repro.parallel.plan.stable_hash`, so
  routing is reproducible across runs and interpreters), watermarks are
  broadcast to every partition of the stage, and the stage's *output*
  watermark is the min over its partitions' derived watermarks.

The min-over-partitions rule is enforced without cross-partition shared
state: every consumer input side tracks the last watermark per *channel*
(one channel per upstream partition or source edge) in a
:class:`ChannelWatermarks` and feeds its join the merged minimum.  Channels
are FIFO, so by the time a channel's watermark is applied, every revision
that watermark covers has already been processed — the standard per-channel
frontier argument.

The process backend (worker-per-node-partition over multiprocessing queues)
lives in :mod:`repro.parallel.stream_exec` next to the existing shard
runtime, and degrades to the thread backend when processes cannot start.

Termination needs no out-of-band protocol: every source replay ends with a
``CLOSED`` watermark, each partition's derived watermark therefore reaches
``CLOSED`` once all its groups settle, and the cascade closes the whole
graph.  The executors still call ``close()`` defensively so a malformed
source cannot leave windows open.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..parallel.batch import canonical_order
from ..parallel.plan import stable_hash
from ..relation import TPTuple
from ..stream.buffer import BoundedBuffer, BufferClosed
from ..stream.elements import LEFT, RIGHT, StreamElement, StreamEvent, Tagged, Watermark
from .graph import DataflowGraph
from .operators import RevisionJoin, RevisionJoinStats
from .revision import Revision


@dataclass
class GraphRunOutcome:
    """Per-node results of one graph execution, backend-independent.

    Partitioned stages are already merged: ``settled`` holds each node's
    partition outputs in the canonical deterministic order (the order-stable
    merge contract shared with :func:`repro.parallel.batch.canonical_order`),
    ``stats`` the summed partition counters.
    """

    settled: Dict[str, List[TPTuple]]
    stats: Dict[str, RevisionJoinStats]
    emit_latencies: Dict[str, List[float]]
    emit_event_lags: Dict[str, List[float]]
    events_processed: int = 0
    backpressure_blocks: int = 0
    backend: str = "inline"


class ChannelWatermarks:
    """Min-merge of the per-channel watermarks feeding one input side.

    A partitioned upstream stage reaches a consumer through one FIFO channel
    per partition; a source edge is a single channel.  The side's effective
    watermark — the stage *output* watermark, for a partitioned producer —
    is the minimum over all channels, so it only advances once **every**
    partition has advanced: exactly the ``min over partitions`` rule the
    derived-watermark contract requires.  Channels start at ``-inf``, so the
    merged value stays silent until every channel has reported.
    """

    __slots__ = ("_values", "_merged")

    def __init__(self, channels: Sequence[Hashable]) -> None:
        self._values: Dict[Hashable, float] = {
            channel: float("-inf") for channel in channels
        }
        self._merged = float("-inf")

    @property
    def merged(self) -> float:
        """The current min-over-channels watermark."""
        return self._merged

    def update(self, channel: Hashable, value: float) -> Optional[float]:
        """Record one channel's watermark; returns the new merged minimum
        when it advanced, ``None`` otherwise (per-channel regressions are
        ignored — watermarks are monotone promises)."""
        if value > self._values[channel]:
            self._values[channel] = value
            merged = min(self._values.values())
            if merged > self._merged:
                self._merged = merged
                return merged
        return None


def stage_watermark(partition_joins: Sequence[RevisionJoin]) -> float:
    """A stage's output watermark: the min over its partitions' derived ones."""
    return min(join.derived_watermark() for join in partition_joins)


def route_partition(join: RevisionJoin, side: str, element, partitions: int) -> int:
    """The partition a revision/event element routes to on one node input.

    Uses the node θ's join key for the element's side and the stable
    (PYTHONHASHSEED-independent) hash shared with the batch shard planner,
    so all of an input key's elements — emits and the retractions that must
    unwind them — land in the same partition, in channel order.
    """
    if partitions <= 1:
        return 0
    if isinstance(element, StreamEvent):
        tp_tuple = element.tuple
    elif isinstance(element, Revision):
        tp_tuple = element.tuple
    else:
        raise TypeError(f"cannot key-route element {element!r}")
    theta = join.theta
    key = theta.left_key(tp_tuple) if side == LEFT else theta.right_key(tp_tuple)
    return stable_hash(key) % partitions


def build_joins(graph: DataflowGraph, config) -> List[List[RevisionJoin]]:
    """One :class:`RevisionJoin` per (node, partition), in topo order."""
    materialize = getattr(config, "materialize_probabilities", False)
    events = graph.merged_events() if materialize else None
    joins: List[List[RevisionJoin]] = []
    for spec in graph.nodes:
        joins.append(
            [
                RevisionJoin(
                    spec.kind,
                    graph.schema_of(spec.left),
                    graph.schema_of(spec.right),
                    spec.on,
                    left_name=spec.left,
                    right_name=spec.right,
                    early_emit=getattr(config, "early_emit", False),
                    events=events,
                    materialize_probabilities=materialize,
                )
                for _partition in range(spec.partitions)
            ]
        )
    return joins


def _outcome_from_joins(
    graph: DataflowGraph,
    joins: Sequence[Sequence[RevisionJoin]],
    events_processed: int,
    blocks: int,
    backend: str,
) -> GraphRunOutcome:
    settled: Dict[str, List[TPTuple]] = {}
    stats: Dict[str, RevisionJoinStats] = {}
    latencies: Dict[str, List[float]] = {}
    lags: Dict[str, List[float]] = {}
    for spec, partition_joins in zip(graph.nodes, joins):
        # Key-disjoint partitions produce disjoint outputs; the canonical
        # order makes the merged sequence identical for any partition count.
        merged: List[TPTuple] = []
        for join in partition_joins:
            merged.extend(join.settled_outputs.values())
        settled[spec.name] = canonical_order(merged)
        stats[spec.name] = RevisionJoinStats.merged(
            [join.stats for join in partition_joins]
        )
        latencies[spec.name] = [
            sample for join in partition_joins for sample in join.emit_latencies
        ]
        lags[spec.name] = [
            sample for join in partition_joins for sample in join.emit_event_lags
        ]
    return GraphRunOutcome(
        settled=settled,
        stats=stats,
        emit_latencies=latencies,
        emit_event_lags=lags,
        events_processed=events_processed,
        backpressure_blocks=blocks,
        backend=backend,
    )


def source_edges(
    graph: DataflowGraph, node_index: Dict[str, int]
) -> List[Tuple[int, str, Iterator[StreamElement]]]:
    """One fresh replay per (source → node input) edge of the graph."""
    edges: List[Tuple[int, str, Iterator[StreamElement]]] = []
    for source in graph.source_names:
        stream_def = graph.catalog.lookup_stream(source)
        for consumer, side in graph.consumers_of(source):
            edges.append((node_index[consumer], side, iter(stream_def.replay())))
    return edges


def merge_edges(
    edges: List[Tuple[int, str, Iterator[StreamElement]]],
    seed: Optional[int] = None,
) -> Iterator[Tuple[int, int, str, StreamElement]]:
    """Interleave the source edges into one delivery sequence.

    Yields ``(edge index, target node, side, element)`` — the edge index is
    the element's watermark channel.  Round-robin by default; with a seed,
    each step picks a random non-exhausted edge (each edge's internal order
    is preserved, which is all the watermark semantics require).
    """
    rng = random.Random(seed) if seed is not None else None
    open_edges = list(range(len(edges)))
    turn = 0
    while open_edges:
        if rng is None:
            slot = open_edges[turn % len(open_edges)]
            turn += 1
        else:
            slot = rng.choice(open_edges)
        target, side, iterator = edges[slot]
        try:
            element = next(iterator)
        except StopIteration:
            open_edges.remove(slot)
            continue
        yield slot, target, side, element


def downstream_table(graph: DataflowGraph, node_index: Dict[str, int]) -> List[List[Tuple[int, str]]]:
    """Per node: the (consumer index, side) edges its output feeds."""
    table: List[List[Tuple[int, str]]] = []
    for spec in graph.nodes:
        table.append(
            [
                (node_index[consumer], side)
                for consumer, side in graph.consumers_of(spec.name)
                if consumer in node_index
            ]
        )
    return table


def channel_topology(
    graph: DataflowGraph, node_index: Dict[str, int]
) -> List[Dict[str, List[Hashable]]]:
    """Per node: the watermark channels feeding each input side.

    A source edge contributes one ``("src", edge_index)`` channel (indices
    match :func:`source_edges` order); an upstream node contributes one
    ``("node", index, partition)`` channel per partition.  Every partition
    of the consumer tracks the same channel set — watermarks are broadcast.
    """
    channels: List[Dict[str, List[Hashable]]] = [
        {LEFT: [], RIGHT: []} for _ in graph.nodes
    ]
    edge_index = 0
    for source in graph.source_names:
        for consumer, side in graph.consumers_of(source):
            channels[node_index[consumer]][side].append(("src", edge_index))
            edge_index += 1
    for index, spec in enumerate(graph.nodes):
        for consumer, side in graph.consumers_of(spec.name):
            if consumer in node_index:
                for partition in range(spec.partitions):
                    channels[node_index[consumer]][side].append(
                        ("node", index, partition)
                    )
    return channels


def _make_trackers(
    channels: Dict[str, List[Hashable]],
) -> Dict[str, ChannelWatermarks]:
    return {
        LEFT: ChannelWatermarks(channels[LEFT]),
        RIGHT: ChannelWatermarks(channels[RIGHT]),
    }


# --------------------------------------------------------------------------- #
# inline backend
# --------------------------------------------------------------------------- #
def run_graph_inline(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Single-threaded depth-first execution of the whole graph.

    Partitioned nodes run their K joins in the caller's thread — no
    parallel speedup, but identical routing, watermark merging and settled
    output as the parallel backends, which is what the determinism tests
    exploit.
    """
    joins = build_joins(graph, config)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    downstream = downstream_table(graph, node_index)
    parts = graph.partition_counts
    channels = channel_topology(graph, node_index)
    trackers = [
        [_make_trackers(channels[index]) for _partition in range(parts[index])]
        for index in range(len(joins))
    ]

    def deliver(index: int, partition: int, channel: Hashable, tagged: Tagged) -> None:
        element = tagged.element
        if isinstance(element, Watermark):
            merged = trackers[index][partition][tagged.side].update(
                channel, element.value
            )
            if merged is None:
                return
            tagged = Tagged(tagged.side, Watermark(merged), tagged.ingest_clock)
        forward(index, partition, joins[index][partition].process(tagged))

    def forward(index: int, partition: int, elements) -> None:
        for element in elements:
            for consumer, side in downstream[index]:
                if isinstance(element, Watermark):
                    for target_partition in range(parts[consumer]):
                        deliver(
                            consumer,
                            target_partition,
                            ("node", index, partition),
                            Tagged(side, element),
                        )
                else:
                    target_partition = route_partition(
                        joins[consumer][0], side, element, parts[consumer]
                    )
                    deliver(consumer, target_partition, None, Tagged(side, element))

    events_processed = 0
    for edge, target, side, element in merge_edges(
        source_edges(graph, node_index), merge_seed
    ):
        if isinstance(element, Watermark):
            for partition in range(parts[target]):
                deliver(target, partition, ("src", edge), Tagged(side, element))
        else:
            events_processed += 1
            partition = route_partition(joins[target][0], side, element, parts[target])
            deliver(target, partition, None, Tagged(side, element))
    # Sources close with CLOSED watermarks, so this is normally a no-op.
    for index in range(len(joins)):
        for partition in range(parts[index]):
            forward(index, partition, joins[index][partition].close())
    return _outcome_from_joins(graph, joins, events_processed, 0, "inline")


# --------------------------------------------------------------------------- #
# thread-pipeline backend
# --------------------------------------------------------------------------- #
class _Inbox:
    """A worker's input buffer with multi-producer close bookkeeping."""

    def __init__(self, capacity: int, producers: int) -> None:
        self.buffer: BoundedBuffer[Tuple[Hashable, Tagged]] = BoundedBuffer(capacity)
        self._producers = producers
        self._lock = threading.Lock()

    def producer_done(self) -> None:
        with self._lock:
            self._producers -= 1
            if self._producers <= 0:
                self.buffer.close()


def run_graph_threads(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Pipelined execution with one worker thread per node partition.

    Pipeline parallelism (across chained nodes) and partition parallelism
    (K key-routed workers inside one node) compose: a graph of N nodes with
    partition degrees K₁..K_N runs ΣKᵢ workers, all connected by the same
    bounded-buffer backpressure seam.
    """
    joins = build_joins(graph, config)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    downstream = downstream_table(graph, node_index)
    parts = graph.partition_counts
    channels = channel_topology(graph, node_index)
    capacity = getattr(config, "buffer_capacity", 1024)
    micro_batch = getattr(config, "micro_batch_size", 64)
    edges = source_edges(graph, node_index)
    # Producers per partition inbox: each source edge feeding the node (the
    # router broadcasts its watermarks to every partition) plus every
    # partition worker of every upstream node.
    producer_counts = [0] * len(joins)
    for target, _side, _iterator in edges:
        producer_counts[target] += 1
    for index, consumers in enumerate(downstream):
        for consumer, _side in consumers:
            producer_counts[consumer] += parts[index]
    inboxes = [
        [_Inbox(capacity, producer_counts[index]) for _partition in range(parts[index])]
        for index in range(len(joins))
    ]
    failures: List[BaseException] = []

    def fan_out(index: int, partition: int, elements) -> None:
        for element in elements:
            for consumer, side in downstream[index]:
                if isinstance(element, Watermark):
                    channel = ("node", index, partition)
                    for target_partition in range(parts[consumer]):
                        inboxes[consumer][target_partition].buffer.put(
                            (channel, Tagged(side, element))
                        )
                else:
                    target_partition = route_partition(
                        joins[consumer][0], side, element, parts[consumer]
                    )
                    inboxes[consumer][target_partition].buffer.put(
                        (None, Tagged(side, element))
                    )

    def work(index: int, partition: int) -> None:
        join = joins[index][partition]
        tracker = _make_trackers(channels[index])
        inbox = inboxes[index][partition]
        try:
            while True:
                batch = inbox.buffer.take_batch(micro_batch)
                if batch is None:
                    break
                for channel, tagged in batch:
                    element = tagged.element
                    if isinstance(element, Watermark):
                        merged = tracker[tagged.side].update(channel, element.value)
                        if merged is None:
                            continue
                        tagged = Tagged(
                            tagged.side, Watermark(merged), tagged.ingest_clock
                        )
                    fan_out(index, partition, join.process(tagged))
            fan_out(index, partition, join.close())
        except BufferClosed:
            # A consumer died; the failure that closed its buffer is reported.
            pass
        except BaseException as error:  # noqa: BLE001 - reported to caller
            failures.append(error)
            inbox.buffer.close()
        finally:
            for consumer, _side in downstream[index]:
                for target_partition in range(parts[consumer]):
                    inboxes[consumer][target_partition].producer_done()

    workers = [
        threading.Thread(
            target=work,
            args=(index, partition),
            name=f"dataflow-node-{index}-p{partition}",
        )
        for index in range(len(joins))
        for partition in range(parts[index])
    ]
    for worker in workers:
        worker.start()

    events_processed = 0
    try:
        for edge, target, side, element in merge_edges(edges, merge_seed):
            if isinstance(element, Watermark):
                for partition in range(parts[target]):
                    inboxes[target][partition].buffer.put(
                        (("src", edge), Tagged(side, element))
                    )
            else:
                events_processed += 1
                # Stamp ingestion before the element can sit in a buffer, so
                # emit latency includes cross-stage queueing time.
                ingest_clock = time.perf_counter()
                partition = route_partition(
                    joins[target][0], side, element, parts[target]
                )
                inboxes[target][partition].buffer.put(
                    (None, Tagged(side, element, ingest_clock))
                )
    except BufferClosed:
        pass
    finally:
        for target, _side, _iterator in edges:
            for partition in range(parts[target]):
                inboxes[target][partition].producer_done()
        for worker in workers:
            worker.join()
    if failures:
        raise failures[0]
    blocks = sum(
        inbox.buffer.put_blocks for node_inboxes in inboxes for inbox in node_inboxes
    )
    return _outcome_from_joins(graph, joins, events_processed, blocks, "threads")
