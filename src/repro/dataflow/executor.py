"""Dataflow graph execution: inline and thread-pipelined backends.

Both backends drive the same :class:`~repro.dataflow.operators.RevisionJoin`
per node and differ only in scheduling:

* **inline** — a single thread merges every source edge and pushes elements
  through the graph depth-first: each output revision of a node is delivered
  to its consumers before the next input element is read.  The fast path for
  small streams and the engine's SQL entry point.
* **threads** — one worker thread per node, connected by the same
  :class:`~repro.stream.buffer.BoundedBuffer` seam the partitioned
  :class:`~repro.stream.StreamQuery` uses: a router thread merges the source
  edges and every edge hop goes through a bounded buffer, so a slow
  downstream operator backpressures its producers (and, transitively, the
  sources) instead of queueing without bound.  This is *pipeline*
  parallelism across chained operators — complementary to the per-operator
  key partitioning of :class:`StreamQuery`.

The process backend (node-per-process over multiprocessing queues) lives in
:mod:`repro.parallel.stream_exec` next to the existing shard runtime, and
degrades to the thread backend when processes cannot start.

Termination needs no out-of-band protocol: every source replay ends with a
``CLOSED`` watermark, each node's derived watermark therefore reaches
``CLOSED`` once all its groups settle, and the cascade closes the whole
graph.  The executors still call ``close()`` defensively so a malformed
source cannot leave windows open.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..relation import TPTuple
from ..stream.buffer import BoundedBuffer, BufferClosed
from ..stream.elements import StreamElement, StreamEvent, Tagged
from .graph import DataflowGraph
from .operators import RevisionJoin, RevisionJoinStats


@dataclass
class GraphRunOutcome:
    """Per-node results of one graph execution, backend-independent."""

    settled: Dict[str, List[TPTuple]]
    stats: Dict[str, RevisionJoinStats]
    emit_latencies: Dict[str, List[float]]
    emit_event_lags: Dict[str, List[float]]
    events_processed: int = 0
    backpressure_blocks: int = 0
    backend: str = "inline"


def build_joins(graph: DataflowGraph, config) -> List[RevisionJoin]:
    """Instantiate one :class:`RevisionJoin` per graph node, in topo order."""
    materialize = getattr(config, "materialize_probabilities", False)
    events = graph.merged_events() if materialize else None
    joins = []
    for spec in graph.nodes:
        joins.append(
            RevisionJoin(
                spec.kind,
                graph.schema_of(spec.left),
                graph.schema_of(spec.right),
                spec.on,
                left_name=spec.left,
                right_name=spec.right,
                early_emit=getattr(config, "early_emit", False),
                events=events,
                materialize_probabilities=materialize,
            )
        )
    return joins


def _outcome_from_joins(
    graph: DataflowGraph,
    joins: Sequence[RevisionJoin],
    events_processed: int,
    blocks: int,
    backend: str,
) -> GraphRunOutcome:
    settled: Dict[str, List[TPTuple]] = {}
    stats: Dict[str, RevisionJoinStats] = {}
    latencies: Dict[str, List[float]] = {}
    lags: Dict[str, List[float]] = {}
    for spec, join in zip(graph.nodes, joins):
        settled[spec.name] = list(join.settled_outputs.values())
        stats[spec.name] = join.stats
        latencies[spec.name] = list(join.emit_latencies)
        lags[spec.name] = list(join.emit_event_lags)
    return GraphRunOutcome(
        settled=settled,
        stats=stats,
        emit_latencies=latencies,
        emit_event_lags=lags,
        events_processed=events_processed,
        backpressure_blocks=blocks,
        backend=backend,
    )


def source_edges(
    graph: DataflowGraph, node_index: Dict[str, int]
) -> List[Tuple[int, str, Iterator[StreamElement]]]:
    """One fresh replay per (source → node input) edge of the graph."""
    edges: List[Tuple[int, str, Iterator[StreamElement]]] = []
    for source in graph.source_names:
        stream_def = graph.catalog.lookup_stream(source)
        for consumer, side in graph.consumers_of(source):
            edges.append((node_index[consumer], side, iter(stream_def.replay())))
    return edges


def merge_edges(
    edges: List[Tuple[int, str, Iterator[StreamElement]]],
    seed: Optional[int] = None,
) -> Iterator[Tuple[int, str, StreamElement]]:
    """Interleave the source edges into one delivery sequence.

    Round-robin by default; with a seed, each step picks a random
    non-exhausted edge (each edge's internal order is preserved, which is
    all the watermark semantics require).
    """
    rng = random.Random(seed) if seed is not None else None
    open_edges = list(range(len(edges)))
    turn = 0
    while open_edges:
        if rng is None:
            slot = open_edges[turn % len(open_edges)]
            turn += 1
        else:
            slot = rng.choice(open_edges)
        target, side, iterator = edges[slot]
        try:
            element = next(iterator)
        except StopIteration:
            open_edges.remove(slot)
            continue
        yield target, side, element


def downstream_table(graph: DataflowGraph, node_index: Dict[str, int]) -> List[List[Tuple[int, str]]]:
    """Per node: the (consumer index, side) edges its output feeds."""
    table: List[List[Tuple[int, str]]] = []
    for spec in graph.nodes:
        table.append(
            [
                (node_index[consumer], side)
                for consumer, side in graph.consumers_of(spec.name)
                if consumer in node_index
            ]
        )
    return table


# --------------------------------------------------------------------------- #
# inline backend
# --------------------------------------------------------------------------- #
def run_graph_inline(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Single-threaded depth-first execution of the whole graph."""
    joins = build_joins(graph, config)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    downstream = downstream_table(graph, node_index)

    def deliver(index: int, tagged: Tagged) -> None:
        for element in joins[index].process(tagged):
            for consumer, side in downstream[index]:
                deliver(consumer, Tagged(side, element))

    events_processed = 0
    for target, side, element in merge_edges(source_edges(graph, node_index), merge_seed):
        if isinstance(element, StreamEvent):
            events_processed += 1
        deliver(target, Tagged(side, element))
    # Sources close with CLOSED watermarks, so this is normally a no-op.
    for index in range(len(joins)):
        for element in joins[index].close():
            for consumer, side in downstream[index]:
                deliver(consumer, Tagged(side, element))
    return _outcome_from_joins(graph, joins, events_processed, 0, "inline")


# --------------------------------------------------------------------------- #
# thread-pipeline backend
# --------------------------------------------------------------------------- #
class _Inbox:
    """A node's input buffer with multi-producer close bookkeeping."""

    def __init__(self, capacity: int, producers: int) -> None:
        self.buffer: BoundedBuffer[Tagged] = BoundedBuffer(capacity)
        self._producers = producers
        self._lock = threading.Lock()

    def producer_done(self) -> None:
        with self._lock:
            self._producers -= 1
            if self._producers <= 0:
                self.buffer.close()


def run_graph_threads(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Node-per-thread pipelined execution with bounded-buffer backpressure."""
    joins = build_joins(graph, config)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    downstream = downstream_table(graph, node_index)
    capacity = getattr(config, "buffer_capacity", 1024)
    micro_batch = getattr(config, "micro_batch_size", 64)
    producer_counts = [0] * len(joins)
    edges = source_edges(graph, node_index)
    for target, _side, _iterator in edges:
        producer_counts[target] += 1
    for index, consumers in enumerate(downstream):
        for consumer, _side in consumers:
            producer_counts[consumer] += 1
    inboxes = [_Inbox(capacity, count) for count in producer_counts]
    failures: List[BaseException] = []

    def fan_out(index: int, elements) -> None:
        for element in elements:
            for consumer, side in downstream[index]:
                inboxes[consumer].buffer.put(Tagged(side, element))

    def work(index: int) -> None:
        join = joins[index]
        try:
            while True:
                batch = inboxes[index].buffer.take_batch(micro_batch)
                if batch is None:
                    break
                for tagged in batch:
                    fan_out(index, join.process(tagged))
            fan_out(index, join.close())
        except BufferClosed:
            # A consumer died; the failure that closed its buffer is reported.
            pass
        except BaseException as error:  # noqa: BLE001 - reported to caller
            failures.append(error)
            inboxes[index].buffer.close()
        finally:
            for consumer, _side in downstream[index]:
                inboxes[consumer].producer_done()

    workers = [
        threading.Thread(target=work, args=(index,), name=f"dataflow-node-{index}")
        for index in range(len(joins))
    ]
    for worker in workers:
        worker.start()

    events_processed = 0
    try:
        for target, side, element in merge_edges(edges, merge_seed):
            ingest_clock = None
            if isinstance(element, StreamEvent):
                events_processed += 1
                # Stamp ingestion before the element can sit in a buffer, so
                # emit latency includes cross-stage queueing time.
                ingest_clock = time.perf_counter()
            inboxes[target].buffer.put(Tagged(side, element, ingest_clock))
    except BufferClosed:
        pass
    finally:
        for target, _side, _iterator in edges:
            inboxes[target].producer_done()
        for worker in workers:
            worker.join()
    if failures:
        raise failures[0]
    blocks = sum(inbox.buffer.put_blocks for inbox in inboxes)
    return _outcome_from_joins(graph, joins, events_processed, blocks, "threads")
