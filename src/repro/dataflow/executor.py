"""Dataflow graph execution over the unified runtime layer.

One driver (:func:`run_graph`) compiles the graph into worker specs — one
per *(node, partition)* — hands them to a runtime transport
(:mod:`repro.runtime`), and routes the merged source edges into the live
session.  The transport decides where the workers live:

* **inline** — every worker in the caller's thread, elements flowing
  depth-first: each output revision of a node is delivered to its consumers
  before the next input element is read.  The fast path for small streams
  and the engine's SQL entry point.
* **threads** — one worker thread per node partition over bounded channel
  inboxes, so a slow downstream operator backpressures its producers (and,
  transitively, the sources) instead of queueing without bound.
* **processes** — one forked OS process per node partition over bounded
  queues, elements crossing in the compact revision codec.
* **sockets** — one TCP endpoint per node partition (driver-spawned local
  processes, or remote ``python -m repro.runtime.worker`` hosts named in a
  :class:`~repro.runtime.Placement`) — distributed execution.

The graph parallelises along **two independent axes**:

* *pipeline* — chained operators run concurrently (one worker set per node);
* *partition* — a node with ``NodeSpec.partitions = K`` fans out into K
  key-partitioned workers.  Revision elements are routed by the stable hash
  of the node's equi-join key (:func:`repro.parallel.plan.stable_hash`, so
  routing is reproducible across runs and interpreters), watermarks are
  broadcast to every partition of the stage, and the stage's *output*
  watermark is the min over its partitions' derived watermarks.

The min-over-partitions rule is enforced without cross-partition shared
state: every worker input side tracks the last watermark per *channel* (one
channel per upstream partition or source edge) in a
:class:`~repro.runtime.ChannelWatermarks` and feeds its join the merged
minimum.  Channels are FIFO, so by the time a channel's watermark is
applied, every revision that watermark covers has already been processed —
the standard per-channel frontier argument.

Termination needs no out-of-band protocol: every source replay ends with a
``CLOSED`` watermark, each partition's derived watermark therefore reaches
``CLOSED`` once all its groups settle, and the cascade closes the whole
graph.  The driver still sends one done sentinel per source edge (and each
worker one per downstream channel), so a malformed source cannot leave the
close protocol hanging.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..obs.metrics import DEFAULT_METRICS_INTERVAL
from ..parallel.batch import canonical_order
from ..parallel.plan import stable_hash
from ..relation import TPTuple
from ..runtime import ChannelClosed, ChannelWatermarks, RuntimeJob, get_transport
from ..stream.elements import LEFT, RIGHT, StreamElement, StreamEvent, Tagged
from .graph import DataflowGraph
from .operators import RevisionJoin, RevisionJoinStats
from .revision import Revision

__all__ = [
    "ChannelWatermarks",
    "GraphRunOutcome",
    "channel_topology",
    "downstream_table",
    "merge_edges",
    "route_partition",
    "run_graph",
    "run_graph_inline",
    "run_graph_threads",
    "source_edges",
    "stage_watermark",
]


@dataclass
class GraphRunOutcome:
    """Per-node results of one graph execution, backend-independent.

    Partitioned stages are already merged: ``settled`` holds each node's
    partition outputs in the canonical deterministic order (the order-stable
    merge contract shared with :func:`repro.parallel.batch.canonical_order`),
    ``stats`` the summed partition counters.
    """

    settled: Dict[str, List[TPTuple]]
    stats: Dict[str, RevisionJoinStats]
    emit_latencies: Dict[str, List[float]]
    emit_event_lags: Dict[str, List[float]]
    events_processed: int = 0
    backpressure_blocks: int = 0
    backend: str = "inline"
    #: Final per-worker metrics snapshots (empty unless the run was
    #: instrumented via ``config.metrics`` or an attached collector).
    metrics: List[dict] = field(default_factory=list)
    #: Every span the run recorded (empty unless the run was traced via
    #: ``config.trace`` or an attached trace collector).
    trace_spans: List[dict] = field(default_factory=list)


def stage_watermark(partition_joins: Sequence[RevisionJoin]) -> float:
    """A stage's output watermark: the min over its partitions' derived ones."""
    return min(join.derived_watermark() for join in partition_joins)


def route_partition(join: RevisionJoin, side: str, element, partitions: int) -> int:
    """The partition a revision/event element routes to on one node input.

    Uses the node θ's join key for the element's side and the stable
    (PYTHONHASHSEED-independent) hash shared with the batch shard planner,
    so all of an input key's elements — emits and the retractions that must
    unwind them — land in the same partition, in channel order.
    """
    if partitions <= 1:
        return 0
    if isinstance(element, StreamEvent):
        tp_tuple = element.tuple
    elif isinstance(element, Revision):
        tp_tuple = element.tuple
    else:
        raise TypeError(f"cannot key-route element {element!r}")
    theta = join.theta
    key = theta.left_key(tp_tuple) if side == LEFT else theta.right_key(tp_tuple)
    return stable_hash(key) % partitions


def source_edges(
    graph: DataflowGraph, node_index: Dict[str, int]
) -> List[Tuple[int, str, Iterator[StreamElement]]]:
    """One fresh replay per (source → node input) edge of the graph."""
    edges: List[Tuple[int, str, Iterator[StreamElement]]] = []
    for source in graph.source_names:
        stream_def = graph.catalog.lookup_stream(source)
        for consumer, side in graph.consumers_of(source):
            edges.append((node_index[consumer], side, iter(stream_def.replay())))
    return edges


def merge_edges(
    edges: List[Tuple[int, str, Iterator[StreamElement]]],
    seed: Optional[int] = None,
) -> Iterator[Tuple[int, int, str, StreamElement]]:
    """Interleave the source edges into one delivery sequence.

    Yields ``(edge index, target node, side, element)`` — the edge index is
    the element's watermark channel.  Round-robin by default; with a seed,
    each step picks a random non-exhausted edge (each edge's internal order
    is preserved, which is all the watermark semantics require).
    """
    rng = random.Random(seed) if seed is not None else None
    open_edges = list(range(len(edges)))
    turn = 0
    while open_edges:
        if rng is None:
            slot = open_edges[turn % len(open_edges)]
            turn += 1
        else:
            slot = rng.choice(open_edges)
        target, side, iterator = edges[slot]
        try:
            element = next(iterator)
        except StopIteration:
            open_edges.remove(slot)
            continue
        yield slot, target, side, element


def downstream_table(graph: DataflowGraph, node_index: Dict[str, int]) -> List[List[Tuple[int, str]]]:
    """Per node: the (consumer index, side) edges its output feeds."""
    table: List[List[Tuple[int, str]]] = []
    for spec in graph.nodes:
        table.append(
            [
                (node_index[consumer], side)
                for consumer, side in graph.consumers_of(spec.name)
                if consumer in node_index
            ]
        )
    return table


def channel_topology(
    graph: DataflowGraph, node_index: Dict[str, int]
) -> List[Dict[str, List[Hashable]]]:
    """Per node: the watermark channels feeding each input side.

    A source edge contributes one ``("src", edge_index)`` channel (indices
    match :func:`source_edges` order); an upstream node contributes one
    ``("node", index, partition)`` channel per partition.  Every partition
    of the consumer tracks the same channel set — watermarks are broadcast.
    """
    channels: List[Dict[str, List[Hashable]]] = [
        {LEFT: [], RIGHT: []} for _ in graph.nodes
    ]
    edge_index = 0
    for source in graph.source_names:
        for consumer, side in graph.consumers_of(source):
            channels[node_index[consumer]][side].append(("src", edge_index))
            edge_index += 1
    for index, spec in enumerate(graph.nodes):
        for consumer, side in graph.consumers_of(spec.name):
            if consumer in node_index:
                for partition in range(spec.partitions):
                    channels[node_index[consumer]][side].append(
                        ("node", index, partition)
                    )
    return channels


# --------------------------------------------------------------------------- #
# the one graph driver
# --------------------------------------------------------------------------- #
def run_graph(
    graph: DataflowGraph,
    config,
    merge_seed: Optional[int] = None,
    transport: str = "inline",
    taps: Optional[Dict[str, object]] = None,
    probes: Optional[Dict[str, object]] = None,
    cancel: Optional[object] = None,
    collector: Optional[object] = None,
    trace_collector: Optional[object] = None,
) -> GraphRunOutcome:
    """Execute a dataflow graph on one runtime transport.

    Compiles the graph into one worker spec per *(node, partition)*, starts
    a transport session, and routes the merged source edges in: events are
    key-routed to the owning partition of their target node, watermarks are
    broadcast to every partition with their source-edge channel id.  After
    the sources drain, one done sentinel per source edge closes the cascade
    and the workers' reports are merged into a backend-independent
    :class:`GraphRunOutcome` (canonical settled order, summed stats).

    ``taps`` / ``probes`` map node names to observation callables — the
    serving layer's seam: a tap sees every output element of the node's
    partitions live (``tap(channel_id, element)``), a probe sees each
    operator instance at worker start-up (``probe(channel_id, join)``).
    Callables cannot cross a process/socket boundary, so both require an
    in-process transport (``inline`` / ``threads``).

    ``collector`` is an optional :class:`repro.obs.MetricsCollector`; when
    given (or when ``config.metrics`` is true) the job runs instrumented:
    workers keep per-worker metrics registries and snapshots cross the
    transport boundary inside the existing frame protocol — live periodic
    frames plus a final one per worker report — so, unlike taps/probes,
    metrics work identically on all four transports.  The collector sees
    live snapshots mid-run (``collector.snapshots()``) and the final ones
    afterwards; they are also returned on the outcome.

    ``trace_collector`` is the tracing counterpart, a
    :class:`repro.obs.TraceCollector`; when given (or when ``config.trace``
    is true) the driver samples source elements at ``config.trace_sample_rate``,
    records root ``source`` spans, and attaches the trace context workers
    propagate hop by hop — span shipments ride the same frames as metrics
    snapshots, so tracing too works identically on all four transports.

    ``cancel`` is an optional :class:`threading.Event`-like object; once set,
    the driver stops routing further source elements and sends the done
    sentinels, so the graph settles early over what was already ingested —
    the cooperative stop used by standing-query lifecycle management.

    The process and socket transports raise
    :class:`~repro.runtime.WorkerStartError` strictly before any source
    element is consumed when their workers cannot start, so callers can
    fall back to the thread transport over the same untouched replays.
    """
    # Imported lazily: repro.parallel imports this module's graph helpers,
    # so a top-level import here would be circular during package init.
    from ..parallel.stream_exec import graph_node_specs
    from ..stream.operators import theta_from_pairs

    if (taps or probes) and transport not in ("inline", "threads"):
        raise ValueError(
            f"taps/probes are in-process callables and cannot cross the "
            f"{transport!r} transport's serialization boundary; use the "
            "'inline' or 'threads' transport for live element observation, "
            "or — for instrumentation that *does* cross every transport "
            "boundary, including remote socket workers — enable the metrics "
            "subsystem instead: set metrics=True on the query config (or "
            "pass a repro.obs.MetricsCollector as `collector`) and read "
            "DataflowQuery.metrics() / StreamQuery.metrics() live or the "
            "outcome's metrics snapshots after the run"
        )
    if taps:
        unknown = sorted(set(taps) - set(graph.node_names))
        if unknown:
            raise ValueError(f"taps name unknown graph nodes: {unknown}")
    if probes:
        unknown = sorted(set(probes) - set(graph.node_names))
        if unknown:
            raise ValueError(f"probes name unknown graph nodes: {unknown}")
    specs = graph_node_specs(graph, config, taps=taps, probes=probes)
    node_index = {name: index for index, name in enumerate(graph.node_names)}
    parts = graph.partition_counts
    first_worker: List[int] = []
    total = 0
    for count in parts:
        first_worker.append(total)
        total += count
    thetas = [
        theta_from_pairs(
            graph.schema_of(spec.left), graph.schema_of(spec.right), spec.on
        )
        for spec in graph.nodes
    ]
    metrics_on = collector is not None or bool(getattr(config, "metrics", False))
    trace_on = trace_collector is not None or bool(getattr(config, "trace", False))
    job = RuntimeJob(
        tuple(specs),
        micro_batch_size=getattr(config, "micro_batch_size", 64),
        buffer_capacity=getattr(config, "buffer_capacity", 1024),
        metrics=metrics_on,
        metrics_interval=getattr(config, "metrics_interval", DEFAULT_METRICS_INTERVAL),
        trace=trace_on,
    )
    sampler = None
    driver_tracer = None
    if trace_on:
        from ..obs.trace import (
            DEFAULT_TRACE_SAMPLE_RATE,
            Tracer,
            TraceSampler,
            span_detail,
        )

        sampler = TraceSampler(
            getattr(config, "trace_sample_rate", DEFAULT_TRACE_SAMPLE_RATE)
        )
        driver_tracer = Tracer("driver")
    session = get_transport(transport).start(job, getattr(config, "placement", None))
    if collector is not None:
        collector.attach(session)
    if trace_collector is not None:
        trace_collector.attach(session)
    edges = source_edges(graph, node_index)
    events_processed = 0
    with session:
        stamp = session.stamps_ingest
        try:
            for edge, target, side, element in merge_edges(edges, merge_seed):
                if cancel is not None and cancel.is_set():
                    break
                if isinstance(element, StreamEvent):
                    events_processed += 1
                    # Stamp ingestion before the element can sit in a
                    # channel, so emit latency includes queueing time.
                    clock = time.perf_counter() if stamp else None
                    context = None
                    if sampler is not None:
                        trace_id = sampler.sample()
                        if trace_id is not None:
                            now = time.perf_counter()
                            root = driver_tracer.record(
                                "source",
                                trace_id,
                                None,
                                now,
                                now,
                                side=side,
                                target=graph.node_names[target],
                                **span_detail(element),
                            )
                            context = (trace_id, root)
                    theta = thetas[target]
                    if parts[target] > 1:
                        key = (
                            theta.left_key(element.tuple)
                            if side == LEFT
                            else theta.right_key(element.tuple)
                        )
                        partition = stable_hash(key) % parts[target]
                    else:
                        partition = 0
                    session.send(
                        first_worker[target] + partition,
                        None,
                        Tagged(side, element, clock, context),
                    )
                else:
                    for partition in range(parts[target]):
                        session.send(
                            first_worker[target] + partition,
                            ("src", edge),
                            Tagged(side, element),
                        )
        except ChannelClosed:
            # A worker died and closed its channel; stop routing — the
            # failure is re-raised by finish() after every worker is joined.
            pass
        for target, _side, _iterator in edges:
            for partition in range(parts[target]):
                session.done(first_worker[target] + partition)
        reports = session.finish()
        blocks = session.backpressure_blocks
        backend = session.name

    final_metrics = [
        report.metrics for report in reports if report.metrics is not None
    ]
    if collector is not None:
        collector.complete(final_metrics)
    final_spans: List[dict] = []
    if trace_on:
        for report in reports:
            if report.spans:
                final_spans.extend(report.spans)
        if driver_tracer is not None:
            final_spans.extend(driver_tracer.dump())
    if trace_collector is not None:
        trace_collector.complete([final_spans])
    settled: Dict[str, List[TPTuple]] = {}
    stats: Dict[str, RevisionJoinStats] = {}
    latencies: Dict[str, List[float]] = {}
    lags: Dict[str, List[float]] = {}
    for node, spec in enumerate(graph.nodes):
        merged: List[TPTuple] = []
        node_stats: List[RevisionJoinStats] = []
        node_latencies: List[float] = []
        node_lags: List[float] = []
        for partition in range(parts[node]):
            report = reports[first_worker[node] + partition]
            merged.extend(report.outputs)
            node_stats.append(RevisionJoinStats(*report.stats))
            node_latencies.extend(report.emit_latencies)
            node_lags.extend(report.emit_event_lags)
        # Canonical order-stable merge: key-disjoint partition outputs sort
        # into the same sequence any partition count (or backend) produces.
        settled[spec.name] = canonical_order(merged)
        stats[spec.name] = RevisionJoinStats.merged(node_stats)
        latencies[spec.name] = node_latencies
        lags[spec.name] = node_lags
    return GraphRunOutcome(
        settled=settled,
        stats=stats,
        emit_latencies=latencies,
        emit_event_lags=lags,
        events_processed=events_processed,
        backpressure_blocks=blocks,
        backend=backend,
        metrics=final_metrics,
        trace_spans=final_spans,
    )


def run_graph_inline(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Single-threaded depth-first execution (the inline transport)."""
    return run_graph(graph, config, merge_seed, transport="inline")


def run_graph_threads(
    graph: DataflowGraph, config, merge_seed: Optional[int] = None
) -> GraphRunOutcome:
    """Pipelined execution with one worker thread per node partition."""
    return run_graph(graph, config, merge_seed, transport="threads")
