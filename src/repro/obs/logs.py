"""Logging configuration shared by the ``--listen`` entrypoints.

Library modules log through per-module loggers under the ``repro``
namespace and never configure handlers themselves; the entrypoint
``main()`` functions call :func:`configure_logging`, which installs a
stdout handler whose default plain format is *message-only* — so the
readiness and shutdown lines scripts grep for stay byte-identical to
the previous ``print`` output.  ``--log-json`` switches the same
handler to one-JSON-object-per-line.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["configure_logging"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_logging(level: str = "info", json_mode: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger tree for an entrypoint process."""
    logger = logging.getLogger("repro")
    logger.setLevel(_LEVELS.get(level.lower(), logging.INFO))
    handler = logging.StreamHandler(sys.stdout)
    if json_mode:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
    logger.handlers[:] = [handler]
    logger.propagate = False
    return logger
