"""Driver-side collection of worker metrics snapshots, live and final.

A :class:`MetricsCollector` is handed down into the graph/shard runner;
the runner *attaches* the live transport session (whose ``metrics()``
polls the workers' most recent snapshots mid-run) and later *completes*
with the final snapshots carried home in each :class:`WorkerReport`.
``snapshots()`` therefore answers at any point of the run's lifecycle:
live while a session is attached, final afterwards, empty before either.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .metrics import MetricsAggregator

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Thread-safe bridge between a running session and metrics readers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._session = None
        self._final: List[dict] = []

    def attach(self, session) -> None:
        """Point live reads at a running transport session."""
        with self._lock:
            self._session = session

    def complete(self, snapshots: List[dict]) -> None:
        """Store the final per-worker snapshots; detach the session."""
        with self._lock:
            self._final = [snap for snap in snapshots if snap]
            self._session = None

    def snapshots(self) -> List[dict]:
        """Most recent per-worker snapshots (live when a run is active)."""
        with self._lock:
            session = self._session
            final = list(self._final)
        if session is not None:
            try:
                live = session.metrics()
            except Exception:
                live = []
            if live:
                return [snap for snap in live if snap]
        return final

    def aggregate(self) -> Optional[MetricsAggregator]:
        """Aggregated view over the current snapshots, or ``None`` if empty."""
        snapshots = self.snapshots()
        if not snapshots:
            return None
        aggregator = MetricsAggregator()
        aggregator.update_all(snapshots)
        return aggregator
