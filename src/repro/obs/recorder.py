"""Flight recorder: a per-worker bounded ring of trace spans.

Every traced worker owns one :class:`FlightRecorder`.  Spans are plain
dicts (picklable, JSON-able) appended by the worker's
:class:`~repro.obs.trace.Tracer`; the ring keeps only the newest
``capacity`` spans, so a worker that traces forever holds bounded
memory and a worker that *dies* still has its recent history — the
driver renders it with :func:`render_flight_dump` when a socket seat
closes its connection without a result or a result frame times out.

Two read cursors serve the two shipping paths PR 7 established for
metrics snapshots:

* :meth:`FlightRecorder.pending` — the spans recorded since the last
  call, drained onto the periodic metrics/trace frames mid-run;
* :meth:`FlightRecorder.dump` — everything still retained, attached to
  the final :class:`~repro.runtime.worker.WorkerReport` (and to flight
  dumps).

Both return the span dicts themselves, never copies: spans are treated
as immutable once recorded.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["DEFAULT_RING_SPANS", "FlightRecorder", "render_flight_dump"]

#: Spans retained per worker.  At ~200 bytes/span this bounds a worker's
#: trace memory near 400 KiB while keeping several seconds of history at
#: realistic sampling rates.
DEFAULT_RING_SPANS = 2048


class FlightRecorder:
    """Bounded ring of span dicts with a drain cursor for periodic flush."""

    __slots__ = ("_ring", "_seq", "_drained")

    def __init__(self, capacity: int = DEFAULT_RING_SPANS) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._ring: Deque[Tuple[int, dict]] = deque(maxlen=capacity)
        self._seq = 0
        self._drained = 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, span: dict) -> None:
        self._ring.append((self._seq, span))
        self._seq += 1

    def pending(self) -> List[dict]:
        """Spans recorded since the previous :meth:`pending` call.

        Spans that fell off the ring before being drained are simply
        lost from the periodic path (they may still reach the driver in
        the final :meth:`dump`) — the recorder never blocks the worker.
        """
        cursor = self._drained
        self._drained = self._seq
        return [span for seq, span in self._ring if seq >= cursor]

    def dump(self) -> List[dict]:
        """Every span still retained, oldest first."""
        return [span for _seq, span in self._ring]


def _format_span(span: dict, origin: float) -> str:
    start = (span.get("t0", origin) - origin) * 1e6
    duration = (span.get("t1", span.get("t0", origin)) - span.get("t0", origin)) * 1e6
    parts = [
        f"+{start:12.1f}us",
        f"{duration:10.1f}us",
        f"trace={span.get('trace', '?')}",
        f"{span.get('name', '?')}",
        f"span={span.get('span', '?')}",
    ]
    parent = span.get("parent")
    if parent is not None:
        parts.append(f"parent={parent}")
    for key in ("node", "channel", "target", "fact", "seq", "subscriber"):
        if key in span:
            parts.append(f"{key}={span[key]}")
    return "  ".join(parts)


def render_flight_dump(
    worker: str,
    spans: List[dict],
    metrics: Optional[Dict] = None,
    limit: int = 64,
) -> str:
    """Render a worker's retained spans (and final counters) as text.

    Used by the socket driver when a seat dies mid-run: the newest
    ``limit`` spans, ordered by start time and offset from the oldest
    shown, plus the last metrics snapshot's counters if one arrived.
    """
    lines = [f"flight recorder dump for {worker}: {len(spans)} span(s) retained"]
    shown = sorted(spans, key=lambda span: span.get("t0", 0.0))[-limit:]
    if shown:
        origin = shown[0].get("t0", 0.0)
        if len(spans) > len(shown):
            lines.append(f"  ... {len(spans) - len(shown)} older span(s) elided")
        for span in shown:
            lines.append("  " + _format_span(span, origin))
    else:
        lines.append("  (no spans recorded — tracing off or nothing sampled)")
    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            rendered = ", ".join(
                f"{name}={value}" for name, value in sorted(counters.items()) if value
            )
            lines.append(f"  last metrics snapshot: {rendered}")
    return "\n".join(lines)
