"""Sampling operator state into a worker's :class:`MetricsRegistry`.

The hot loops only bump three flow counters; everything else — revision
counters, open-group gauges, watermark lag, probability hash-cons hit
rates — already lives in the operators' own stats objects and state, so
it is *sampled* here on demand (periodic snapshot or final report)
instead of being counted twice on the hot path.  Sampling is duck-typed:
it works for :class:`~repro.dataflow.operators.RevisionJoin`, the stream
shard operators (:class:`~repro.stream.operators.ContinuousJoinBase`),
and anything future exposing the same attributes.
"""

from __future__ import annotations

import math
import time

from .metrics import MetricsRegistry

__all__ = ["sample_operator"]

#: MaintainerStats counters copied verbatim per maintainer side.
_MAINTAINER_COUNTERS = (
    "positives_in",
    "negatives_in",
    "late_positives_dropped",
    "late_negatives_dropped",
    "groups_finalized",
    "negatives_evicted",
    "positives_retracted",
    "negatives_retracted",
)

#: RevisionJoinStats counters, prefixed ``revision_`` where ambiguous.
_REVISION_COUNTERS = {
    "emits": "revision_emits",
    "retracts": "revision_retracts",
    "refines": "revision_refines",
    "groups_published_early": "groups_published_early",
    "groups_settled": "groups_settled",
    "inputs_retracted": "inputs_retracted",
}

#: OperatorStats counters of the stream shard operators.
_OPERATOR_COUNTERS = {
    "outputs_emitted": "outputs_emitted",
    "groups_finalized": "operator_groups_finalized",
}


def _sample_maintainer(registry: MetricsRegistry, maintainer, prefix: str) -> dict:
    stats = maintainer.stats
    for name in _MAINTAINER_COUNTERS:
        registry.set_counter(f"{prefix}{name}", getattr(stats, name))
    registry.gauge(f"{prefix}peak_open_positives").set(stats.peak_open_positives)
    counters = getattr(maintainer, "probability_counters", None)
    return counters() if counters is not None else {}


def sample_operator(registry: MetricsRegistry, join) -> None:
    """Copy one operator's current state into its worker registry."""
    stats = getattr(join, "stats", None)
    if stats is not None:
        for field_name, metric in _REVISION_COUNTERS.items():
            if hasattr(stats, field_name):
                registry.set_counter(metric, getattr(stats, field_name))
        for field_name, metric in _OPERATOR_COUNTERS.items():
            if hasattr(stats, field_name) and not hasattr(stats, "emits"):
                registry.set_counter(metric, getattr(stats, field_name))

    forward = getattr(join, "maintainer", None)
    if forward is None:
        return
    reverse = getattr(join, "reverse_maintainer", None)

    probability = _sample_maintainer(registry, forward, "")
    open_groups = forward.open_positives
    indexed = forward.indexed_negatives
    if reverse is not None:
        for name, value in _sample_maintainer(registry, reverse, "reverse_").items():
            probability[name] = probability.get(name, 0) + value
        open_groups += reverse.open_positives
        indexed += reverse.indexed_negatives
    for name, value in probability.items():
        registry.set_counter(name, value)
    registry.gauge("open_groups").set(open_groups)
    registry.gauge("indexed_negatives").set(indexed)

    watermark = forward.combined_watermark
    derive = getattr(join, "derived_watermark", None)
    if derive is not None:
        watermark = derive()
    registry.gauge("watermark").set(watermark)
    frontier = getattr(join, "_frontier", None)
    if frontier is not None:
        registry.gauge("frontier").set(frontier)
        if math.isfinite(frontier) and math.isfinite(watermark):
            registry.gauge("watermark_lag").set(frontier - watermark)
        else:
            registry.gauge("watermark_lag").set(0.0)
    registry.gauge("sampled_at").set(time.time())
