"""Low-overhead metrics primitives: counters, gauges, histograms, registries.

Every worker owns one :class:`MetricsRegistry`; instruments are plain
attribute-increment objects (no locks — each registry is touched by one
worker thread, and snapshots read immutable ints/floats which is safe
under the GIL).  A registry's :meth:`MetricsRegistry.snapshot` is a plain
dict of builtins, so it pickles through the runtime codecs and serialises
to JSON for the NDJSON serve front end without any custom hooks.

The metrics-off fast path is structural: when metrics are disabled no
registry exists and the hot loops take the original branch, so the cost
of an uninstrumented run is one ``is None`` test per loop at most.

The driver side is :class:`MetricsAggregator`: it merges labelled
snapshots from every worker (whatever transport delivered them) into a
coherent view — per-node totals, load skew, an ``EXPLAIN ANALYZE``-style
text report, and a Prometheus text exposition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsAggregator",
    "registry_for_spec",
    "DEFAULT_BUCKETS",
    "DEFAULT_METRICS_INTERVAL",
]

#: Default histogram bucket upper bounds (element counts: micro-batch
#: sizes, ring depths).  Powers of two up to the default channel batch cap.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Seconds between periodic telemetry shipments (metrics snapshots and
#: trace-span flushes) from a running worker to the driver.  The single
#: authority for the default every transport signature reuses.
DEFAULT_METRICS_INTERVAL = 0.25

#: Gauges merged with ``min`` across workers instead of ``max`` — a
#: stage's effective watermark/frontier is the slowest partition's.
_MIN_MERGED_GAUGES = frozenset({"watermark", "frontier"})


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, watermark, lag)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: cumulative-style buckets plus count/total.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final slot
    counts overflow.  Bounds are few (single digits), so a linear scan
    beats bisect for the hot path.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1


class MetricsRegistry:
    """One worker's instruments, keyed by metric name, tagged with labels."""

    __slots__ = ("labels", "_counters", "_gauges", "_histograms")

    def __init__(self, **labels) -> None:
        self.labels: Dict[str, str] = {
            key: str(value) for key, value in labels.items() if value is not None
        }
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite a counter from an authoritative source (stats object)."""
        self.counter(name).value = int(value)

    def snapshot(self) -> dict:
        """A picklable/JSON-able copy of every instrument."""
        return {
            "labels": dict(self.labels),
            "counters": {
                name: instrument.value
                for name, instrument in self._counters.items()
            },
            "gauges": {
                name: instrument.value for name, instrument in self._gauges.items()
            },
            "histograms": {
                name: {
                    "bounds": list(instrument.bounds),
                    "buckets": list(instrument.buckets),
                    "count": instrument.count,
                    "total": instrument.total,
                }
                for name, instrument in self._histograms.items()
            },
        }


def registry_for_spec(spec) -> MetricsRegistry:
    """Build a worker registry labelled from a runtime worker spec.

    Works for both :class:`~repro.parallel.stream_exec.StreamShardSpec`
    (``index``/``kind``) and dataflow node specs (``name``/``kind``/
    ``partition``) — missing attributes are simply omitted as labels.
    """
    index = getattr(spec, "index", None)
    partition = getattr(spec, "partition", None)
    return MetricsRegistry(
        worker=index,
        node=getattr(spec, "name", None),
        kind=getattr(spec, "kind", None),
        partition=partition if partition is not None else index,
    )


def _merge_counters(target: Dict[str, int], counters: Mapping[str, int]) -> None:
    for name, value in counters.items():
        target[name] = target.get(name, 0) + int(value)


def _merge_gauge(target: Dict[str, float], name: str, value: float) -> None:
    if name in _MIN_MERGED_GAUGES:
        previous = target.get(name)
        target[name] = value if previous is None else min(previous, value)
    else:
        previous = target.get(name)
        target[name] = value if previous is None else max(previous, value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsAggregator:
    """Driver-side merge of per-worker snapshots into one labelled view.

    Snapshots are keyed by their ``worker`` label: a later snapshot from
    the same worker *replaces* the earlier one (workers report running
    totals, not deltas), so feeding periodic snapshots plus the final
    report never double-counts.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[str, dict] = {}

    # -- ingestion ---------------------------------------------------------

    def update(self, snapshot: Optional[dict]) -> None:
        if not snapshot:
            return
        labels = snapshot.get("labels", {})
        key = str(labels.get("worker", len(self._snapshots)))
        self._snapshots[key] = snapshot

    def update_all(self, snapshots: Iterable[Optional[dict]]) -> None:
        for snapshot in snapshots:
            self.update(snapshot)

    # -- structured access -------------------------------------------------

    def snapshots(self) -> List[dict]:
        return [self._snapshots[key] for key in sorted(self._snapshots)]

    def counter_total(self, name: str) -> int:
        return sum(
            int(snapshot.get("counters", {}).get(name, 0))
            for snapshot in self._snapshots.values()
        )

    def totals(self) -> Dict[str, int]:
        """All counters summed across workers."""
        merged: Dict[str, int] = {}
        for snapshot in self._snapshots.values():
            _merge_counters(merged, snapshot.get("counters", {}))
        return merged

    def by_node(self) -> Dict[str, dict]:
        """Per-node view: counters summed, gauges min/max-merged."""
        nodes: Dict[str, dict] = {}
        for snapshot in self._snapshots.values():
            labels = snapshot.get("labels", {})
            node = labels.get("node") or labels.get("kind") or "worker"
            entry = nodes.setdefault(
                node,
                {"kind": labels.get("kind", ""), "workers": 0, "counters": {}, "gauges": {}},
            )
            entry["workers"] += 1
            _merge_counters(entry["counters"], snapshot.get("counters", {}))
            for name, value in snapshot.get("gauges", {}).items():
                _merge_gauge(entry["gauges"], name, float(value))
        return nodes

    def load_skew(self, counter: str = "elements_operated") -> dict:
        """Max/mean imbalance of one counter across workers."""
        per_worker = {
            key: int(snapshot.get("counters", {}).get(counter, 0))
            for key, snapshot in self._snapshots.items()
        }
        values = list(per_worker.values())
        if not values or sum(values) == 0:
            return {"max": 0, "mean": 0.0, "skew": 1.0, "per_worker": per_worker}
        mean = sum(values) / len(values)
        peak = max(values)
        return {
            "max": peak,
            "mean": mean,
            "skew": peak / mean if mean else 1.0,
            "per_worker": per_worker,
        }

    # -- renderings --------------------------------------------------------

    def render_report(self) -> str:
        """``EXPLAIN ANALYZE``-style per-node text report."""
        lines: List[str] = []
        nodes = self.by_node()
        if not nodes:
            return "(no metrics collected)"
        for node in sorted(nodes):
            entry = nodes[node]
            kind = entry["kind"]
            header = f"{node} [{kind}]" if kind and kind != node else node
            lines.append(f"{header}  (workers={entry['workers']})")
            counters = entry["counters"]
            gauges = entry["gauges"]
            flow = [
                f"{label}={counters[name]}"
                for label, name in (
                    ("routed", "elements_routed"),
                    ("operated", "elements_operated"),
                    ("emitted", "elements_emitted"),
                )
                if name in counters
            ]
            if flow:
                lines.append("  flow: " + " ".join(flow))
            revisions = [
                f"{name.replace('revision_', '')}={counters[name]}"
                for name in (
                    "revision_emits",
                    "revision_retracts",
                    "revision_refines",
                    "groups_settled",
                )
                if name in counters
            ]
            if revisions:
                lines.append("  revisions: " + " ".join(revisions))
            probability = [
                f"{name}={counters[name]}"
                for name in (
                    "probability_cache_hits",
                    "probability_cache_misses",
                    "probability_intern_hits",
                    "probability_intern_misses",
                )
                if name in counters
            ]
            if probability:
                lines.append("  probability: " + " ".join(probability))
            watermarks = [
                f"{name}={_format_value(gauges[name])}"
                for name in ("watermark", "frontier", "watermark_lag", "open_groups")
                if name in gauges
            ]
            if watermarks:
                lines.append("  progress: " + " ".join(watermarks))
            busy = gauges.get("busy_seconds")
            idle = gauges.get("idle_seconds")
            if busy is not None or idle is not None:
                lines.append(
                    "  loop: busy={:.3f}s idle={:.3f}s".format(
                        busy or 0.0, idle or 0.0
                    )
                )
            inbox = [
                f"{name.replace('inbox_', '')}={_format_value(gauges[name])}"
                for name in (
                    "inbox_depth",
                    "inbox_high_watermark",
                    "inbox_put_blocks",
                )
                if name in gauges
            ]
            if inbox:
                lines.append("  inbox: " + " ".join(inbox))
        skew = self.load_skew()
        if skew["max"]:
            lines.append(
                "load skew: max={max} mean={mean:.1f} ratio={skew:.2f}".format(**skew)
            )
        return "\n".join(lines)

    def prometheus_text(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (one family per metric name)."""
        counters: Dict[str, List[Tuple[str, float]]] = {}
        gauges: Dict[str, List[Tuple[str, float]]] = {}
        histograms: Dict[str, List[Tuple[str, dict]]] = {}
        for key in sorted(self._snapshots):
            snapshot = self._snapshots[key]
            label_text = ",".join(
                f'{name}="{_escape_label(str(value))}"'
                for name, value in sorted(snapshot.get("labels", {}).items())
            )
            for name, value in snapshot.get("counters", {}).items():
                counters.setdefault(name, []).append((label_text, float(value)))
            for name, value in snapshot.get("gauges", {}).items():
                gauges.setdefault(name, []).append((label_text, float(value)))
            for name, data in snapshot.get("histograms", {}).items():
                histograms.setdefault(name, []).append((label_text, data))
        lines: List[str] = []
        for name in sorted(counters):
            metric = f"{prefix}_{name}_total"
            lines.append(f"# TYPE {metric} counter")
            for label_text, value in counters[name]:
                lines.append(f"{metric}{{{label_text}}} {_format_value(value)}")
        for name in sorted(gauges):
            metric = f"{prefix}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            for label_text, value in gauges[name]:
                lines.append(f"{metric}{{{label_text}}} {_format_value(value)}")
        for name in sorted(histograms):
            metric = f"{prefix}_{name}"
            lines.append(f"# TYPE {metric} histogram")
            for label_text, data in histograms[name]:
                cumulative = 0
                joiner = "," if label_text else ""
                for bound, bucket in zip(data["bounds"], data["buckets"]):
                    cumulative += bucket
                    lines.append(
                        f'{metric}_bucket{{{label_text}{joiner}le="{_format_value(float(bound))}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{metric}_bucket{{{label_text}{joiner}le="+Inf"}} {data["count"]}'
                )
                lines.append(f"{metric}_count{{{label_text}}} {data['count']}")
                lines.append(
                    f"{metric}_sum{{{label_text}}} {_format_value(float(data['total']))}"
                )
        return "\n".join(lines) + "\n" if lines else ""
