"""Distributed tracing: span-per-element timelines across every transport.

The tracing layer is the per-event counterpart to PR 7's aggregate
metrics.  A :class:`TraceSampler` at the *source* (the driver's routing
loop) decides — deterministically, via an error-accumulator rather than
a RNG — which elements carry a compact trace context ``(trace_id,
parent_span_id)`` on :attr:`repro.stream.elements.Tagged.trace`.  The
context travels with the element through worker dispatch, channel hops
and the process/socket codecs; every traced worker owns a
:class:`Tracer` writing spans into a bounded
:class:`~repro.obs.recorder.FlightRecorder` ring.  Spans ship exactly
like metrics snapshots: periodically on the live frames mid-run, and in
full with the final :class:`~repro.runtime.worker.WorkerReport`.

Driver-side, a :class:`TraceAggregator` stitches spans (deduplicated by
span id, so the periodic and final shipments may overlap freely) into
causal per-trace timelines, renders them as text, and exports Chrome
trace-event JSON loadable in ``chrome://tracing`` / Perfetto.  A
:class:`TraceCollector` mirrors :class:`~repro.obs.collector.MetricsCollector`
for live mid-run reads.

Cross-host clocks: span timestamps are ``time.perf_counter()`` values,
incomparable across real hosts.  Remote socket workers therefore send a
``(wall_clock, perf_counter)`` anchor pair when they accept a job;
:func:`estimate_clock_offset` turns it into an additive correction that
maps the remote perf-counter scale onto the driver's (trusting NTP for
the wall clocks), applied by the socket session before spans reach the
aggregator and surfaced as ``WorkerReport.clock_offset``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from .recorder import DEFAULT_RING_SPANS, FlightRecorder

__all__ = [
    "DEFAULT_TRACE_SAMPLE_RATE",
    "TraceAggregator",
    "TraceCollector",
    "TraceSampler",
    "Tracer",
    "clock_anchor",
    "estimate_clock_offset",
    "find_tuples",
    "render_tuple_explanation",
    "shift_spans",
    "span_detail",
    "tracer_for_spec",
]

#: Default per-query sampling rate: one traced element per hundred.
#: Cheap enough to leave on in production; tests and walkthroughs that
#: want every element pass ``trace_sample_rate=1.0``.
DEFAULT_TRACE_SAMPLE_RATE = 0.01

#: Lineage variables recorded per span — enough to join a span timeline
#: against a settled tuple's lineage tree without bloating the ring.
_MAX_SPAN_VARS = 8


class TraceSampler:
    """Deterministic head-based sampler handing out sequential trace ids.

    An error accumulator (``acc += rate``; sample when it crosses 1)
    picks every ``1/rate``-th element — reproducible run to run, which
    keeps traced output bitwise comparable and the overhead bench fair.
    """

    __slots__ = ("rate", "_acc", "_next_id")

    def __init__(self, rate: float, first_id: int = 1) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._acc = 0.0
        self._next_id = first_id

    def sample(self) -> Optional[int]:
        """The next trace id if this element is sampled, else ``None``."""
        self._acc += self.rate
        if self._acc >= 1.0:
            self._acc -= 1.0
            trace_id = self._next_id
            self._next_id += 1
            return trace_id
        return None


class Tracer:
    """Records spans for one worker into its flight-recorder ring.

    Span ids are ``"<worker>:<seq>"`` — unique across a run because
    worker labels are (driver label, worker indices, hub names are all
    distinct) and sequences are per-tracer monotone.  Spans are plain
    dicts with ``name``/``trace``/``span``/``worker``/``t0``/``t1``
    plus optional ``parent``/``node`` and free-form detail keys.
    """

    __slots__ = ("worker", "node", "recorder", "_seq")

    def __init__(
        self,
        worker: str,
        node: Optional[str] = None,
        capacity: int = DEFAULT_RING_SPANS,
    ) -> None:
        self.worker = str(worker)
        self.node = node
        self.recorder = FlightRecorder(capacity)
        self._seq = 0

    def record(
        self,
        name: str,
        trace_id: int,
        parent: Optional[str],
        start: float,
        end: float,
        **detail,
    ) -> str:
        span_id = f"{self.worker}:{self._seq}"
        self._seq += 1
        span = {
            "name": name,
            "trace": trace_id,
            "span": span_id,
            "worker": self.worker,
            "t0": start,
            "t1": end,
        }
        if parent is not None:
            span["parent"] = parent
        if self.node is not None:
            span["node"] = self.node
        if detail:
            span.update(detail)
        self.recorder.record(span)
        return span_id

    def pending(self) -> List[dict]:
        return self.recorder.pending()

    def dump(self) -> List[dict]:
        return self.recorder.dump()


def tracer_for_spec(spec) -> Tracer:
    """A tracer labelled like :func:`~repro.obs.metrics.registry_for_spec`,
    so spans and metrics snapshots from the same worker share a label."""
    return Tracer(str(getattr(spec, "index", 0)), node=getattr(spec, "name", None))


def span_detail(element) -> dict:
    """Fact + lineage variables of a stream element, for span annotation.

    Duck-typed over :class:`~repro.stream.elements.StreamEvent`,
    dataflow revisions and bare TP tuples (all expose the tuple via
    ``.tuple`` or *are* one).  The recorded variables are what
    ``explain_tuple`` later intersects with a settled tuple's lineage.
    """
    tp_tuple = getattr(element, "tuple", element)
    detail: dict = {}
    fact = getattr(tp_tuple, "fact", None)
    if fact is not None:
        detail["fact"] = tuple(fact)
    lineage = getattr(tp_tuple, "lineage", None)
    if lineage is not None:
        names = sorted(lineage.variables())
        if names:
            detail["vars"] = tuple(names[:_MAX_SPAN_VARS])
    return detail


def clock_anchor() -> tuple:
    """A ``(wall_clock, perf_counter)`` pair read back to back."""
    return (time.time(), time.perf_counter())


def estimate_clock_offset(
    remote_anchor: Sequence[float], local_anchor: Optional[Sequence[float]] = None
) -> float:
    """Additive correction mapping remote perf-counter times onto ours.

    ``driver_perf ≈ remote_perf + offset``, assuming the wall clocks
    agree (NTP).  On the same host the estimate is the (tiny) skew
    between the two back-to-back clock reads.
    """
    wall_remote, perf_remote = remote_anchor
    wall_local, perf_local = local_anchor if local_anchor is not None else clock_anchor()
    return (wall_remote - perf_remote) - (wall_local - perf_local)


def shift_spans(spans: Iterable[dict], offset: float) -> List[dict]:
    """Copies of ``spans`` with ``t0``/``t1`` shifted by ``offset``."""
    if not offset:
        return list(spans)
    shifted = []
    for span in spans:
        span = dict(span)
        span["t0"] = span.get("t0", 0.0) + offset
        span["t1"] = span.get("t1", 0.0) + offset
        shifted.append(span)
    return shifted


class TraceAggregator:
    """Stitches span shipments into causal per-trace timelines.

    Spans are keyed by span id, so periodic frames and the final report
    rings may overlap arbitrarily — the last shipment wins.
    """

    def __init__(self) -> None:
        self._spans: Dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def add_spans(self, spans: Iterable[dict], clock_offset: float = 0.0) -> None:
        for span in spans or ():
            ident = span.get("span")
            if ident is None:
                continue
            if clock_offset:
                span = dict(span)
                span["t0"] = span.get("t0", 0.0) + clock_offset
                span["t1"] = span.get("t1", 0.0) + clock_offset
            self._spans[ident] = span

    def update_all(self, span_lists: Iterable[Iterable[dict]]) -> None:
        for spans in span_lists:
            self.add_spans(spans)

    def spans(self) -> List[dict]:
        """All spans, ordered by start time (ties broken by span id)."""
        return sorted(
            self._spans.values(), key=lambda span: (span.get("t0", 0.0), span["span"])
        )

    def trace_ids(self) -> List[int]:
        return sorted({span["trace"] for span in self._spans.values()})

    def timeline(self, trace_id: int) -> List[dict]:
        return [span for span in self.spans() if span.get("trace") == trace_id]

    def timelines(self) -> Dict[int, List[dict]]:
        grouped: Dict[int, List[dict]] = {}
        for span in self.spans():
            grouped.setdefault(span["trace"], []).append(span)
        return grouped

    def render_timeline(self, trace_id: int) -> str:
        spans = self.timeline(trace_id)
        if not spans:
            return f"trace {trace_id}: no spans recorded"
        origin = spans[0].get("t0", 0.0)
        lines = [f"trace {trace_id}: {len(spans)} span(s)"]
        for span in spans:
            start = (span.get("t0", origin) - origin) * 1e6
            duration = (span.get("t1", origin) - span.get("t0", origin)) * 1e6
            line = (
                f"  +{start:10.1f}us {duration:9.1f}us"
                f"  worker={span.get('worker', '?'):<10} {span['name']}"
            )
            for key in ("node", "channel", "target", "fact", "seq"):
                if key in span:
                    line += f" {key}={span[key]}"
            lines.append(line)
        return "\n".join(lines)

    def chrome_trace(self) -> dict:
        """The span set as a Chrome trace-event JSON object.

        One ``pid`` for the run, one ``tid`` per worker label (named via
        ``thread_name`` metadata events), complete ``ph: "X"`` events
        with microsecond ``ts``/``dur`` relative to the earliest span.
        Load the written file in ``chrome://tracing`` or Perfetto.
        """
        spans = self.spans()
        origin = min((span.get("t0", 0.0) for span in spans), default=0.0)
        events: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "repro"}}
        ]
        thread_ids: Dict[str, int] = {}
        for span in spans:
            worker = span.get("worker", "?")
            tid = thread_ids.get(worker)
            if tid is None:
                tid = thread_ids[worker] = len(thread_ids) + 1
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": f"worker {worker}"},
                    }
                )
            args = {
                key: value
                for key, value in span.items()
                if key not in ("name", "worker", "t0", "t1")
            }
            events.append(
                {
                    "name": span["name"],
                    "cat": span.get("node", "span"),
                    "ph": "X",
                    "ts": (span.get("t0", 0.0) - origin) * 1e6,
                    "dur": max(
                        (span.get("t1", 0.0) - span.get("t0", 0.0)) * 1e6, 0.001
                    ),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, separators=(",", ":"))


def find_tuples(tuples, key) -> list:
    """The settled tuples a user-facing key designates.

    A tuple key is an exact fact match; a scalar matches any tuple whose
    fact contains it — so ``result.explain_tuple("alice")`` works without
    knowing the full fact.
    """
    if isinstance(key, tuple):
        return [tp_tuple for tp_tuple in tuples if tuple(tp_tuple.fact) == key]
    return [tp_tuple for tp_tuple in tuples if key in tuple(tp_tuple.fact)]


def render_tuple_explanation(tp_tuple, aggregator: Optional[TraceAggregator]) -> str:
    """The per-tuple provenance report behind ``result.explain_tuple``.

    Joins the tuple's lineage tree against the recorded span timelines: a
    trace contributed when any of its spans annotated this exact fact, or
    recorded a lineage variable the tuple's own lineage mentions (spans
    cap recorded variables, so the join is by intersection, not equality).
    """
    fact = tuple(tp_tuple.fact)
    lineage = tp_tuple.lineage
    variables = set(lineage.variables())
    lines = [
        f"tuple {fact}",
        f"  interval: [{tp_tuple.start}, {tp_tuple.end})",
        f"  probability: {tp_tuple.probability}",
        f"  lineage: {lineage}",
    ]
    if variables:
        lines.append(f"  events: {', '.join(sorted(variables))}")
    if aggregator is None or not len(aggregator):
        lines.append("  traces: none recorded (tracing off or nothing sampled)")
        return "\n".join(lines)
    contributing = []
    for trace_id, spans in sorted(aggregator.timelines().items()):
        for span in spans:
            if tuple(span.get("fact", ())) == fact or variables.intersection(
                span.get("vars", ())
            ):
                contributing.append(trace_id)
                break
    if not contributing:
        lines.append("  traces: no sampled element contributed to this tuple")
        return "\n".join(lines)
    lines.append(f"  traces: {len(contributing)} contributing timeline(s)")
    for trace_id in contributing:
        lines.extend(
            "  " + line for line in aggregator.render_timeline(trace_id).splitlines()
        )
    return "\n".join(lines)


class TraceCollector:
    """Live span access for a run in progress, mirroring MetricsCollector.

    Attach it to a query/run; mid-run reads poll the transport session's
    accumulated span shipments, and :meth:`complete` folds in the final
    report rings.  All reads go through one internal aggregator, so the
    overlap between periodic and final shipments is invisible.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aggregator = TraceAggregator()
        self._session = None

    def attach(self, session) -> None:
        with self._lock:
            self._session = session

    def add_spans(self, spans: Iterable[dict]) -> None:
        with self._lock:
            self._aggregator.add_spans(spans)

    def complete(self, span_lists: Iterable[Iterable[dict]]) -> None:
        with self._lock:
            self._poll_locked()
            self._session = None
            for spans in span_lists:
                self._aggregator.add_spans(spans)

    def _poll_locked(self) -> None:
        if self._session is None:
            return
        try:
            spans = self._session.trace_spans()
        except Exception:  # session mid-teardown: the final report follows
            return
        self._aggregator.add_spans(spans)

    def spans(self) -> List[dict]:
        with self._lock:
            self._poll_locked()
            return self._aggregator.spans()

    def aggregate(self) -> Optional[TraceAggregator]:
        """The aggregator once any span arrived, else ``None``."""
        with self._lock:
            self._poll_locked()
            return self._aggregator if len(self._aggregator) else None
