"""Prometheus-format text exposition over a stdlib HTTP server.

No third-party client library: the exposition format is plain text, so
a :class:`ThreadingHTTPServer` in a daemon thread is enough.  The
``render`` callable is invoked per scrape and must return the full
exposition body (see :meth:`MetricsAggregator.prometheus_text`).
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["start_metrics_http_server"]

_LOGGER = logging.getLogger(__name__)


def start_metrics_http_server(
    host: str, port: int, render: Callable[[], str]
) -> ThreadingHTTPServer:
    """Serve ``GET /metrics`` (and ``/``) scrapes; returns the server.

    The caller shuts it down with ``server.shutdown()``; the listening
    port (useful with ``port=0``) is ``server.server_address[1]``.
    """

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                self.send_error(404)
                return
            try:
                body = render().encode("utf-8")
            except Exception:
                _LOGGER.exception("metrics render failed")
                self.send_error(500)
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:
            _LOGGER.debug("metrics scrape: " + format, *args)

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server
