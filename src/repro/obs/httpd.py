"""Prometheus-format text exposition over a stdlib HTTP server.

No third-party client library: the exposition format is plain text, so
a :class:`ThreadingHTTPServer` in a daemon thread is enough.  The
``render`` callable is invoked per scrape and must return the full
exposition body (see :meth:`MetricsAggregator.prometheus_text`).
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["start_metrics_http_server"]

_LOGGER = logging.getLogger(__name__)


def start_metrics_http_server(
    host: str, port: int, render: Callable[[], str]
) -> ThreadingHTTPServer:
    """Serve ``GET /metrics`` (and ``/``) scrapes plus ``GET /healthz``.

    ``/healthz`` answers ``ok`` without invoking ``render`` — it is a
    liveness probe target, and must stay cheap and dependable even when
    a metrics render would fail.  Unknown paths get a plain-text 404
    body (the stdlib HTML error page confuses text-oriented probes).
    The caller shuts the server down with ``server.shutdown()``; the
    listening port (useful with ``port=0``) is
    ``server.server_address[1]``.
    """

    class _Handler(BaseHTTPRequestHandler):
        def _send_text(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send_text(200, b"ok\n", "text/plain; charset=utf-8")
                return
            if path not in ("/", "/metrics"):
                self._send_text(
                    404,
                    f"not found: {path}\n".encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
                return
            try:
                body = render().encode("utf-8")
            except Exception:
                _LOGGER.exception("metrics render failed")
                self.send_error(500)
                return
            self._send_text(200, body, "text/plain; version=0.0.4")

        def log_message(self, format: str, *args) -> None:
            _LOGGER.debug("metrics scrape: " + format, *args)

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server
