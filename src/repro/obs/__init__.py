"""Engine-wide observability: metrics registry, collection, exposition.

Layering: :mod:`.metrics` holds the instruments and the driver-side
aggregator; :mod:`.sample` copies operator state into a registry;
:mod:`.collector` bridges a running transport session to metrics
readers; :mod:`.logs` and :mod:`.httpd` back the ``--listen``
entrypoints' ``--log-*`` flags and Prometheus endpoints.
"""

from .collector import MetricsCollector
from .httpd import start_metrics_http_server
from .logs import configure_logging
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    registry_for_spec,
)
from .sample import sample_operator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsAggregator",
    "MetricsCollector",
    "registry_for_spec",
    "sample_operator",
    "configure_logging",
    "start_metrics_http_server",
    "DEFAULT_BUCKETS",
]
