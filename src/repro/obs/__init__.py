"""Engine-wide observability: metrics, tracing, collection, exposition.

Layering: :mod:`.metrics` holds the instruments and the driver-side
aggregator; :mod:`.sample` copies operator state into a registry;
:mod:`.trace` and :mod:`.recorder` add span-per-element tracing with
per-worker flight-recorder rings; :mod:`.collector` bridges a running
transport session to metrics readers; :mod:`.logs` and :mod:`.httpd`
back the ``--listen`` entrypoints' ``--log-*`` flags and the
Prometheus/health endpoints.
"""

from .collector import MetricsCollector
from .httpd import start_metrics_http_server
from .logs import configure_logging
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_METRICS_INTERVAL,
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    registry_for_spec,
)
from .recorder import DEFAULT_RING_SPANS, FlightRecorder, render_flight_dump
from .sample import sample_operator
from .trace import (
    DEFAULT_TRACE_SAMPLE_RATE,
    TraceAggregator,
    TraceCollector,
    Tracer,
    TraceSampler,
    clock_anchor,
    estimate_clock_offset,
    tracer_for_spec,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsAggregator",
    "MetricsCollector",
    "registry_for_spec",
    "sample_operator",
    "configure_logging",
    "start_metrics_http_server",
    "DEFAULT_BUCKETS",
    "DEFAULT_METRICS_INTERVAL",
    "DEFAULT_RING_SPANS",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "FlightRecorder",
    "render_flight_dump",
    "TraceAggregator",
    "TraceCollector",
    "Tracer",
    "TraceSampler",
    "clock_anchor",
    "estimate_clock_offset",
    "tracer_for_spec",
]
