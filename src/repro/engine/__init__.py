"""Pipelined query engine: catalog, plans, planner, executor and SQL front end."""

from .catalog import Catalog, RelationStats
from .continuous import (
    CONTINUOUS_KINDS,
    ContinuousJoinOperator,
    ContinuousScanOperator,
    DataflowJoinOperator,
)
from .errors import CatalogError, EngineError, PlanError, SQLSyntaxError
from .executor import Engine, execute_sql
from .explain import explain_analyze, explain_logical, explain_physical
from .iterators import PhysicalOperator
from .logical import (
    JoinKind,
    JoinStrategy,
    LogicalPlan,
    Project,
    Scan,
    Select,
    StreamScan,
    Timeslice,
    TPJoin,
    find_scans,
    find_stream_scans,
    walk,
)
from .physical import (
    FilterOperator,
    NaiveJoinOperator,
    NJJoinOperator,
    ParallelNJJoinOperator,
    ProjectOperator,
    ScanOperator,
    TAJoinOperator,
    TimesliceOperator,
)
from .planner import Planner, PlannerConfig
from .sql import JoinClause, ParsedQuery, parse_plan, parse_query, tokenize

__all__ = [
    "CONTINUOUS_KINDS",
    "Catalog",
    "CatalogError",
    "ContinuousJoinOperator",
    "ContinuousScanOperator",
    "DataflowJoinOperator",
    "Engine",
    "JoinClause",
    "EngineError",
    "FilterOperator",
    "JoinKind",
    "JoinStrategy",
    "LogicalPlan",
    "NJJoinOperator",
    "NaiveJoinOperator",
    "ParallelNJJoinOperator",
    "ParsedQuery",
    "PhysicalOperator",
    "PlanError",
    "Planner",
    "PlannerConfig",
    "Project",
    "ProjectOperator",
    "RelationStats",
    "SQLSyntaxError",
    "Scan",
    "ScanOperator",
    "Select",
    "StreamScan",
    "TAJoinOperator",
    "TPJoin",
    "Timeslice",
    "TimesliceOperator",
    "execute_sql",
    "explain_analyze",
    "explain_logical",
    "explain_physical",
    "find_scans",
    "find_stream_scans",
    "parse_plan",
    "parse_query",
    "tokenize",
    "walk",
]
