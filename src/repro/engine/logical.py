"""Logical query plans.

The engine models a small but complete algebra over TP relations: scans,
selections, projections, timeslices and the TP joins of the paper.  A logical
plan is a tree of the dataclasses below; it says *what* to compute.  The
planner (:mod:`repro.engine.planner`) turns it into a physical plan that says
*how* — in particular which join implementation (NJ or TA) runs the TP joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from ..temporal import Interval


class JoinKind(str, Enum):
    """The TP join operators supported by the engine."""

    INNER = "inner"
    LEFT_OUTER = "left_outer"
    RIGHT_OUTER = "right_outer"
    FULL_OUTER = "full_outer"
    ANTI = "anti"


class JoinStrategy(str, Enum):
    """Which physical implementation evaluates a TP join."""

    AUTO = "auto"
    NJ = "nj"
    TA = "ta"
    NAIVE = "naive"


class LogicalPlan:
    """Base class of logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        """The child plans of this node."""
        return ()

    def describe(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Scan a catalogued relation by name."""

    relation_name: str

    def describe(self) -> str:
        return f"Scan({self.relation_name})"


@dataclass(frozen=True)
class StreamScan(LogicalPlan):
    """Scan a registered stream by name (``FROM STREAM name`` in SQL).

    A bare stream scan drains the stream's replay; under a TP join the
    planner fuses two stream scans into a continuous, watermark-driven join.
    """

    stream_name: str

    def describe(self) -> str:
        return f"StreamScan({self.stream_name})"


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Equality selection on a fact attribute."""

    child: LogicalPlan
    attribute: str
    value: object

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Select({self.attribute} = {self.value!r})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Projection onto a list of attributes (with lineage disjunction)."""

    child: LogicalPlan
    attributes: tuple[str, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.attributes)})"


@dataclass(frozen=True)
class Timeslice(LogicalPlan):
    """Restrict the input to a query interval."""

    child: LogicalPlan
    interval: Interval

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Timeslice({self.interval})"


@dataclass(frozen=True)
class TPJoin(LogicalPlan):
    """A temporal-probabilistic join between two sub-plans.

    ``on`` lists ``(left_attribute, right_attribute)`` equality pairs — the
    θ condition.  An empty list means a pure temporal join (θ = true).
    ``strategy`` lets a query pin the implementation (``USING TA`` in the SQL
    front end); ``AUTO`` defers the decision to the planner.
    """

    left: LogicalPlan
    right: LogicalPlan
    kind: JoinKind
    on: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    strategy: JoinStrategy = JoinStrategy.AUTO

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self.on) or "true"
        return f"TPJoin[{self.kind.value}] on {condition} ({self.strategy.value})"


def walk(plan: LogicalPlan) -> Sequence[LogicalPlan]:
    """Pre-order traversal of a logical plan."""
    nodes: list[LogicalPlan] = [plan]
    for child in plan.children():
        nodes.extend(walk(child))
    return nodes


def find_scans(plan: LogicalPlan) -> list[Scan]:
    """All relation-scan leaves of a plan (used by the planner for statistics)."""
    return [node for node in walk(plan) if isinstance(node, Scan)]


def find_stream_scans(plan: LogicalPlan) -> list[StreamScan]:
    """All stream-scan leaves of a plan."""
    return [node for node in walk(plan) if isinstance(node, StreamScan)]


def pinned_strategy(plan: LogicalPlan) -> Optional[JoinStrategy]:
    """The explicitly pinned join strategy of the topmost TP join, if any."""
    for node in walk(plan):
        if isinstance(node, TPJoin) and node.strategy is not JoinStrategy.AUTO:
            return node.strategy
    return None
