"""Volcano-style physical operator interface.

The paper integrates the window algorithms into PostgreSQL's executor, whose
operators implement the classic open / next / close (Volcano) protocol and
therefore evaluate queries in a pipeline without materialising intermediate
results.  The :class:`PhysicalOperator` base class reproduces that contract:
``open()`` prepares the operator, ``__iter__``/``next_tuple()`` produce one
output tuple at a time, ``close()`` releases state.  Operators are also
context managers, and plain ``for`` iteration over an opened operator is the
idiomatic way to consume them.

The NJ join operator (:class:`repro.engine.physical.NJJoinOperator`) is a
direct wrapper around the streaming generators of :mod:`repro.core.streaming`
— demonstrating the paper's claim that the approach drops into a pipelined
executor without buffering either input beyond the current group.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..relation import Schema, TPTuple
from .errors import PlanError


class PhysicalOperator:
    """Base class of all physical operators (Volcano protocol)."""

    def __init__(self) -> None:
        self._opened = False

    # -- lifecycle ------------------------------------------------------- #
    def open(self) -> "PhysicalOperator":
        """Prepare the operator for iteration (recursively opens children)."""
        if self._opened:
            raise PlanError(f"{type(self).__name__} opened twice")
        self._opened = True
        for child in self.children():
            child.open()
        self._on_open()
        return self

    def close(self) -> None:
        """Release operator state (recursively closes children)."""
        if not self._opened:
            return
        self._on_close()
        for child in self.children():
            child.close()
        self._opened = False

    def __enter__(self) -> "PhysicalOperator":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- production ------------------------------------------------------ #
    def __iter__(self) -> Iterator[TPTuple]:
        if not self._opened:
            raise PlanError(
                f"{type(self).__name__} must be opened before iteration "
                "(use `with op.open():` or the executor)"
            )
        return self._produce()

    def next_tuple(self) -> Optional[TPTuple]:
        """Produce the next tuple, or ``None`` when exhausted.

        Provided for symmetry with the textbook Volcano interface; internally
        operators are generators and ``__iter__`` is the efficient path.
        """
        if not hasattr(self, "_pull_iterator"):
            self._pull_iterator = iter(self)
        return next(self._pull_iterator, None)

    # -- to be overridden -------------------------------------------------#
    def children(self) -> tuple["PhysicalOperator", ...]:
        """Child operators."""
        return ()

    def output_schema(self) -> Schema:
        """Schema of the produced tuples."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def estimated_cost(self) -> float:
        """A unit-less cost estimate used by EXPLAIN (not for optimisation)."""
        return sum(child.estimated_cost() for child in self.children())

    def _on_open(self) -> None:
        """Hook for subclass open-time initialisation."""

    def _on_close(self) -> None:
        """Hook for subclass close-time cleanup."""

    def _produce(self) -> Iterator[TPTuple]:
        """Yield output tuples; subclasses must implement."""
        raise NotImplementedError
