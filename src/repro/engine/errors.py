"""Exceptions of the query engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all query-engine errors."""


class CatalogError(EngineError):
    """Raised for unknown or duplicate relation names."""


class PlanError(EngineError):
    """Raised when a logical plan is malformed or cannot be physicalised."""


class SQLSyntaxError(EngineError):
    """Raised when a query string cannot be parsed."""
