"""The query engine façade.

:class:`Engine` bundles a catalog, a planner and an executor behind a small
API mirroring how the paper's implementation sits inside PostgreSQL: register
relations, then run TP queries — either as logical plans built
programmatically or as SQL-ish strings — and get TP relations back.  The
engine evaluates physical plans by pulling tuples through the Volcano
operators, so NJ joins stream their windows exactly as the paper's pipelined
integration does.
"""

from __future__ import annotations

from typing import Sequence

from ..options import ExecutionOptions, deprecated_config_call
from ..parallel.plan import ParallelConfig
from ..relation import TPRelation
from ..stream import StreamDef, StreamQuery
from .catalog import Catalog
from .explain import explain_logical, explain_physical
from .logical import JoinStrategy, LogicalPlan
from .planner import Planner, PlannerConfig, merged_event_space
from .sql import parse_query


class Engine:
    """An in-memory TP query engine with a SQL-ish front end.

    ``options`` is the one execution-knob surface
    (:class:`repro.ExecutionOptions`): transport, placement, partitions,
    telemetry and the recovery knobs, applied to every continuous,
    dataflow and planner-routed stream query the engine runs.
    ``parallel_config`` keeps the planner *policy* knobs (worker ceiling,
    state-size targets); its legacy ``transport``/``placement`` kwargs
    still work but warn.  ``stream_config`` is the deprecated alias for
    ``options``.
    """

    def __init__(
        self,
        default_strategy: JoinStrategy = JoinStrategy.NJ,
        stream_config: ExecutionOptions | None = None,
        parallel_config: ParallelConfig | None = None,
        options: ExecutionOptions | None = None,
    ) -> None:
        if stream_config is not None:
            deprecated_config_call(
                "Engine(stream_config=...)",
                "pass the same object as Engine(options=...)",
            )
            if options is None:
                options = stream_config
        self._catalog = Catalog()
        self._planner = Planner(
            self._catalog,
            PlannerConfig(
                default_strategy=default_strategy,
                stream_config=options,
                parallel=parallel_config,
            ),
        )
        self._stream_config = options

    # ------------------------------------------------------------------ #
    # catalog management
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Catalog:
        """The engine's relation catalog."""
        return self._catalog

    def register(self, name: str, relation: TPRelation, replace: bool = False) -> None:
        """Register a relation so queries can refer to it by name."""
        self._catalog.register(name, relation, replace=replace)

    def register_stream(self, name: str, stream: StreamDef, replace: bool = False) -> None:
        """Register a stream so ``STREAM name`` scans can refer to it."""
        self._catalog.register_stream(name, stream, replace=replace)

    def continuous_query(
        self,
        name: str,
        kind: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]] = (),
        config: ExecutionOptions | None = None,
        replace: bool = False,
    ) -> StreamQuery:
        """Build a :class:`StreamQuery` and register it under ``name``."""
        query = StreamQuery(
            self._catalog, kind, left, right, on, config=config or self._stream_config
        )
        self._catalog.register_continuous_query(name, query, replace=replace)
        return query

    def dataflow_query(
        self,
        name: str,
        nodes: Sequence,
        config: ExecutionOptions | None = None,
        replace: bool = False,
    ):
        """Build a :class:`repro.dataflow.DataflowQuery` and register it.

        ``nodes`` is a sequence of :class:`repro.dataflow.NodeSpec` in
        topological order over this engine's registered streams.
        """
        from ..dataflow import DataflowQuery

        query = DataflowQuery(
            self._catalog, nodes, config=config or self._stream_config
        )
        self._catalog.register_dataflow(name, query, replace=replace)
        return query

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: LogicalPlan, compute_probabilities: bool = True) -> TPRelation:
        """Execute a logical plan and return the result as a TP relation."""
        physical = self._planner.plan(plan)
        events = self._merged_events(plan)
        with physical:
            tuples = list(physical)
        result = TPRelation(
            physical.output_schema(), tuples, events, name="result", check_constraint=False
        )
        return result.with_probabilities() if compute_probabilities else result

    def execute_sql(self, sql: str, compute_probabilities: bool = True) -> TPRelation:
        """Parse and execute a SQL-ish query string."""
        return self.execute(parse_query(sql).plan, compute_probabilities)

    def explain(self, plan: LogicalPlan) -> str:
        """Return the logical and physical EXPLAIN text for a plan."""
        physical = self._planner.plan(plan)
        return (
            "Logical plan:\n"
            + explain_logical(plan)
            + "\nPhysical plan:\n"
            + explain_physical(physical)
        )

    def explain_sql(self, sql: str) -> str:
        """Parse a query and return its EXPLAIN text."""
        return self.explain(parse_query(sql).plan)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _merged_events(self, plan: LogicalPlan):
        return merged_event_space(self._catalog, plan)


def execute_sql(
    sql: str,
    relations: dict[str, TPRelation],
    default_strategy: JoinStrategy = JoinStrategy.NJ,
    compute_probabilities: bool = True,
) -> TPRelation:
    """One-shot convenience: build an engine, register ``relations``, run ``sql``."""
    engine = Engine(default_strategy=default_strategy)
    for name, relation in relations.items():
        engine.register(name, relation)
    return engine.execute_sql(sql, compute_probabilities=compute_probabilities)
