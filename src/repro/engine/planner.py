"""Rule-based planner: logical plans → physical plans.

The planner mirrors, at small scale, the role of PostgreSQL's
optimizer in the paper's implementation: it decides which physical join
operator evaluates a TP join.  The default policy is

* honour an explicitly pinned strategy (``USING NJ`` / ``USING TA`` /
  ``USING NAIVE`` in the SQL front end) — the benchmarks use this to compare
  the implementations on identical plans;
* otherwise pick NJ, the paper's approach, unless the planner is constructed
  with ``prefer_ta=True`` (useful for demonstrating the baseline end-to-end).

Pushing selections below joins is the only rewrite performed; it is enough
for the example workloads and keeps the planner easy to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..parallel.plan import ParallelConfig, choose_partitions
from ..relation import TPRelation
from ..stream import StreamQueryConfig
from .catalog import Catalog
from .continuous import ContinuousJoinOperator, ContinuousScanOperator
from .errors import PlanError
from .iterators import PhysicalOperator
from .logical import (
    JoinKind,
    JoinStrategy,
    LogicalPlan,
    Project,
    Scan,
    Select,
    StreamScan,
    Timeslice,
    TPJoin,
)
from .physical import (
    FilterOperator,
    ParallelNJJoinOperator,
    ProjectOperator,
    ScanOperator,
    TimesliceOperator,
    join_operator_for,
)


@dataclass(frozen=True)
class PlannerConfig:
    """Planner policy knobs."""

    default_strategy: JoinStrategy = JoinStrategy.NJ
    push_down_selections: bool = True
    #: Execution knobs handed to continuous (stream) joins; ``None`` means
    #: single-partition inline execution.
    stream_config: Optional[StreamQueryConfig] = None
    #: Shard-planner knobs for process-parallel batch joins; ``None`` (the
    #: default) disables parallel planning and every join runs serially.
    parallel: Optional[ParallelConfig] = None


class Planner:
    """Turn logical plans into physical operator trees over a catalog."""

    def __init__(self, catalog: Catalog, config: PlannerConfig | None = None) -> None:
        self._catalog = catalog
        self._config = config or PlannerConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def plan(self, logical: LogicalPlan) -> PhysicalOperator:
        """Produce the physical plan for a logical plan."""
        rewritten = self._push_down(logical) if self._config.push_down_selections else logical
        return self._physicalise(rewritten)

    def resolve_strategy(self, requested: JoinStrategy) -> JoinStrategy:
        """Resolve AUTO to the planner's default strategy."""
        if requested is JoinStrategy.AUTO:
            return self._config.default_strategy
        return requested

    # ------------------------------------------------------------------ #
    # rewriting
    # ------------------------------------------------------------------ #
    def _push_down(self, plan: LogicalPlan) -> LogicalPlan:
        """Push equality selections below TP joins when they bind one side."""
        if isinstance(plan, Select):
            child = self._push_down(plan.child)
            if isinstance(child, TPJoin):
                pushed = self._try_push_into_join(plan, child)
                if pushed is not None:
                    return pushed
            return Select(child, plan.attribute, plan.value)
        if isinstance(plan, Project):
            return Project(self._push_down(plan.child), plan.attributes)
        if isinstance(plan, Timeslice):
            return Timeslice(self._push_down(plan.child), plan.interval)
        if isinstance(plan, TPJoin):
            return TPJoin(
                self._push_down(plan.left),
                self._push_down(plan.right),
                plan.kind,
                plan.on,
                plan.strategy,
            )
        return plan

    def _try_push_into_join(self, select: Select, join: TPJoin) -> LogicalPlan | None:
        if isinstance(join.left, StreamScan) or isinstance(join.right, StreamScan):
            # A continuous join consumes the streams' own replays; selections
            # stay above it and filter the finalized output.
            return None
        left_schema = self._output_schema(join.left)
        right_schema = self._output_schema(join.right)
        if select.attribute in left_schema:
            new_left = Select(join.left, select.attribute, select.value)
            return TPJoin(new_left, join.right, join.kind, join.on, join.strategy)
        if select.attribute in right_schema and join.kind in (
            JoinKind.INNER,
            JoinKind.LEFT_OUTER,
        ):
            # Safe only for the sides whose tuples cannot be padded with nulls.
            new_right = Select(join.right, select.attribute, select.value)
            return TPJoin(join.left, new_right, join.kind, join.on, join.strategy)
        return None

    def _output_schema(self, plan: LogicalPlan):
        if isinstance(plan, Scan):
            return self._catalog.lookup(plan.relation_name).schema
        if isinstance(plan, StreamScan):
            return self._catalog.lookup_stream(plan.stream_name).schema
        if isinstance(plan, (Select, Timeslice)):
            return self._output_schema(plan.child)
        if isinstance(plan, Project):
            return self._output_schema(plan.child).project(plan.attributes)
        if isinstance(plan, TPJoin):
            left = self._output_schema(plan.left)
            right = self._output_schema(plan.right)
            if plan.kind is JoinKind.ANTI:
                return left
            left_names = set(left.attributes)
            renamed = tuple(
                f"s.{name}" if name in left_names else name for name in right.attributes
            )
            from ..relation import Schema

            return Schema(left.attributes + renamed)
        raise PlanError(f"cannot infer schema of {plan.describe()}")

    # ------------------------------------------------------------------ #
    # physicalisation
    # ------------------------------------------------------------------ #
    def _physicalise(self, plan: LogicalPlan) -> PhysicalOperator:
        if isinstance(plan, Scan):
            return ScanOperator(self._catalog.lookup(plan.relation_name), plan.relation_name)
        if isinstance(plan, StreamScan):
            return ContinuousScanOperator(
                self._catalog.lookup_stream(plan.stream_name), plan.stream_name
            )
        if isinstance(plan, Select):
            return FilterOperator(self._physicalise(plan.child), plan.attribute, plan.value)
        if isinstance(plan, Timeslice):
            return TimesliceOperator(self._physicalise(plan.child), plan.interval)
        if isinstance(plan, Project):
            return ProjectOperator(
                self._physicalise(plan.child), plan.attributes, self._merged_events(plan)
            )
        if isinstance(plan, TPJoin):
            left_is_stream = isinstance(plan.left, StreamScan)
            right_is_stream = isinstance(plan.right, StreamScan)
            if left_is_stream != right_is_stream:
                raise PlanError(
                    "a TP join must be stream × stream or relation × relation; "
                    "register the stored side as a replay stream to mix them"
                )
            if left_is_stream and right_is_stream:
                # Continuous execution is the watermark-driven NJ pipeline;
                # pinning NJ is redundant but true, pinning anything else
                # would be silently ignored — reject it instead.
                if plan.strategy not in (JoinStrategy.AUTO, JoinStrategy.NJ):
                    raise PlanError(
                        f"USING {plan.strategy.value.upper()} cannot be honoured on a "
                        "stream join: continuous execution always uses the NJ pipeline"
                    )
                return self._continuous_join(plan)
            strategy = self.resolve_strategy(plan.strategy)
            workers = self._parallel_workers(plan, strategy)
            if workers > 1:
                return ParallelNJJoinOperator(
                    self._physicalise(plan.left),
                    self._physicalise(plan.right),
                    plan.kind,
                    plan.on,
                    self._merged_events(plan),
                    workers,
                )
            return join_operator_for(
                strategy,
                self._physicalise(plan.left),
                self._physicalise(plan.right),
                plan.kind,
                plan.on,
                self._merged_events(plan),
            )
        raise PlanError(f"unsupported logical node {type(plan).__name__}")

    def _parallel_workers(self, plan: TPJoin, strategy: JoinStrategy) -> int:
        """Partition count for a stored-relation TP join (1 means serial).

        Parallel plans are considered only when the planner was configured
        with a :class:`~repro.parallel.plan.ParallelConfig`, the join runs
        the NJ pipeline (TA and the naive oracle are baselines measured
        as-is) and an equi-θ provides a partitioning key.  The count comes
        from the catalog's state-size estimate (open positives × matches).
        """
        if self._config.parallel is None or strategy is not JoinStrategy.NJ:
            return 1
        if not plan.on:
            return 1
        from .logical import find_scans

        left_scans = find_scans(plan.left)
        right_scans = find_scans(plan.right)
        if not left_scans or not right_scans:
            return 1
        state, left_cardinality, right_distinct = self._catalog.join_state_estimate(
            [scan.relation_name for scan in left_scans],
            [scan.relation_name for scan in right_scans],
            plan.on,
        )
        return choose_partitions(
            state, left_cardinality, self._config.parallel, distinct_keys=right_distinct
        )

    def _continuous_join(self, plan: TPJoin) -> PhysicalOperator:
        """Fuse two stream scans under a TP join into a continuous join."""
        assert isinstance(plan.left, StreamScan) and isinstance(plan.right, StreamScan)
        left_scan = ContinuousScanOperator(
            self._catalog.lookup_stream(plan.left.stream_name), plan.left.stream_name
        )
        right_scan = ContinuousScanOperator(
            self._catalog.lookup_stream(plan.right.stream_name), plan.right.stream_name
        )
        return ContinuousJoinOperator(
            self._catalog,
            left_scan,
            right_scan,
            plan.left.stream_name,
            plan.right.stream_name,
            plan.kind,
            plan.on,
            config=self._config.stream_config,
        )

    def _merged_events(self, plan: LogicalPlan):
        return merged_event_space(self._catalog, plan)


def merged_event_space(catalog: Catalog, plan: LogicalPlan):
    """Merge the event spaces of every relation/stream scanned below ``plan``.

    Shared by the planner (for operators that need the space at build time)
    and the executor (for wrapping results); both must agree on it.
    """
    from .logical import find_scans, find_stream_scans

    scans = find_scans(plan)
    stream_scans = find_stream_scans(plan)
    if not scans and not stream_scans:
        raise PlanError("plan contains no scans")
    spaces = [catalog.lookup(scan.relation_name).events for scan in scans]
    spaces.extend(
        catalog.lookup_stream(scan.stream_name).events for scan in stream_scans
    )
    events = spaces[0]
    for space in spaces[1:]:
        events = events.merge(space)
    return events


def base_relation(catalog: Catalog, name: str) -> TPRelation:
    """Convenience lookup used by the executor and tests."""
    return catalog.lookup(name)
