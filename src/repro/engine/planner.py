"""Rule-based planner: logical plans → physical plans.

The planner mirrors, at small scale, the role of PostgreSQL's
optimizer in the paper's implementation: it decides which physical join
operator evaluates a TP join.  The default policy is

* honour an explicitly pinned strategy (``USING NJ`` / ``USING TA`` /
  ``USING NAIVE`` in the SQL front end) — the benchmarks use this to compare
  the implementations on identical plans;
* otherwise pick NJ, the paper's approach, unless the planner is constructed
  with ``prefer_ta=True`` (useful for demonstrating the baseline end-to-end).

Pushing selections below joins is the only rewrite performed; it is enough
for the example workloads and keeps the planner easy to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..parallel.plan import ParallelConfig, choose_partitions
from ..relation import TPRelation
from ..options import ExecutionOptions
from .catalog import Catalog
from .continuous import ContinuousJoinOperator, ContinuousScanOperator
from .errors import PlanError
from .iterators import PhysicalOperator
from .logical import (
    JoinKind,
    JoinStrategy,
    LogicalPlan,
    Project,
    Scan,
    Select,
    StreamScan,
    Timeslice,
    TPJoin,
    walk,
)
from .physical import (
    FilterOperator,
    ParallelNJJoinOperator,
    ProjectOperator,
    ScanOperator,
    TimesliceOperator,
    join_operator_for,
)


@dataclass(frozen=True)
class PlannerConfig:
    """Planner policy knobs."""

    default_strategy: JoinStrategy = JoinStrategy.NJ
    push_down_selections: bool = True
    #: Execution knobs handed to continuous (stream) joins; ``None`` means
    #: single-partition inline execution.
    stream_config: Optional[ExecutionOptions] = None
    #: Shard-planner knobs for process-parallel batch joins; ``None`` (the
    #: default) disables parallel planning and every join runs serially.
    parallel: Optional[ParallelConfig] = None


class Planner:
    """Turn logical plans into physical operator trees over a catalog."""

    def __init__(self, catalog: Catalog, config: PlannerConfig | None = None) -> None:
        self._catalog = catalog
        self._config = config or PlannerConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def plan(self, logical: LogicalPlan) -> PhysicalOperator:
        """Produce the physical plan for a logical plan."""
        rewritten = self._push_down(logical) if self._config.push_down_selections else logical
        return self._physicalise(rewritten)

    def resolve_strategy(self, requested: JoinStrategy) -> JoinStrategy:
        """Resolve AUTO to the planner's default strategy."""
        if requested is JoinStrategy.AUTO:
            return self._config.default_strategy
        return requested

    # ------------------------------------------------------------------ #
    # rewriting
    # ------------------------------------------------------------------ #
    def _push_down(self, plan: LogicalPlan) -> LogicalPlan:
        """Push equality selections below TP joins when they bind one side."""
        if isinstance(plan, Select):
            child = self._push_down(plan.child)
            if isinstance(child, TPJoin):
                pushed = self._try_push_into_join(plan, child)
                if pushed is not None:
                    return pushed
            return Select(child, plan.attribute, plan.value)
        if isinstance(plan, Project):
            return Project(self._push_down(plan.child), plan.attributes)
        if isinstance(plan, Timeslice):
            return Timeslice(self._push_down(plan.child), plan.interval)
        if isinstance(plan, TPJoin):
            return TPJoin(
                self._push_down(plan.left),
                self._push_down(plan.right),
                plan.kind,
                plan.on,
                plan.strategy,
            )
        return plan

    def _try_push_into_join(self, select: Select, join: TPJoin) -> LogicalPlan | None:
        from .logical import find_stream_scans

        if find_stream_scans(join):
            # A continuous join (or dataflow tree) consumes the streams' own
            # replays; selections stay above it and filter settled output.
            return None
        left_schema = self._output_schema(join.left)
        right_schema = self._output_schema(join.right)
        if select.attribute in left_schema:
            new_left = Select(join.left, select.attribute, select.value)
            return TPJoin(new_left, join.right, join.kind, join.on, join.strategy)
        if select.attribute in right_schema and join.kind in (
            JoinKind.INNER,
            JoinKind.LEFT_OUTER,
        ):
            # Safe only for the sides whose tuples cannot be padded with nulls.
            new_right = Select(join.right, select.attribute, select.value)
            return TPJoin(join.left, new_right, join.kind, join.on, join.strategy)
        return None

    def _output_schema(self, plan: LogicalPlan):
        if isinstance(plan, Scan):
            return self._catalog.lookup(plan.relation_name).schema
        if isinstance(plan, StreamScan):
            return self._catalog.lookup_stream(plan.stream_name).schema
        if isinstance(plan, (Select, Timeslice)):
            return self._output_schema(plan.child)
        if isinstance(plan, Project):
            return self._output_schema(plan.child).project(plan.attributes)
        if isinstance(plan, TPJoin):
            left = self._output_schema(plan.left)
            right = self._output_schema(plan.right)
            if plan.kind is JoinKind.ANTI:
                return left
            left_names = set(left.attributes)
            renamed = tuple(
                f"s.{name}" if name in left_names else name for name in right.attributes
            )
            from ..relation import Schema

            return Schema(left.attributes + renamed)
        raise PlanError(f"cannot infer schema of {plan.describe()}")

    # ------------------------------------------------------------------ #
    # physicalisation
    # ------------------------------------------------------------------ #
    def _physicalise(self, plan: LogicalPlan) -> PhysicalOperator:
        if isinstance(plan, Scan):
            return ScanOperator(self._catalog.lookup(plan.relation_name), plan.relation_name)
        if isinstance(plan, StreamScan):
            return ContinuousScanOperator(
                self._catalog.lookup_stream(plan.stream_name), plan.stream_name
            )
        if isinstance(plan, Select):
            return FilterOperator(self._physicalise(plan.child), plan.attribute, plan.value)
        if isinstance(plan, Timeslice):
            return TimesliceOperator(self._physicalise(plan.child), plan.interval)
        if isinstance(plan, Project):
            return ProjectOperator(
                self._physicalise(plan.child), plan.attributes, self._merged_events(plan)
            )
        if isinstance(plan, TPJoin):
            left_streamness = self._streamness(plan.left)
            right_streamness = self._streamness(plan.right)
            if "stream" in (left_streamness, right_streamness) and (
                left_streamness != "stream" or right_streamness != "stream"
            ):
                raise PlanError(
                    "a TP join must be stream × stream or relation × relation; "
                    "register the stored side as a replay stream to mix them"
                )
            if left_streamness == "stream" and right_streamness == "stream":
                # Continuous execution is the watermark-driven NJ pipeline;
                # pinning NJ is redundant but true, pinning anything else
                # would be silently ignored — reject it instead.
                for node in walk(plan):
                    if isinstance(node, TPJoin) and node.strategy not in (
                        JoinStrategy.AUTO,
                        JoinStrategy.NJ,
                    ):
                        raise PlanError(
                            f"USING {node.strategy.value.upper()} cannot be honoured "
                            "on a stream join: continuous execution always uses the "
                            "NJ pipeline"
                        )
                early = (
                    self._config.stream_config is not None
                    and self._config.stream_config.early_emit
                )
                if (
                    isinstance(plan.left, StreamScan)
                    and isinstance(plan.right, StreamScan)
                    and not early
                ):
                    # A single binary stream join without early emission keeps
                    # the direct continuous operator; join *trees* (and any
                    # early-emitting query) compile to a dataflow graph.
                    return self._continuous_join(plan)
                return self._dataflow_join(plan)
            strategy = self.resolve_strategy(plan.strategy)
            workers = self._parallel_workers(plan, strategy)
            left_operator = self._physicalise(plan.left)
            right_operator = self._physicalise(plan.right)
            on = self._resolve_on(
                plan.on, left_operator.output_schema(), right_operator.output_schema()
            )
            if workers > 1:
                return ParallelNJJoinOperator(
                    left_operator,
                    right_operator,
                    plan.kind,
                    on,
                    self._merged_events(plan),
                    workers,
                )
            return join_operator_for(
                strategy,
                left_operator,
                right_operator,
                plan.kind,
                on,
                self._merged_events(plan),
            )
        raise PlanError(f"unsupported logical node {type(plan).__name__}")

    def _parallel_workers(self, plan: TPJoin, strategy: JoinStrategy) -> int:
        """Partition count for a stored-relation TP join (1 means serial).

        Parallel plans are considered only when the planner was configured
        with a :class:`~repro.parallel.plan.ParallelConfig`, the join runs
        the NJ pipeline (TA and the naive oracle are baselines measured
        as-is) and an equi-θ provides a partitioning key.  The count comes
        from the catalog's state-size estimate (open positives × matches).
        """
        if self._config.parallel is None or strategy is not JoinStrategy.NJ:
            return 1
        if not plan.on:
            return 1
        from .logical import find_scans

        left_scans = find_scans(plan.left)
        right_scans = find_scans(plan.right)
        if not left_scans or not right_scans:
            return 1
        state, left_cardinality, right_distinct = self._catalog.join_state_estimate(
            [scan.relation_name for scan in left_scans],
            [scan.relation_name for scan in right_scans],
            plan.on,
        )
        return choose_partitions(
            state, left_cardinality, self._config.parallel, distinct_keys=right_distinct
        )

    @staticmethod
    def _resolve_reference(schema, name: str) -> str:
        """Map a (possibly qualified) attribute reference to a schema attribute.

        Chained joins accumulate combined schemas in which a clashing
        attribute of a non-first input is prefixed with that input's name
        (``sb.Loc``).  The SQL layer keeps such qualifiers; here they are
        resolved against the *real* schema: the exact (prefixed) name wins,
        a bare match means the attribute never clashed, and as a fallback a
        unique ``*.attr`` suffix match absorbs prefix-spelling differences.
        """
        if name in schema:
            return name
        if "." in name:
            bare = name.split(".", 1)[1]
            # A qualified reference names a *non-first* input, so when the
            # attribute clashed (any "*.attr" is present) the prefixed
            # column is the one meant — the bare column belongs to the
            # left-most input.  Only when it never clashed does the bare
            # name refer to the qualified input's own column.
            suffix_matches = [
                attribute
                for attribute in schema.attributes
                if attribute.endswith(f".{bare}")
            ]
            if len(suffix_matches) == 1:
                return suffix_matches[0]
            if len(suffix_matches) > 1:
                raise PlanError(
                    f"ambiguous attribute reference {name!r}: matches "
                    f"{suffix_matches}"
                )
            if bare in schema:
                return bare
        raise PlanError(
            f"unknown attribute reference {name!r}; available: "
            f"{list(schema.attributes)}"
        )

    def _resolve_on(self, on, left_schema, right_schema):
        """Resolve every θ pair of a join against its input schemas."""
        return tuple(
            (
                self._resolve_reference(left_schema, left_attribute),
                self._resolve_reference(right_schema, right_attribute),
            )
            for left_attribute, right_attribute in on
        )

    def _stream_exec_config(self) -> Optional[ExecutionOptions]:
        """The execution options continuous/dataflow plans run under.

        ``Engine(options=ExecutionOptions(transport="sockets",
        placement=...))`` is the one-stop switch to distributed execution;
        a legacy :class:`~repro.parallel.plan.ParallelConfig` that pins a
        runtime ``transport`` (and optionally a ``placement``) still
        overrides the options' own choice for compatibility.
        """
        config = self._config.stream_config
        parallel = self._config.parallel
        if parallel is None or parallel.transport is None:
            return config
        from dataclasses import replace

        base = config or ExecutionOptions()
        return replace(
            base,
            transport=parallel.transport,
            placement=parallel.placement or base.placement,
        )

    def _streamness(self, plan: LogicalPlan) -> str:
        """Classify a join input subtree: ``stream``, ``relation`` or ``mixed``.

        A *stream* subtree is a :class:`StreamScan` or a TP join tree whose
        leaves are all stream scans — the shape the dataflow compiler
        accepts.  Anything containing a relation scan (or an intermediate
        non-join operator) is ``relation``; a tree mixing both is ``mixed``
        (rejected by the caller).
        """
        if isinstance(plan, StreamScan):
            return "stream"
        if isinstance(plan, TPJoin):
            parts = {self._streamness(plan.left), self._streamness(plan.right)}
            if parts == {"stream"}:
                return "stream"
            if "stream" in parts:
                return "mixed"
            return "relation"
        return "relation"

    def _dataflow_join(self, plan: TPJoin) -> PhysicalOperator:
        """Compile a stream join tree into a retractable dataflow graph.

        With a :class:`~repro.parallel.plan.ParallelConfig`, every node also
        gets a partition degree from the stream-statistics state model: hot
        stages (large expected window state) fan out into more key-routed
        workers than cold ones, multiplying the pipeline axis.
        """
        from ..dataflow import NodeSpec
        from .continuous import CONTINUOUS_KINDS, DataflowJoinOperator

        from ..stream import continuous_output_schema

        nodes: list[NodeSpec] = []
        scans: list[ContinuousScanOperator] = []

        def build(subtree: LogicalPlan):
            if isinstance(subtree, StreamScan):
                stream_def = self._catalog.lookup_stream(subtree.stream_name)
                scans.append(ContinuousScanOperator(stream_def, subtree.stream_name))
                return subtree.stream_name, stream_def.schema, (subtree.stream_name,)
            assert isinstance(subtree, TPJoin)
            left_name, left_schema, left_streams = build(subtree.left)
            right_name, right_schema, right_streams = build(subtree.right)
            name = f"node{len(nodes) + 1}"
            kind = CONTINUOUS_KINDS[subtree.kind]
            # Qualified references from chained ON clauses resolve against
            # the accumulated left schema (prefixed name when it clashed,
            # bare name when it never did).
            on = self._resolve_on(subtree.on, left_schema, right_schema)
            partitions = self._dataflow_partitions(
                left_streams,
                right_streams,
                on,
                right_is_stream=isinstance(subtree.right, StreamScan),
            )
            nodes.append(
                NodeSpec(name, kind, left_name, right_name, on, partitions=partitions)
            )
            return (
                name,
                continuous_output_schema(kind, left_schema, right_schema, right_name),
                left_streams + right_streams,
            )

        build(plan)
        return DataflowJoinOperator(
            self._catalog, tuple(scans), nodes, config=self._stream_exec_config()
        )

    def _dataflow_partitions(
        self,
        left_streams: tuple[str, ...],
        right_streams: tuple[str, ...],
        on: tuple[tuple[str, str], ...],
        right_is_stream: bool,
    ) -> int:
        """Partition degree for one dataflow stage (1 means a single worker).

        Considered only when the planner carries a
        :class:`~repro.parallel.plan.ParallelConfig` and the stage has an
        equi-θ to route by.  The estimate sums the expected statistics of
        the source streams under each input subtree; the distinct-key cap
        applies only when the right input is a single stream whose key
        selectivity is actually known.
        """
        if self._config.parallel is None or not on:
            return 1
        state, left_cardinality, right_distinct = (
            self._catalog.stream_join_state_estimate(
                list(left_streams), list(right_streams), on
            )
        )
        distinct = right_distinct if right_is_stream and right_distinct > 0 else None
        return choose_partitions(
            state, left_cardinality, self._config.parallel, distinct_keys=distinct
        )

    def _continuous_join(self, plan: TPJoin) -> PhysicalOperator:
        """Fuse two stream scans under a TP join into a continuous join."""
        assert isinstance(plan.left, StreamScan) and isinstance(plan.right, StreamScan)
        left_scan = ContinuousScanOperator(
            self._catalog.lookup_stream(plan.left.stream_name), plan.left.stream_name
        )
        right_scan = ContinuousScanOperator(
            self._catalog.lookup_stream(plan.right.stream_name), plan.right.stream_name
        )
        return ContinuousJoinOperator(
            self._catalog,
            left_scan,
            right_scan,
            plan.left.stream_name,
            plan.right.stream_name,
            plan.kind,
            plan.on,
            config=self._stream_exec_config(),
        )

    def _merged_events(self, plan: LogicalPlan):
        return merged_event_space(self._catalog, plan)


def merged_event_space(catalog: Catalog, plan: LogicalPlan):
    """Merge the event spaces of every relation/stream scanned below ``plan``.

    Shared by the planner (for operators that need the space at build time)
    and the executor (for wrapping results); both must agree on it.
    """
    from .logical import find_scans, find_stream_scans

    scans = find_scans(plan)
    stream_scans = find_stream_scans(plan)
    if not scans and not stream_scans:
        raise PlanError("plan contains no scans")
    spaces = [catalog.lookup(scan.relation_name).events for scan in scans]
    spaces.extend(
        catalog.lookup_stream(scan.stream_name).events for scan in stream_scans
    )
    events = spaces[0]
    for space in spaces[1:]:
        events = events.merge(space)
    return events


def base_relation(catalog: Catalog, name: str) -> TPRelation:
    """Convenience lookup used by the executor and tests."""
    return catalog.lookup(name)
