"""Relation and stream catalog.

The catalog plays the role of PostgreSQL's system catalog for this library's
query engine: it maps relation names to in-memory :class:`TPRelation`
instances and exposes the statistics the planner consults (cardinalities,
distinct join-key counts) when choosing between the NJ and TA physical
operators.  Registered *streams* (:class:`repro.stream.StreamDef`) live in a
separate namespace — a scan says ``STREAM name`` to target one — and named
continuous queries can be registered alongside them so long-running
deployments address queries, not plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Sequence

from ..relation import TPRelation
from .errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..dataflow import DataflowQuery
    from ..stream import StreamDef, StreamQuery


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Planner-visible statistics of one catalogued relation."""

    cardinality: int
    attribute_distinct_counts: dict[str, int]
    timespan_length: int

    def distinct(self, attribute: str) -> int:
        """Distinct-value count of one attribute (0 when unknown)."""
        return self.attribute_distinct_counts.get(attribute, 0)


class Catalog:
    """A named collection of TP relations and streams, with statistics."""

    __slots__ = (
        "_relations",
        "_stats",
        "_streams",
        "_continuous_queries",
        "_dataflows",
        "_standing_queries",
    )

    def __init__(self) -> None:
        self._relations: Dict[str, TPRelation] = {}
        self._stats: Dict[str, RelationStats] = {}
        self._streams: Dict[str, "StreamDef"] = {}
        self._continuous_queries: Dict[str, "StreamQuery"] = {}
        self._dataflows: Dict[str, "DataflowQuery"] = {}
        self._standing_queries: Dict[str, "DataflowQuery"] = {}

    def register(self, name: str, relation: TPRelation, replace: bool = False) -> None:
        """Register a relation under ``name``.

        Raises:
            CatalogError: if the name is taken and ``replace`` is not set.
        """
        if name in self._relations and not replace:
            raise CatalogError(f"relation {name!r} already registered")
        self._relations[name] = relation
        self._stats[name] = _compute_stats(relation)

    def lookup(self, name: str) -> TPRelation:
        """Return the relation registered under ``name``.

        Raises:
            CatalogError: if the name is unknown.
        """
        try:
            return self._relations[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown relation {name!r}; registered: {sorted(self._relations)}"
            ) from exc

    def stats(self, name: str) -> RelationStats:
        """Return the statistics of the relation registered under ``name``."""
        self.lookup(name)
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All registered relation names, sorted."""
        return sorted(self._relations)

    # ------------------------------------------------------------------ #
    # streams and continuous queries
    # ------------------------------------------------------------------ #
    def register_stream(self, name: str, stream: "StreamDef", replace: bool = False) -> None:
        """Register a stream definition under ``name`` (separate namespace).

        Raises:
            CatalogError: if the name is taken and ``replace`` is not set.
        """
        if name in self._streams and not replace:
            raise CatalogError(f"stream {name!r} already registered")
        self._streams[name] = stream

    def lookup_stream(self, name: str) -> "StreamDef":
        """Return the stream registered under ``name``.

        Raises:
            CatalogError: if the name is unknown.
        """
        try:
            return self._streams[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown stream {name!r}; registered: {sorted(self._streams)}"
            ) from exc

    def is_stream(self, name: str) -> bool:
        """Whether ``name`` refers to a registered stream."""
        return name in self._streams

    def stream_names(self) -> list[str]:
        """All registered stream names, sorted."""
        return sorted(self._streams)

    # ------------------------------------------------------------------ #
    # planner estimates
    # ------------------------------------------------------------------ #
    def join_state_estimate(
        self,
        left_names: Sequence[str],
        right_names: Sequence[str],
        on: tuple[tuple[str, str], ...],
    ) -> tuple[float, int, int]:
        """Estimate a TP join's state size for the shard planner.

        Implements the ROADMAP cost model: the state a join holds is
        ``open positives × matches per positive``, where the match count is
        estimated from the negative side's key selectivity (cardinality over
        distinct join-key values).  Returns ``(state_estimate,
        left_cardinality, right_distinct_keys)`` — everything the partition
        chooser needs, including the key-count cap (a single key can never
        be split across shards).
        """
        from ..parallel.plan import estimate_join_state

        left_cardinality = sum(self.stats(name).cardinality for name in left_names)
        right_cardinality = sum(self.stats(name).cardinality for name in right_names)
        right_distinct = 1
        if on:
            key_attribute = on[0][1]
            right_distinct = max(
                1,
                sum(self.stats(name).distinct(key_attribute) for name in right_names),
            )
        state = estimate_join_state(left_cardinality, right_cardinality, right_distinct)
        return state, left_cardinality, right_distinct

    def stream_join_state_estimate(
        self,
        left_names: Sequence[str],
        right_names: Sequence[str],
        on: tuple[tuple[str, str], ...],
    ) -> tuple[float, int, int]:
        """The :meth:`join_state_estimate` cost model over registered streams.

        Dataflow nodes join streams (or other nodes, whose inputs bottom out
        in streams), so the partition planner consults the streams' expected
        statistics (:class:`repro.stream.StreamStats`) instead of relation
        stats.  Streams without statistics contribute zero cardinality — an
        unknown input never justifies fanning a stage out.

        Unlike :meth:`join_state_estimate`, the returned
        ``right_distinct_keys`` is **0 when the key selectivity is
        unknown** (no stats, or stats without the join attribute), so the
        planner can distinguish "one distinct key, never split" from "no
        idea, don't cap"; the state estimate itself still assumes at least
        one key.
        """
        from ..parallel.plan import estimate_join_state

        def stats_of(name: str):
            return self.lookup_stream(name).stats

        left_cardinality = sum(
            stats.cardinality
            for stats in (stats_of(name) for name in left_names)
            if stats is not None
        )
        right_stats = [
            stats
            for stats in (stats_of(name) for name in right_names)
            if stats is not None
        ]
        right_cardinality = sum(stats.cardinality for stats in right_stats)
        right_distinct = 0
        if on:
            key_attribute = on[0][1]
            right_distinct = sum(
                stats.distinct(key_attribute) for stats in right_stats
            )
        state = estimate_join_state(
            left_cardinality, right_cardinality, max(1, right_distinct)
        )
        return state, left_cardinality, right_distinct

    def register_continuous_query(
        self, name: str, query: "StreamQuery", replace: bool = False
    ) -> None:
        """Register a continuous query under ``name`` for later execution."""
        if name in self._continuous_queries and not replace:
            raise CatalogError(f"continuous query {name!r} already registered")
        self._continuous_queries[name] = query

    def lookup_continuous_query(self, name: str) -> "StreamQuery":
        """Return the continuous query registered under ``name``."""
        try:
            return self._continuous_queries[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown continuous query {name!r}; registered: "
                f"{sorted(self._continuous_queries)}"
            ) from exc

    def register_dataflow(
        self, name: str, query: "DataflowQuery", replace: bool = False
    ) -> None:
        """Register a dataflow graph query under ``name`` for later execution.

        Dataflow queries live in their own namespace, like continuous
        queries: long-running deployments address graphs by name, not by
        re-supplying node specs.
        """
        if name in self._dataflows and not replace:
            raise CatalogError(f"dataflow {name!r} already registered")
        self._dataflows[name] = query

    def lookup_dataflow(self, name: str) -> "DataflowQuery":
        """Return the dataflow query registered under ``name``."""
        try:
            return self._dataflows[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown dataflow {name!r}; registered: {sorted(self._dataflows)}"
            ) from exc

    def dataflow_names(self) -> list[str]:
        """All registered dataflow names, sorted."""
        return sorted(self._dataflows)

    def register_standing_query(
        self, name: str, query: "DataflowQuery", replace: bool = False
    ) -> None:
        """Register a served standing query under ``name``.

        Standing queries are the serving layer's namespace
        (:class:`repro.serve.StandingQueryService`): dataflow queries that
        clients subscribe to by name, with lifecycle and fan-out managed by
        the service rather than run once by the engine.
        """
        if name in self._standing_queries and not replace:
            raise CatalogError(f"standing query {name!r} already registered")
        self._standing_queries[name] = query

    def lookup_standing_query(self, name: str) -> "DataflowQuery":
        """Return the standing query registered under ``name``."""
        try:
            return self._standing_queries[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown standing query {name!r}; registered: "
                f"{sorted(self._standing_queries)}"
            ) from exc

    def unregister_standing_query(self, name: str) -> None:
        """Drop a standing query's catalog entry (missing names are ignored)."""
        self._standing_queries.pop(name, None)

    def standing_query_names(self) -> list[str]:
        """All registered standing-query names, sorted."""
        return sorted(self._standing_queries)


def _compute_stats(relation: TPRelation) -> RelationStats:
    distinct_counts = {
        attribute: len(set(relation.attribute_values(attribute)))
        for attribute in relation.schema.attributes
    }
    timespan = relation.timespan()
    return RelationStats(
        cardinality=len(relation),
        attribute_distinct_counts=distinct_counts,
        timespan_length=0 if timespan is None else timespan.duration,
    )
