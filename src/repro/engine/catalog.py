"""Relation catalog.

The catalog plays the role of PostgreSQL's system catalog for this library's
query engine: it maps relation names to in-memory :class:`TPRelation`
instances and exposes the statistics the planner consults (cardinalities,
distinct join-key counts) when choosing between the NJ and TA physical
operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from ..relation import TPRelation
from .errors import CatalogError


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Planner-visible statistics of one catalogued relation."""

    cardinality: int
    attribute_distinct_counts: dict[str, int]
    timespan_length: int

    def distinct(self, attribute: str) -> int:
        """Distinct-value count of one attribute (0 when unknown)."""
        return self.attribute_distinct_counts.get(attribute, 0)


class Catalog:
    """A named collection of TP relations, with statistics."""

    __slots__ = ("_relations", "_stats")

    def __init__(self) -> None:
        self._relations: Dict[str, TPRelation] = {}
        self._stats: Dict[str, RelationStats] = {}

    def register(self, name: str, relation: TPRelation, replace: bool = False) -> None:
        """Register a relation under ``name``.

        Raises:
            CatalogError: if the name is taken and ``replace`` is not set.
        """
        if name in self._relations and not replace:
            raise CatalogError(f"relation {name!r} already registered")
        self._relations[name] = relation
        self._stats[name] = _compute_stats(relation)

    def lookup(self, name: str) -> TPRelation:
        """Return the relation registered under ``name``.

        Raises:
            CatalogError: if the name is unknown.
        """
        try:
            return self._relations[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown relation {name!r}; registered: {sorted(self._relations)}"
            ) from exc

    def stats(self, name: str) -> RelationStats:
        """Return the statistics of the relation registered under ``name``."""
        self.lookup(name)
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All registered relation names, sorted."""
        return sorted(self._relations)


def _compute_stats(relation: TPRelation) -> RelationStats:
    distinct_counts = {
        attribute: len(set(relation.attribute_values(attribute)))
        for attribute in relation.schema.attributes
    }
    timespan = relation.timespan()
    return RelationStats(
        cardinality=len(relation),
        attribute_distinct_counts=distinct_counts,
        timespan_length=0 if timespan is None else timespan.duration,
    )
