"""Physical operators.

Each operator implements the Volcano protocol of
:class:`repro.engine.iterators.PhysicalOperator` and produces
:class:`TPTuple` instances.  The two TP join operators differ exactly the way
the paper's two compared systems differ:

* :class:`NJJoinOperator` pipelines the window computation (overlap join →
  LAWAU → LAWAN) through the streaming generators of
  :mod:`repro.core.streaming`; nothing is replicated and output tuples are
  produced incrementally.
* :class:`TAJoinOperator` evaluates the same join the Temporal Alignment way:
  it materialises its inputs, runs the union-based TA plan (with its repeated
  conventional joins, alignment replication and duplicate-removing union) and
  only then streams the result out.

Probabilities are computed lazily by the executor, not inside the join
operators, so benchmark measurements isolate the window computation the paper
measures.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..baselines.naive import naive_anti_join, naive_full_outer_join, naive_left_outer_join
from ..baselines.temporal_alignment import (
    ta_anti_join,
    ta_full_outer_join,
    ta_left_outer_join,
)
from ..core.joins import (
    tp_anti_join,
    tp_full_outer_join,
    tp_inner_join,
    tp_left_outer_join,
    tp_right_outer_join,
)
from ..relation import (
    Schema,
    TPRelation,
    TPTuple,
    ThetaCondition,
    project as project_relation,
    theta_or_true,
)
from ..temporal import Interval
from .errors import PlanError
from .iterators import PhysicalOperator
from .logical import JoinKind, JoinStrategy


class ScanOperator(PhysicalOperator):
    """Scan an in-memory TP relation."""

    def __init__(self, relation: TPRelation, label: str = "") -> None:
        super().__init__()
        self._relation = relation
        self._label = label or relation.name

    def output_schema(self) -> Schema:
        return self._relation.schema

    def relation(self) -> TPRelation:
        """The scanned relation (join operators pull it whole)."""
        return self._relation

    def describe(self) -> str:
        return f"Scan {self._label} ({len(self._relation)} tuples)"

    def estimated_cost(self) -> float:
        return float(len(self._relation))

    def _produce(self) -> Iterator[TPTuple]:
        yield from self._relation


class FilterOperator(PhysicalOperator):
    """Equality selection on one fact attribute."""

    def __init__(self, child: PhysicalOperator, attribute: str, value: object) -> None:
        super().__init__()
        self._child = child
        self._attribute = attribute
        self._value = value

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def output_schema(self) -> Schema:
        return self._child.output_schema()

    def describe(self) -> str:
        return f"Filter {self._attribute} = {self._value!r}"

    def _produce(self) -> Iterator[TPTuple]:
        index = self._child.output_schema().index(self._attribute)
        for tp_tuple in self._child:
            if tp_tuple.fact[index] == self._value:
                yield tp_tuple


class TimesliceOperator(PhysicalOperator):
    """Restrict tuples to a query interval (dropping non-overlapping ones)."""

    def __init__(self, child: PhysicalOperator, interval: Interval) -> None:
        super().__init__()
        self._child = child
        self._interval = interval

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def output_schema(self) -> Schema:
        return self._child.output_schema()

    def describe(self) -> str:
        return f"Timeslice {self._interval}"

    def _produce(self) -> Iterator[TPTuple]:
        for tp_tuple in self._child:
            overlap = tp_tuple.interval.intersect(self._interval)
            if overlap is not None:
                yield tp_tuple.with_interval(overlap)


class ProjectOperator(PhysicalOperator):
    """Projection with lineage disjunction (blocking: needs grouping)."""

    def __init__(self, child: PhysicalOperator, attributes: tuple[str, ...], events) -> None:
        super().__init__()
        self._child = child
        self._attributes = attributes
        self._events = events

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def output_schema(self) -> Schema:
        return self._child.output_schema().project(self._attributes)

    def describe(self) -> str:
        return f"Project {', '.join(self._attributes)}"

    def _produce(self) -> Iterator[TPTuple]:
        materialised = TPRelation(
            self._child.output_schema(),
            list(self._child),
            self._events,
            check_constraint=False,
        )
        yield from project_relation(materialised, self._attributes)


class _JoinOperatorBase(PhysicalOperator):
    """Shared machinery of the NJ / TA / naive join operators."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: JoinKind,
        on: tuple[tuple[str, str], ...],
        events,
    ) -> None:
        super().__init__()
        self._left = left
        self._right = right
        self._kind = kind
        self._on = on
        self._events = events

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def _theta(self, left_schema: Schema, right_schema: Schema) -> ThetaCondition:
        return theta_or_true(left_schema, right_schema, self._on)

    def _materialise(self, operator: PhysicalOperator, name: str) -> TPRelation:
        if isinstance(operator, ScanOperator):
            return operator.relation()
        return TPRelation(
            operator.output_schema(),
            list(operator),
            self._events,
            name=name,
            check_constraint=False,
        )

    def output_schema(self) -> Schema:
        left_schema = self._left.output_schema()
        right_schema = self._right.output_schema()
        if self._kind is JoinKind.ANTI:
            return left_schema
        # Clashing right attributes get an "s." prefix; in a join *chain* the
        # prefixed name itself can clash with an earlier join's prefix, so
        # uniquify ("s2.", "s3.", ...) instead of raising a duplicate-schema
        # error.
        taken = set(left_schema.attributes)
        right_attributes = []
        for name in right_schema.attributes:
            candidate = name
            if candidate in taken:
                candidate = f"s.{name}"
                counter = 2
                while candidate in taken:
                    candidate = f"s{counter}.{name}"
                    counter += 1
            taken.add(candidate)
            right_attributes.append(candidate)
        return Schema(left_schema.attributes + tuple(right_attributes))

    def estimated_cost(self) -> float:
        return self._left.estimated_cost() + self._right.estimated_cost()


class NJJoinOperator(_JoinOperatorBase):
    """TP join evaluated with the paper's NJ pipeline (lineage-aware windows)."""

    _JOINS: dict[JoinKind, Callable] = {
        JoinKind.INNER: tp_inner_join,
        JoinKind.LEFT_OUTER: tp_left_outer_join,
        JoinKind.RIGHT_OUTER: tp_right_outer_join,
        JoinKind.FULL_OUTER: tp_full_outer_join,
        JoinKind.ANTI: tp_anti_join,
    }

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        return f"NJJoin [{self._kind.value}] on {condition}"

    def estimated_cost(self) -> float:
        # NJ: one conventional join plus linear sweeps.
        left = self._left.estimated_cost()
        right = self._right.estimated_cost()
        return left + right + (left + right)

    def _produce(self) -> Iterator[TPTuple]:
        left_relation = self._materialise(self._left, "left")
        right_relation = self._materialise(self._right, "right")
        theta = self._theta(left_relation.schema, right_relation.schema)
        join = self._JOINS[self._kind]
        result = join(left_relation, right_relation, theta, compute_probabilities=False)
        yield from result


class ParallelNJJoinOperator(_JoinOperatorBase):
    """NJ join sharded across worker processes (shared-nothing execution).

    The operator hash-partitions both inputs on the equi-join key, runs the
    unchanged NJ window pipeline per shard in a process pool and merges the
    shard outputs in canonical order (:mod:`repro.parallel.batch`).  The
    planner instantiates it instead of :class:`NJJoinOperator` when the
    state-size cost model says the join is large enough to amortise process
    start-up; ``EXPLAIN`` renders it with a ``[parallel n=K]`` marker.
    """

    #: JoinKind → repro.parallel.batch join-kind name.
    _KIND_NAMES: dict[JoinKind, str] = {
        JoinKind.INNER: "inner",
        JoinKind.LEFT_OUTER: "left_outer",
        JoinKind.RIGHT_OUTER: "right_outer",
        JoinKind.FULL_OUTER: "full_outer",
        JoinKind.ANTI: "anti",
    }

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: JoinKind,
        on: tuple[tuple[str, str], ...],
        events,
        workers: int,
    ) -> None:
        super().__init__(left, right, kind, on, events)
        if workers < 2:
            raise PlanError("a parallel join needs at least two workers")
        if not on:
            raise PlanError("a parallel join requires an equi-join condition")
        #: Read by EXPLAIN to render the ``[parallel n=K]`` annotation.
        self.parallel_workers = workers
        self.last_result = None

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        return f"ParallelNJJoin [{self._kind.value}] on {condition}"

    def estimated_cost(self) -> float:
        # The NJ work divided across workers, plus a merge/serialization toll.
        left = self._left.estimated_cost()
        right = self._right.estimated_cost()
        serial = left + right + (left + right)
        return serial / self.parallel_workers + 0.1 * (left + right)

    def _produce(self) -> Iterator[TPTuple]:
        from ..parallel.batch import parallel_tp_join

        left_relation = self._materialise(self._left, "left")
        right_relation = self._materialise(self._right, "right")
        self.last_result = parallel_tp_join(
            self._KIND_NAMES[self._kind],
            left_relation,
            right_relation,
            self._on,
            workers=self.parallel_workers,
            compute_probabilities=False,
        )
        yield from self.last_result.relation


class TAJoinOperator(_JoinOperatorBase):
    """TP join evaluated with the Temporal Alignment baseline."""

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        return f"TAJoin [{self._kind.value}] on {condition}"

    def estimated_cost(self) -> float:
        # TA: repeated conventional joins with replication → quadratic-ish.
        left = self._left.estimated_cost()
        right = self._right.estimated_cost()
        return left + right + 2.0 * left * max(right, 1.0)

    def _produce(self) -> Iterator[TPTuple]:
        left_relation = self._materialise(self._left, "left")
        right_relation = self._materialise(self._right, "right")
        theta = self._theta(left_relation.schema, right_relation.schema)
        if self._kind is JoinKind.ANTI:
            result = ta_anti_join(left_relation, right_relation, theta, compute_probabilities=False)
        elif self._kind is JoinKind.LEFT_OUTER:
            result = ta_left_outer_join(
                left_relation, right_relation, theta, compute_probabilities=False
            )
        elif self._kind is JoinKind.FULL_OUTER:
            result = ta_full_outer_join(
                left_relation, right_relation, theta, compute_probabilities=False
            )
        elif self._kind is JoinKind.RIGHT_OUTER:
            # TA evaluates a right outer join as the mirrored left outer join.
            from ..core.joins import swap_theta

            mirrored = ta_left_outer_join(
                right_relation, left_relation, swap_theta(theta), compute_probabilities=False
            )
            yield from _mirror_right_outer(mirrored, left_relation, right_relation)
            return
        elif self._kind is JoinKind.INNER:
            result = tp_inner_join(left_relation, right_relation, theta, compute_probabilities=False)
        else:  # pragma: no cover - all kinds handled
            raise PlanError(f"unsupported join kind {self._kind}")
        yield from result


class NaiveJoinOperator(_JoinOperatorBase):
    """TP join evaluated with the naive per-time-point oracle (small inputs)."""

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        return f"NaiveJoin [{self._kind.value}] on {condition}"

    def estimated_cost(self) -> float:
        left = self._left.estimated_cost()
        right = self._right.estimated_cost()
        return left * max(right, 1.0) * 10.0

    def _produce(self) -> Iterator[TPTuple]:
        left_relation = self._materialise(self._left, "left")
        right_relation = self._materialise(self._right, "right")
        theta = self._theta(left_relation.schema, right_relation.schema)
        if self._kind is JoinKind.ANTI:
            result = naive_anti_join(left_relation, right_relation, theta, compute_probabilities=False)
        elif self._kind is JoinKind.LEFT_OUTER:
            result = naive_left_outer_join(
                left_relation, right_relation, theta, compute_probabilities=False
            )
        elif self._kind is JoinKind.FULL_OUTER:
            result = naive_full_outer_join(
                left_relation, right_relation, theta, compute_probabilities=False
            )
        else:
            raise PlanError(
                f"the naive strategy supports anti/left/full outer joins, not {self._kind.value}"
            )
        yield from result


def _mirror_right_outer(
    mirrored: TPRelation, left_relation: TPRelation, right_relation: TPRelation
) -> Iterator[TPTuple]:
    """Reorder the fact columns of a mirrored left outer join back to (left, right)."""
    right_width = len(right_relation.schema)
    for tp_tuple in mirrored:
        right_part = tp_tuple.fact[:right_width]
        left_part = tp_tuple.fact[right_width:]
        yield TPTuple(tuple(left_part) + tuple(right_part), tp_tuple.lineage, tp_tuple.interval)


def join_operator_for(
    strategy: JoinStrategy,
    left: PhysicalOperator,
    right: PhysicalOperator,
    kind: JoinKind,
    on: tuple[tuple[str, str], ...],
    events,
) -> PhysicalOperator:
    """Instantiate the physical join operator for a resolved strategy."""
    if strategy is JoinStrategy.NJ:
        return NJJoinOperator(left, right, kind, on, events)
    if strategy is JoinStrategy.TA:
        return TAJoinOperator(left, right, kind, on, events)
    if strategy is JoinStrategy.NAIVE:
        return NaiveJoinOperator(left, right, kind, on, events)
    raise PlanError(f"strategy {strategy} must be resolved before physicalisation")
