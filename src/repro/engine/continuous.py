"""Physical operators for continuous (stream-backed) plans.

The paper's claim that the NJ window pipeline "integrates into the executor
of a DBMS" extends here to *continuous* execution: a registered stream can be
scanned, and a TP anti / left outer join over two registered streams is
evaluated by the watermark-driven operators of :mod:`repro.stream` — emitting
each output tuple exactly once, when the combined watermark finalizes it.

Within the Volcano executor these operators are sources: a query over
streams runs the continuous pipeline to *completion* (both streams' closing
watermarks) and then streams the finalized result out, so the same
``execute_sql`` entry point serves both stored relations and streams.  Live,
never-ending deployments use :class:`repro.stream.StreamQuery` directly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..options import ExecutionOptions
from ..relation import Schema, TPTuple
from ..stream import (
    StreamDef,
    StreamEvent,
    StreamQuery,
    StreamQueryResult,
    joined_output_schema,
)
from .errors import PlanError
from .iterators import PhysicalOperator
from .logical import JoinKind

#: JoinKind → continuous operator kind name.  All five Table II kinds run
#: continuously: right/full outer joins derive the reverse windows through
#: the mirrored maintainer (:mod:`repro.stream.operators`).
CONTINUOUS_KINDS: dict[JoinKind, str] = {
    JoinKind.ANTI: "anti",
    JoinKind.LEFT_OUTER: "left_outer",
    JoinKind.RIGHT_OUTER: "right_outer",
    JoinKind.FULL_OUTER: "full_outer",
    JoinKind.INNER: "inner",
}


class ContinuousScanOperator(PhysicalOperator):
    """Scan a registered stream by draining its (closing) replay."""

    is_continuous = True

    def __init__(self, stream_def: StreamDef, label: str = "") -> None:
        super().__init__()
        self._stream_def = stream_def
        self._label = label or stream_def.name

    def output_schema(self) -> Schema:
        return self._stream_def.schema

    def stream_def(self) -> StreamDef:
        """The scanned stream definition (used by the continuous join)."""
        return self._stream_def

    def describe(self) -> str:
        return f"ContinuousScan {self._label} (watermarked replay)"

    def estimated_cost(self) -> float:
        # Stream cardinality is unknown to the planner by definition.
        return 1.0

    def _produce(self) -> Iterator[TPTuple]:
        for element in self._stream_def.replay():
            if isinstance(element, StreamEvent):
                yield element.tuple


class ContinuousJoinOperator(PhysicalOperator):
    """Watermark-driven TP join over two registered streams.

    The operator delegates to :class:`repro.stream.StreamQuery`; the child
    scans appear in the plan tree for EXPLAIN but are not pulled from — the
    join consumes the streams' own replays, interleaved and watermarked.
    """

    is_continuous = True

    def __init__(
        self,
        catalog,
        left: ContinuousScanOperator,
        right: ContinuousScanOperator,
        left_name: str,
        right_name: str,
        kind: JoinKind,
        on: tuple[tuple[str, str], ...],
        config: ExecutionOptions | None = None,
    ) -> None:
        super().__init__()
        if kind not in CONTINUOUS_KINDS:
            raise PlanError(
                f"continuous execution supports {sorted(k.value for k in CONTINUOUS_KINDS)}, "
                f"not {kind.value}"
            )
        self._left = left
        self._right = right
        self._query = StreamQuery(
            catalog,
            CONTINUOUS_KINDS[kind],
            left_name,
            right_name,
            on,
            config=config,
        )
        self._kind = kind
        self._on = on
        self._right_label = right.stream_def().name or right_name
        #: Read by EXPLAIN to render the ``[parallel n=K]`` annotation.
        self.parallel_workers = self._query.effective_partitions
        #: Runtime transport the partitions run on; EXPLAIN appends
        #: ``transport=...`` when it is not the default thread transport.
        self.parallel_transport = self._query.config.transport
        #: Read by EXPLAIN to render the ``[traced rate=...]`` marker
        #: (``None`` when the config leaves tracing off).
        self.trace_sample_rate = (
            self._query.config.trace_sample_rate if self._query.config.trace else None
        )
        #: Read by EXPLAIN to render the ``[recoverable ckpt=Ns]`` marker
        #: (``False``/``None`` when the options leave seat recovery off).
        self.recoverable = self._query.config.recovery_enabled
        self.recovery_checkpoint_interval = self._query.config.checkpoint_interval
        self.last_result: Optional[StreamQueryResult] = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def output_schema(self) -> Schema:
        left_schema = self._left.output_schema()
        if self._kind is JoinKind.ANTI:
            return left_schema
        return joined_output_schema(
            left_schema, self._right.output_schema(), self._right_label
        )

    def describe(self) -> str:
        condition = " AND ".join(f"{left} = {right}" for left, right in self._on) or "true"
        return (
            f"ContinuousNJJoin [{self._kind.value}] on {condition} "
            f"(watermark-driven, partitions={self._query.config.partitions})"
        )

    def estimated_cost(self) -> float:
        return self._left.estimated_cost() + self._right.estimated_cost()

    def _produce(self) -> Iterator[TPTuple]:
        self.last_result = self._query.run()
        yield from self.last_result.relation


class DataflowJoinOperator(PhysicalOperator):
    """A multi-way (or early-emitting) stream join tree as one physical node.

    The planner compiles a TP join tree whose leaves are all stream scans
    into a :class:`repro.dataflow.DataflowQuery`; within the Volcano
    executor this operator runs the graph to settlement and streams the sink
    node's settled relation out.  The child scans appear in the plan tree
    for EXPLAIN but are not pulled from — each graph edge consumes its own
    replay.  EXPLAIN renders the ``[dataflow k-node]`` marker from
    :attr:`dataflow_nodes`.
    """

    is_continuous = True

    def __init__(
        self,
        catalog,
        scans: tuple[ContinuousScanOperator, ...],
        nodes: Sequence,
        config: ExecutionOptions | None = None,
    ) -> None:
        super().__init__()
        from ..dataflow import DataflowQuery

        self._scans = scans
        self._query = DataflowQuery(catalog, nodes, config=config)
        #: Read by EXPLAIN to render the ``[dataflow k-node]`` annotation.
        self.dataflow_nodes = len(self._query.graph.nodes)
        #: Per-node partition degrees; EXPLAIN appends ``parts=K1/K2/...``
        #: when any stage fans out.
        self.dataflow_partitions = tuple(self._query.graph.partition_counts)
        #: Runtime transport the graph workers run on; EXPLAIN appends
        #: ``transport=...`` when it is not the default thread transport.
        self.dataflow_transport = self._query.config.transport
        #: Read by EXPLAIN to render the ``[traced rate=...]`` marker
        #: (``None`` when the config leaves tracing off).
        self.trace_sample_rate = (
            self._query.config.trace_sample_rate if self._query.config.trace else None
        )
        #: Dataflow nodes have peer edges, so a dead node is not a
        #: self-contained shard — graph recovery is not supported yet and
        #: EXPLAIN never marks a dataflow plan recoverable.
        self.recoverable = False
        self.recovery_checkpoint_interval = None
        self.last_result = None

    @property
    def query(self):
        """The compiled dataflow query (exposed for registration/monitoring)."""
        return self._query

    def children(self) -> tuple[PhysicalOperator, ...]:
        return tuple(self._scans)

    def output_schema(self) -> Schema:
        graph = self._query.graph
        return graph.schema_of(graph.sink)

    def describe(self) -> str:
        graph = self._query.graph
        chain = "→".join(spec.kind for spec in graph.nodes)
        mode = "early-emit" if self._query.config.early_emit else "watermark-only"
        parts = ""
        if any(count > 1 for count in self.dataflow_partitions):
            parts = " parts=" + "/".join(
                str(count) for count in self.dataflow_partitions
            )
        return (
            f"DataflowJoin [{chain}] sink={graph.sink}{parts} "
            f"(revision streams, {mode}, workers={self._query.config.workers})"
        )

    def estimated_cost(self) -> float:
        return float(len(self._scans))

    def _produce(self) -> Iterator[TPTuple]:
        self.last_result = self._query.run()
        yield from self.last_result.relation
