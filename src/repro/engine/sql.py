"""A small SQL-ish front end for TP queries.

The paper modified PostgreSQL's parser so that temporal-probabilistic joins
can be written in SQL.  This module provides the equivalent surface for the
Python engine: a hand-written recursive-descent parser for a compact dialect
covering exactly the operations the engine supports.

Grammar (case-insensitive keywords)::

    query      :=  SELECT select_list FROM source join_clause?
                   where_clause? during_clause? using_clause?
    select_list:=  '*' | identifier (',' identifier)*
    source     :=  STREAM? relation
    join_clause:=  TP join_kind JOIN source ON condition (AND condition)*
    join_kind  :=  LEFT OUTER | RIGHT OUTER | FULL OUTER | ANTI | INNER
    condition  :=  qualified '=' qualified
    qualified  :=  identifier ('.' identifier)?
    where_clause := WHERE identifier '=' literal (AND identifier '=' literal)*
    during_clause := DURING '[' number ',' number ')'
    using_clause  := USING (NJ | TA | NAIVE)
    literal    :=  number | quoted string

Examples::

    SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc
    SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann'
    SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc DURING [4, 8) USING TA
    SELECT * FROM STREAM a TP ANTI JOIN STREAM b ON a.Loc = b.Loc

``STREAM name`` targets a registered stream instead of a stored relation;
a TP anti / left outer join between two streams is planned as a continuous,
watermark-driven join.  ``STREAM`` is a *contextual* keyword: it only acts
as a marker when followed by a name, so relations or attributes named
``stream`` keep working.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..temporal import Interval
from .errors import SQLSyntaxError
from .logical import (
    JoinKind,
    JoinStrategy,
    LogicalPlan,
    Project,
    Scan,
    Select,
    StreamScan,
    Timeslice,
    TPJoin,
)

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # quoted string
      | [A-Za-z_][A-Za-z_0-9]* # identifier / keyword
      | \d+\.\d+               # float
      | \d+                    # integer
      | [*,().=\[\)]           # punctuation
    )
    """,
    re.VERBOSE,
)

# "stream" is deliberately NOT reserved: it is a contextual keyword that only
# acts as a marker in the source position when followed by a name, so existing
# relations or attributes called "stream" keep parsing.
_KEYWORDS = {
    "select", "from", "tp", "left", "right", "full", "outer", "anti", "inner",
    "join", "on", "and", "where", "during", "using",
}

_JOIN_KINDS = {
    ("left", "outer"): JoinKind.LEFT_OUTER,
    ("right", "outer"): JoinKind.RIGHT_OUTER,
    ("full", "outer"): JoinKind.FULL_OUTER,
    ("anti",): JoinKind.ANTI,
    ("inner",): JoinKind.INNER,
}

_STRATEGIES = {"nj": JoinStrategy.NJ, "ta": JoinStrategy.TA, "naive": JoinStrategy.NAIVE}


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing: a logical plan plus surface details."""

    plan: LogicalPlan
    select_list: tuple[str, ...]
    left_relation: str
    right_relation: Optional[str]
    join_kind: Optional[JoinKind]
    strategy: JoinStrategy
    left_is_stream: bool = False
    right_is_stream: bool = False


def tokenize(text: str) -> list[str]:
    """Split a query string into tokens; raises on unrecognised characters."""
    tokens: list[str] = []
    position = 0
    stripped = text.strip()
    while position < len(stripped):
        match = _TOKEN_PATTERN.match(stripped, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {stripped[position]!r} at offset {position}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers ---------------------------------------------------- #
    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _peek_keyword(self) -> Optional[str]:
        token = self._peek()
        return token.lower() if token is not None else None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.lower() != keyword:
            raise SQLSyntaxError(f"expected {keyword.upper()!r}, got {token!r}")

    def _expect(self, literal: str) -> None:
        token = self._advance()
        if token != literal:
            raise SQLSyntaxError(f"expected {literal!r}, got {token!r}")

    def _identifier(self) -> str:
        token = self._advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) or token.lower() in _KEYWORDS:
            raise SQLSyntaxError(f"expected identifier, got {token!r}")
        return token

    # -- grammar ----------------------------------------------------------#
    def parse(self) -> ParsedQuery:
        self._expect_keyword("select")
        select_list = self._select_list()
        self._expect_keyword("from")
        left_is_stream = self._stream_marker()
        left_relation = self._identifier()

        join_kind: Optional[JoinKind] = None
        right_relation: Optional[str] = None
        right_is_stream = False
        on_pairs: tuple[tuple[str, str], ...] = ()
        if self._peek_keyword() == "tp":
            self._advance()
            join_kind = self._join_kind()
            self._expect_keyword("join")
            right_is_stream = self._stream_marker()
            right_relation = self._identifier()
            self._expect_keyword("on")
            on_pairs = self._conditions(left_relation, right_relation)

        filters = self._where_clause()
        during = self._during_clause()
        strategy = self._using_clause()
        if self._peek() is not None:
            raise SQLSyntaxError(f"trailing tokens starting at {self._peek()!r}")

        left_scan: LogicalPlan = (
            StreamScan(left_relation) if left_is_stream else Scan(left_relation)
        )
        plan: LogicalPlan = left_scan
        if join_kind is not None:
            assert right_relation is not None
            right_scan: LogicalPlan = (
                StreamScan(right_relation) if right_is_stream else Scan(right_relation)
            )
            plan = TPJoin(left_scan, right_scan, join_kind, on_pairs, strategy)
        for attribute, value in filters:
            plan = Select(plan, attribute, value)
        if during is not None:
            plan = Timeslice(plan, during)
        if select_list != ("*",):
            plan = Project(plan, select_list)
        return ParsedQuery(
            plan=plan,
            select_list=select_list,
            left_relation=left_relation,
            right_relation=right_relation,
            join_kind=join_kind,
            strategy=strategy,
            left_is_stream=left_is_stream,
            right_is_stream=right_is_stream,
        )

    def _stream_marker(self) -> bool:
        # Contextual keyword: STREAM marks a stream source only when the next
        # token is a plain name ("FROM STREAM a").  A lone "stream" followed
        # by a keyword or the end of the query is a relation called "stream".
        if self._peek_keyword() != "stream":
            return False
        following = (
            self._tokens[self._position + 1]
            if self._position + 1 < len(self._tokens)
            else None
        )
        if following is None:
            return False
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", following):
            return False
        if following.lower() in _KEYWORDS:
            return False
        self._advance()
        return True

    def _select_list(self) -> tuple[str, ...]:
        if self._peek() == "*":
            self._advance()
            return ("*",)
        names = [self._identifier()]
        while self._peek() == ",":
            self._advance()
            names.append(self._identifier())
        return tuple(names)

    def _join_kind(self) -> JoinKind:
        first = self._advance().lower()
        if first in ("left", "right", "full"):
            self._expect_keyword("outer")
            return _JOIN_KINDS[(first, "outer")]
        if (first,) in _JOIN_KINDS:
            return _JOIN_KINDS[(first,)]
        raise SQLSyntaxError(f"unknown join kind starting with {first!r}")

    def _conditions(self, left_relation: str, right_relation: str) -> tuple[tuple[str, str], ...]:
        pairs = [self._condition(left_relation, right_relation)]
        while self._peek_keyword() == "and" and self._looks_like_condition():
            self._advance()
            pairs.append(self._condition(left_relation, right_relation))
        return tuple(pairs)

    def _looks_like_condition(self) -> bool:
        # Distinguish `AND x.a = y.b` (join condition) from a later WHERE AND.
        save = self._position
        try:
            self._advance()  # AND
            self._qualified()
            self._expect("=")
            self._qualified()
            return True
        except SQLSyntaxError:
            return False
        finally:
            self._position = save

    def _condition(self, left_relation: str, right_relation: str) -> tuple[str, str]:
        first_relation, first_attribute = self._qualified()
        self._expect("=")
        second_relation, second_attribute = self._qualified()
        if first_relation == right_relation and second_relation in (left_relation, None):
            return (second_attribute, first_attribute)
        return (first_attribute, second_attribute)

    def _qualified(self) -> tuple[Optional[str], str]:
        name = self._identifier()
        if self._peek() == ".":
            self._advance()
            attribute = self._identifier()
            return (name, attribute)
        return (None, name)

    def _where_clause(self) -> list[tuple[str, object]]:
        filters: list[tuple[str, object]] = []
        if self._peek_keyword() != "where":
            return filters
        self._advance()
        filters.append(self._where_condition())
        while self._peek_keyword() == "and":
            self._advance()
            filters.append(self._where_condition())
        return filters

    def _where_condition(self) -> tuple[str, object]:
        attribute = self._identifier()
        self._expect("=")
        return (attribute, self._literal())

    def _literal(self) -> object:
        token = self._advance()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        if re.fullmatch(r"\d+", token):
            return int(token)
        if re.fullmatch(r"\d+\.\d+", token):
            return float(token)
        raise SQLSyntaxError(f"expected literal, got {token!r}")

    def _during_clause(self) -> Optional[Interval]:
        if self._peek_keyword() != "during":
            return None
        self._advance()
        self._expect("[")
        start = self._literal()
        self._expect(",")
        end = self._literal()
        self._expect(")")
        if not isinstance(start, int) or not isinstance(end, int):
            raise SQLSyntaxError("DURING bounds must be integers")
        return Interval(start, end)

    def _using_clause(self) -> JoinStrategy:
        if self._peek_keyword() != "using":
            return JoinStrategy.AUTO
        self._advance()
        token = self._advance().lower()
        if token not in _STRATEGIES:
            raise SQLSyntaxError(f"unknown strategy {token!r}; expected NJ, TA or NAIVE")
        return _STRATEGIES[token]


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string into a :class:`ParsedQuery`."""
    parsed = _Parser(tokenize(text)).parse()
    return parsed


def parse_plan(text: str) -> LogicalPlan:
    """Parse a query string and return only its logical plan."""
    return parse_query(text).plan
