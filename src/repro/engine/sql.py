"""A small SQL-ish front end for TP queries.

The paper modified PostgreSQL's parser so that temporal-probabilistic joins
can be written in SQL.  This module provides the equivalent surface for the
Python engine: a hand-written recursive-descent parser for a compact dialect
covering exactly the operations the engine supports.

Grammar (case-insensitive keywords)::

    query      :=  SELECT select_list FROM source join_clause*
                   where_clause? during_clause? using_clause?
    select_list:=  '*' | identifier (',' identifier)*
    source     :=  STREAM? relation
    join_clause:=  TP join_kind JOIN source ON condition (AND condition)*
    join_kind  :=  LEFT OUTER | RIGHT OUTER | FULL OUTER | ANTI | INNER
    condition  :=  qualified '=' qualified
    qualified  :=  identifier ('.' identifier)?
    where_clause := WHERE identifier '=' literal (AND identifier '=' literal)*
    during_clause := DURING '[' number ',' number ')'
    using_clause  := USING (NJ | TA | NAIVE)
    literal    :=  number | quoted string

Examples::

    SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc
    SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann'
    SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc DURING [4, 8) USING TA
    SELECT * FROM STREAM a TP ANTI JOIN STREAM b ON a.Loc = b.Loc
    SELECT * FROM STREAM a TP ANTI JOIN STREAM b ON a.Loc = b.Loc
                  TP FULL OUTER JOIN STREAM c ON a.Loc = c.Loc

``STREAM name`` targets a registered stream instead of a stored relation;
a TP join between two streams is planned as a continuous, watermark-driven
join.  ``STREAM`` is a *contextual* keyword: it only acts as a marker when
followed by a name, so relations or attributes named ``stream`` keep
working.  Multiple join clauses chain left-deep: each clause joins the
accumulated result with the next source — over streams the planner compiles
the chain into a retractable dataflow graph (:mod:`repro.dataflow`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..temporal import Interval
from .errors import SQLSyntaxError
from .logical import (
    JoinKind,
    JoinStrategy,
    LogicalPlan,
    Project,
    Scan,
    Select,
    StreamScan,
    Timeslice,
    TPJoin,
)

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # quoted string
      | [A-Za-z_][A-Za-z_0-9]* # identifier / keyword
      | \d+\.\d+               # float
      | \d+                    # integer
      | [*,().=\[\)]           # punctuation
    )
    """,
    re.VERBOSE,
)

# "stream" is deliberately NOT reserved: it is a contextual keyword that only
# acts as a marker in the source position when followed by a name, so existing
# relations or attributes called "stream" keep parsing.
_KEYWORDS = {
    "select", "from", "tp", "left", "right", "full", "outer", "anti", "inner",
    "join", "on", "and", "where", "during", "using",
}

_JOIN_KINDS = {
    ("left", "outer"): JoinKind.LEFT_OUTER,
    ("right", "outer"): JoinKind.RIGHT_OUTER,
    ("full", "outer"): JoinKind.FULL_OUTER,
    ("anti",): JoinKind.ANTI,
    ("inner",): JoinKind.INNER,
}

_STRATEGIES = {"nj": JoinStrategy.NJ, "ta": JoinStrategy.TA, "naive": JoinStrategy.NAIVE}


@dataclass(frozen=True)
class JoinClause:
    """One parsed ``TP ... JOIN source ON ...`` clause."""

    kind: JoinKind
    relation: str
    is_stream: bool
    on: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing: a logical plan plus surface details.

    ``right_relation`` / ``join_kind`` / ``right_is_stream`` describe the
    *first* join clause (kept for single-join callers); ``joins`` lists
    every clause of a chained query in order.
    """

    plan: LogicalPlan
    select_list: tuple[str, ...]
    left_relation: str
    right_relation: Optional[str]
    join_kind: Optional[JoinKind]
    strategy: JoinStrategy
    left_is_stream: bool = False
    right_is_stream: bool = False
    joins: tuple[JoinClause, ...] = ()


def tokenize(text: str) -> list[str]:
    """Split a query string into tokens; raises on unrecognised characters."""
    tokens: list[str] = []
    position = 0
    stripped = text.strip()
    while position < len(stripped):
        match = _TOKEN_PATTERN.match(stripped, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {stripped[position]!r} at offset {position}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0
        self._base_relation: Optional[str] = None

    # -- token helpers ---------------------------------------------------- #
    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _peek_keyword(self) -> Optional[str]:
        token = self._peek()
        return token.lower() if token is not None else None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.lower() != keyword:
            raise SQLSyntaxError(f"expected {keyword.upper()!r}, got {token!r}")

    def _expect(self, literal: str) -> None:
        token = self._advance()
        if token != literal:
            raise SQLSyntaxError(f"expected {literal!r}, got {token!r}")

    def _identifier(self) -> str:
        token = self._advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) or token.lower() in _KEYWORDS:
            raise SQLSyntaxError(f"expected identifier, got {token!r}")
        return token

    # -- grammar ----------------------------------------------------------#
    def parse(self) -> ParsedQuery:
        self._expect_keyword("select")
        select_list = self._select_list()
        self._expect_keyword("from")
        left_is_stream = self._stream_marker()
        left_relation = self._identifier()
        self._base_relation = left_relation

        joins: list[JoinClause] = []
        prior_relations = {left_relation}
        while self._peek_keyword() == "tp":
            self._advance()
            join_kind = self._join_kind()
            self._expect_keyword("join")
            right_is_stream = self._stream_marker()
            right_relation = self._identifier()
            self._expect_keyword("on")
            on_pairs = self._conditions(prior_relations, right_relation)
            joins.append(JoinClause(join_kind, right_relation, right_is_stream, on_pairs))
            prior_relations.add(right_relation)

        filters = self._where_clause()
        during = self._during_clause()
        strategy = self._using_clause()
        if self._peek() is not None:
            raise SQLSyntaxError(f"trailing tokens starting at {self._peek()!r}")

        left_scan: LogicalPlan = (
            StreamScan(left_relation) if left_is_stream else Scan(left_relation)
        )
        plan: LogicalPlan = left_scan
        for clause in joins:
            right_scan: LogicalPlan = (
                StreamScan(clause.relation) if clause.is_stream else Scan(clause.relation)
            )
            plan = TPJoin(plan, right_scan, clause.kind, clause.on, strategy)
        for attribute, value in filters:
            plan = Select(plan, attribute, value)
        if during is not None:
            plan = Timeslice(plan, during)
        if select_list != ("*",):
            plan = Project(plan, select_list)
        first = joins[0] if joins else None
        return ParsedQuery(
            plan=plan,
            select_list=select_list,
            left_relation=left_relation,
            right_relation=first.relation if first else None,
            join_kind=first.kind if first else None,
            strategy=strategy,
            left_is_stream=left_is_stream,
            right_is_stream=first.is_stream if first else False,
            joins=tuple(joins),
        )

    def _stream_marker(self) -> bool:
        # Contextual keyword: STREAM marks a stream source only when the next
        # token is a plain name ("FROM STREAM a").  A lone "stream" followed
        # by a keyword or the end of the query is a relation called "stream".
        if self._peek_keyword() != "stream":
            return False
        following = (
            self._tokens[self._position + 1]
            if self._position + 1 < len(self._tokens)
            else None
        )
        if following is None:
            return False
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", following):
            return False
        if following.lower() in _KEYWORDS:
            return False
        self._advance()
        return True

    def _select_list(self) -> tuple[str, ...]:
        if self._peek() == "*":
            self._advance()
            return ("*",)
        names = [self._identifier()]
        while self._peek() == ",":
            self._advance()
            names.append(self._identifier())
        return tuple(names)

    def _join_kind(self) -> JoinKind:
        first = self._advance().lower()
        if first in ("left", "right", "full"):
            self._expect_keyword("outer")
            return _JOIN_KINDS[(first, "outer")]
        if (first,) in _JOIN_KINDS:
            return _JOIN_KINDS[(first,)]
        raise SQLSyntaxError(f"unknown join kind starting with {first!r}")

    def _conditions(
        self, prior_relations: set[str], right_relation: str
    ) -> tuple[tuple[str, str], ...]:
        pairs = [self._condition(prior_relations, right_relation)]
        while self._peek_keyword() == "and" and self._looks_like_condition():
            self._advance()
            pairs.append(self._condition(prior_relations, right_relation))
        return tuple(pairs)

    def _looks_like_condition(self) -> bool:
        # Distinguish `AND x.a = y.b` (join condition) from a later WHERE AND.
        save = self._position
        try:
            self._advance()  # AND
            self._qualified()
            self._expect("=")
            self._qualified()
            return True
        except SQLSyntaxError:
            return False
        finally:
            self._position = save

    def _condition(
        self, prior_relations: set[str], right_relation: str
    ) -> tuple[str, str]:
        first_relation, first_attribute = self._qualified()
        self._expect("=")
        second_relation, second_attribute = self._qualified()
        if first_relation == right_relation and (
            second_relation is None or second_relation in prior_relations
        ):
            left_relation, left_attribute = second_relation, second_attribute
            right_attribute = first_attribute
        else:
            left_relation, left_attribute = first_relation, first_attribute
            right_attribute = second_attribute
        return (self._left_reference(left_relation, left_attribute), right_attribute)

    def _left_reference(self, relation: Optional[str], attribute: str) -> str:
        """The left-side attribute reference a chained join condition names.

        In a chain, the accumulated left schema prefixes attributes of a
        non-first input when they clash with an earlier name (e.g. ``Loc``
        of ``sb`` becomes ``sb.Loc`` after the first join).  A qualifier
        naming such a relation is therefore *kept* — the planner resolves
        it against the real accumulated schema (exact name when prefixed,
        bare name when it never clashed).  Base-relation qualifiers and
        unqualified names stay bare, which is also the single-join
        behaviour of earlier grammars.
        """
        if relation is None or relation == self._base_relation:
            return attribute
        return f"{relation}.{attribute}"

    def _qualified(self) -> tuple[Optional[str], str]:
        name = self._identifier()
        if self._peek() == ".":
            self._advance()
            attribute = self._identifier()
            return (name, attribute)
        return (None, name)

    def _where_clause(self) -> list[tuple[str, object]]:
        filters: list[tuple[str, object]] = []
        if self._peek_keyword() != "where":
            return filters
        self._advance()
        filters.append(self._where_condition())
        while self._peek_keyword() == "and":
            self._advance()
            filters.append(self._where_condition())
        return filters

    def _where_condition(self) -> tuple[str, object]:
        attribute = self._identifier()
        self._expect("=")
        return (attribute, self._literal())

    def _literal(self) -> object:
        token = self._advance()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        if re.fullmatch(r"\d+", token):
            return int(token)
        if re.fullmatch(r"\d+\.\d+", token):
            return float(token)
        raise SQLSyntaxError(f"expected literal, got {token!r}")

    def _during_clause(self) -> Optional[Interval]:
        if self._peek_keyword() != "during":
            return None
        self._advance()
        self._expect("[")
        start = self._literal()
        self._expect(",")
        end = self._literal()
        self._expect(")")
        if not isinstance(start, int) or not isinstance(end, int):
            raise SQLSyntaxError("DURING bounds must be integers")
        return Interval(start, end)

    def _using_clause(self) -> JoinStrategy:
        if self._peek_keyword() != "using":
            return JoinStrategy.AUTO
        self._advance()
        token = self._advance().lower()
        if token not in _STRATEGIES:
            raise SQLSyntaxError(f"unknown strategy {token!r}; expected NJ, TA or NAIVE")
        return _STRATEGIES[token]


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string into a :class:`ParsedQuery`."""
    parsed = _Parser(tokenize(text)).parse()
    return parsed


def parse_plan(text: str) -> LogicalPlan:
    """Parse a query string and return only its logical plan."""
    return parse_query(text).plan
