"""EXPLAIN output for logical and physical plans.

Continuous (stream-backed) operators are rendered with a ``[continuous]``
marker instead of a cost estimate: their inputs are unbounded, so a
cardinality-based cost is meaningless — progress is driven by watermarks,
not by cardinalities.

Operators executing across more than one shard (the process-parallel batch
join, or a continuous join with multiple partitions) additionally carry a
``[parallel n=K]`` marker, read from their ``parallel_workers`` attribute.
A compiled dataflow graph (multi-way or early-emitting stream join tree)
carries ``[dataflow k-node]``, read from ``dataflow_nodes``; when the
partition planner fanned stages out, the marker grows the per-node degrees
as ``[dataflow k-node, parts=K1/K2/...]`` from ``dataflow_partitions``.
"""

from __future__ import annotations

from .iterators import PhysicalOperator
from .logical import LogicalPlan


def explain_logical(plan: LogicalPlan) -> str:
    """Render a logical plan as an indented tree."""
    lines: list[str] = []
    _render_logical(plan, 0, lines)
    return "\n".join(lines)


def _render_logical(plan: LogicalPlan, depth: int, lines: list[str]) -> None:
    lines.append("  " * depth + plan.describe())
    for child in plan.children():
        _render_logical(child, depth + 1, lines)


def explain_physical(operator: PhysicalOperator) -> str:
    """Render a physical plan as an indented tree with cost estimates."""
    lines: list[str] = []
    _render_physical(operator, 0, lines)
    return "\n".join(lines)


def _render_physical(operator: PhysicalOperator, depth: int, lines: list[str]) -> None:
    if getattr(operator, "is_continuous", False):
        annotation = "[continuous]"
    else:
        annotation = f"(cost≈{operator.estimated_cost():.0f})"
    workers = getattr(operator, "parallel_workers", 1)
    if workers > 1:
        annotation += f" [parallel n={workers}]"
    dataflow_nodes = getattr(operator, "dataflow_nodes", 0)
    if dataflow_nodes:
        partitions = getattr(operator, "dataflow_partitions", ())
        if any(count > 1 for count in partitions):
            parts = "/".join(str(count) for count in partitions)
            annotation += f" [dataflow {dataflow_nodes}-node, parts={parts}]"
        else:
            annotation += f" [dataflow {dataflow_nodes}-node]"
    lines.append("  " * depth + f"{operator.describe()}  {annotation}")
    for child in operator.children():
        _render_physical(child, depth + 1, lines)
