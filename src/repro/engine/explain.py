"""EXPLAIN output for logical and physical plans.

Continuous (stream-backed) operators are rendered with a ``[continuous]``
marker instead of a cost estimate: their inputs are unbounded, so a
cardinality-based cost is meaningless — progress is driven by watermarks,
not by cardinalities.

Operators executing across more than one shard (the process-parallel batch
join, or a continuous join with multiple partitions) additionally carry a
``[parallel n=K]`` marker, read from their ``parallel_workers`` attribute.
A compiled dataflow graph (multi-way or early-emitting stream join tree)
carries ``[dataflow k-node]``, read from ``dataflow_nodes``; when the
partition planner fanned stages out, the marker grows the per-node degrees
as ``[dataflow k-node, parts=K1/K2/...]`` from ``dataflow_partitions``.
Plans pinned to a non-default runtime transport (``processes`` or
``sockets``, via ``ExecutionOptions(transport=...)``) render it too:
``[dataflow k-node, parts=..., transport=sockets]`` and
``[parallel n=K, transport=sockets]``, read from ``dataflow_transport`` /
``parallel_transport``.  Standing queries served through
:class:`repro.serve.StandingQueryService` mark subplans shared with other
standing queries as ``shared=n1/n2`` (read from ``dataflow_shared``): those
nodes execute once per plan group, not once per query.  Plans whose config
enables span-per-element tracing carry ``[traced rate=R]``, read from
``trace_sample_rate`` (``None`` when tracing is off); plans whose options
enable seat recovery carry ``[recoverable ckpt=Ns]`` (or ``[recoverable
replay-from-zero]`` without checkpointing), read from ``recoverable`` /
``recovery_checkpoint_interval``.
"""

from __future__ import annotations

from .iterators import PhysicalOperator
from .logical import LogicalPlan


def explain_logical(plan: LogicalPlan) -> str:
    """Render a logical plan as an indented tree."""
    lines: list[str] = []
    _render_logical(plan, 0, lines)
    return "\n".join(lines)


def _render_logical(plan: LogicalPlan, depth: int, lines: list[str]) -> None:
    lines.append("  " * depth + plan.describe())
    for child in plan.children():
        _render_logical(child, depth + 1, lines)


def explain_physical(operator: PhysicalOperator) -> str:
    """Render a physical plan as an indented tree with cost estimates."""
    lines: list[str] = []
    _render_physical(operator, 0, lines)
    return "\n".join(lines)


def _render_physical(operator: PhysicalOperator, depth: int, lines: list[str]) -> None:
    if getattr(operator, "is_continuous", False):
        annotation = "[continuous]"
    else:
        annotation = f"(cost≈{operator.estimated_cost():.0f})"
    workers = getattr(operator, "parallel_workers", 1)
    if workers > 1:
        transport = getattr(operator, "parallel_transport", "threads")
        detail = f", transport={transport}" if transport != "threads" else ""
        annotation += f" [parallel n={workers}{detail}]"
    dataflow_nodes = getattr(operator, "dataflow_nodes", 0)
    if dataflow_nodes:
        details = [f"dataflow {dataflow_nodes}-node"]
        partitions = getattr(operator, "dataflow_partitions", ())
        if any(count > 1 for count in partitions):
            details.append("parts=" + "/".join(str(count) for count in partitions))
        transport = getattr(operator, "dataflow_transport", "threads")
        if transport != "threads":
            details.append(f"transport={transport}")
        shared = getattr(operator, "dataflow_shared", ())
        if shared:
            details.append("shared=" + "/".join(shared))
        annotation += f" [{', '.join(details)}]"
    trace_rate = getattr(operator, "trace_sample_rate", None)
    if trace_rate is not None:
        annotation += f" [traced rate={trace_rate:g}]"
    if getattr(operator, "recoverable", False):
        interval = getattr(operator, "recovery_checkpoint_interval", None)
        mode = f"ckpt={interval:g}s" if interval is not None else "replay-from-zero"
        annotation += f" [recoverable {mode}]"
    lines.append("  " * depth + f"{operator.describe()}  {annotation}")
    for child in operator.children():
        _render_physical(child, depth + 1, lines)


def explain_analyze(operator: PhysicalOperator) -> str:
    """The physical plan plus runtime telemetry from the last execution.

    Works on any operator tree; nodes that ran a continuous/dataflow query
    with metrics enabled (``ExecutionOptions(metrics=True)``) contribute
    their last result's per-node report
    (:meth:`~repro.dataflow.query.DataflowResult.explain_analyze`), read
    from the ``last_result`` attribute the continuous operators maintain.
    Without a prior run (or with metrics off) the plan renders alone.
    """
    lines = [explain_physical(operator)]
    _append_analysis(operator, lines)
    return "\n".join(lines)


def _append_analysis(operator: PhysicalOperator, lines: list[str]) -> None:
    result = getattr(operator, "last_result", None)
    if result is not None:
        analyze = getattr(result, "explain_analyze", None)
        if analyze is not None:
            lines.append("")
            lines.append(analyze())
        else:
            # Foreign result types: accept raw snapshot lists under either
            # the current field name or the pre-redesign ``metrics`` one
            # (skipping bound methods — ``metrics()`` is an aggregate now).
            snapshots = getattr(result, "metrics_snapshots", None)
            if snapshots is None:
                snapshots = getattr(result, "metrics", None)
            if snapshots and not callable(snapshots):
                from ..obs import MetricsAggregator

                aggregator = MetricsAggregator()
                aggregator.update_all(snapshots)
                lines.append("")
                lines.append(aggregator.render_report())
    for child in operator.children():
        _append_analysis(child, lines)
