"""Placement maps: which host runs which worker index.

The socket transport addresses workers by integer index, exactly like the
in-process transports; a :class:`Placement` tells it where each index lives.
An index without an address (the default) is *spawned locally* by the driver
— so the empty placement runs every worker on localhost, and a partial
placement mixes remote hosts with local processes.

Remote entries name a ``host:port`` where a worker process is already
listening (started with ``python -m repro.runtime.worker --listen
HOST:PORT``); the driver ships each worker its spec plus the full resolved
address map at job start, so peers can open direct worker→worker
connections without routing through the driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Placement:
    """Worker index → ``host:port`` map for the socket transport.

    ``addresses[i]`` is the listen address of worker ``i``; ``None`` (or an
    index beyond the tuple) means "spawn a local worker process".  The
    default empty placement therefore keeps every worker on this machine —
    distribution is opt-in per index.
    """

    addresses: Tuple[Optional[str], ...] = ()

    def address_of(self, index: int) -> Optional[str]:
        """The configured address of one worker index (``None`` = local)."""
        if 0 <= index < len(self.addresses):
            return self.addresses[index]
        return None

    def describe(self) -> str:
        if not self.addresses:
            return "local"
        return ",".join(address or "local" for address in self.addresses)


def parse_host_port(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (IPv4/hostname) into its parts."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def parse_placement(text: str) -> Placement:
    """Parse a comma-separated placement list.

    ``"host1:9101,host2:9102"`` places workers 0 and 1; an empty entry (or
    the literal ``local``) leaves that index local:
    ``"local,host2:9102"`` spawns worker 0 here and sends worker 1 away.
    """
    addresses: list[Optional[str]] = []
    for part in text.split(","):
        part = part.strip()
        if not part or part == "local":
            addresses.append(None)
        else:
            parse_host_port(part)  # validate eagerly
            addresses.append(part)
    return Placement(tuple(addresses))
