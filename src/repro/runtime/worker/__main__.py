"""``python -m repro.runtime.worker`` — start a standalone socket worker."""

import sys

from . import main

sys.exit(main())
