"""The one worker loop every execution backend runs.

A *worker* owns one operator instance (a continuous join or a retractable
revision join) over one shard of the key space, and drives it through the
same four steps no matter which transport delivers its input:

1. **route** — incoming watermarks are min-merged per channel
   (:class:`~repro.runtime.channel.ChannelWatermarks`: the stage output
   watermark is the min over upstream partitions), events and revisions pass
   through;
2. **operate** — the element is fed to the operator (``join.process``);
3. **emit** — operator outputs are key-routed to downstream workers (one
   stable-hash partition per revision, watermarks broadcast) or collected
   locally when the spec has no downstream;
4. **close-sentinel** — when every producer has signalled done, the operator
   is closed, remaining outputs flushed, and one done sentinel sent per
   downstream (edge × partition) channel.

Worker *specs* describe everything the loop needs — operator construction,
watermark channels, producer counts, downstream routing entries — as plain
picklable dataclasses (:class:`repro.parallel.StreamShardSpec`,
:class:`repro.parallel.stream_exec.DataflowNodeSpec`), so the identical loop
runs in the caller's thread, in a thread pool, in a forked process, or on a
remote host behind the socket transport.

``python -m repro.runtime.worker --listen HOST:PORT`` starts a standalone
worker server that joins a placement map (see
:mod:`repro.runtime.sockets`) — the entry point of distributed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Hashable, List, Optional, Protocol, Sequence

from ...obs.metrics import DEFAULT_METRICS_INTERVAL
from ...obs.trace import span_detail
from ...relation import TPTuple, stable_key_hash
from ...stream.elements import LEFT, RIGHT, Tagged, Watermark
from ..channel import ChannelWatermarks

#: The channel id the driver uses for source-edge watermarks of single-stage
#: (stream shard) jobs.
SOURCE_CHANNEL = "src"


class Emitter(Protocol):
    """Where a worker's outputs go; each transport provides one."""

    def send(self, target: int, channel: Hashable, tagged: Tagged) -> None:
        """Deliver one element to worker ``target`` (``channel`` names the
        watermark channel; ``None`` for key-routed events/revisions)."""

    def done(self, target: int) -> None:
        """Signal worker ``target`` that one of its producers finished."""

    def flush(self) -> None:
        """Push out any buffered micro-batches (no-op for unbuffered emitters)."""


class WorkerSpec(Protocol):
    """What the loop needs to know about one worker (structural typing)."""

    index: int
    producers: int
    left_channels: Sequence[Hashable]
    right_channels: Sequence[Hashable]
    downstream: Sequence[tuple]

    def build_join(self): ...

    @property
    def collect_outputs(self) -> bool: ...

    @property
    def channel_id(self) -> Hashable: ...

    def report(self, join, outputs: Optional[List[TPTuple]]) -> "WorkerReport": ...


@dataclass
class WorkerReport:
    """What one worker hands back to the driver after settling.

    ``outputs`` is the worker's contribution to the settled result (collected
    stream outputs, or a dataflow node's settled window tuples); ``stats`` is
    the revision-counter tuple of a dataflow node (``None`` for stream
    shards, which report ``late_dropped`` instead).
    """

    index: int
    outputs: List[TPTuple] = field(default_factory=list)
    emit_latencies: List[float] = field(default_factory=list)
    emit_event_lags: List[float] = field(default_factory=list)
    late_dropped: int = 0
    stats: Optional[tuple] = None
    #: Final metrics snapshot (``MetricsRegistry.snapshot()`` dict) when the
    #: job ran with metrics enabled; ``None`` otherwise.
    metrics: Optional[dict] = None
    #: The worker's final flight-recorder ring (span dicts) when the job ran
    #: with tracing enabled; ``None`` otherwise.
    spans: Optional[list] = None
    #: Estimated additive correction mapping this worker's perf-counter
    #: timestamps onto the driver's scale, from the ``(wall, perf)`` anchor a
    #: remote socket worker sends in the job handshake.  ``None`` for local
    #: workers, whose clocks are directly comparable.
    clock_offset: Optional[float] = None


def encode_report(report: WorkerReport) -> tuple:
    """Flatten a report into primitives for the process/socket boundary."""
    from ...parallel.serialize import encode_tuples

    return (
        report.index,
        encode_tuples(report.outputs),
        list(report.emit_latencies),
        list(report.emit_event_lags),
        report.late_dropped,
        report.stats,
        report.metrics,
        report.spans,
        report.clock_offset,
    )


def decode_report(code: tuple) -> WorkerReport:
    """Rebuild a report from its encoding."""
    from ...parallel.serialize import decode_tuples

    index, outputs, latencies, lags, late, stats, metrics = code[:7]
    return WorkerReport(
        index=index,
        outputs=decode_tuples(outputs),
        emit_latencies=list(latencies),
        emit_event_lags=list(lags),
        late_dropped=late,
        stats=tuple(stats) if stats is not None else None,
        metrics=metrics,
        spans=code[7] if len(code) > 7 else None,
        clock_offset=code[8] if len(code) > 8 else None,
    )


class Worker:
    """Spec-driven operator state machine: route → operate → emit → close."""

    def __init__(
        self, spec: WorkerSpec, emitter: Emitter, metrics=None, tracer=None
    ) -> None:
        self.spec = spec
        self.emitter = emitter
        self.join = spec.build_join()
        # Tracing is optional and per-element: ``tracer`` is a per-worker
        # ``repro.obs.Tracer`` (or ``None``); spans are recorded only for
        # elements that arrived carrying a trace context, so with sampling
        # off the only added cost is one ``is None`` test per element.
        self.tracer = tracer
        self._active_trace = None
        # Metrics are optional: ``metrics`` is a per-worker
        # ``repro.obs.MetricsRegistry`` (or ``None``, the fast path).  The
        # three flow counters are bound once so the hot path is a plain
        # attribute increment, not a dict lookup.
        self.metrics = metrics
        if metrics is not None:
            self._m_routed = metrics.counter("elements_routed")
            self._m_operated = metrics.counter("elements_operated")
            self._m_emitted = metrics.counter("elements_emitted")
        else:
            self._m_routed = self._m_operated = self._m_emitted = None
        #: The worker's input channel, when the transport exposes one
        #: (thread/process/socket inboxes); sampled into inbox_* gauges.
        self.inbox_channel = None
        # Optional in-process observation hooks (the serving layer's seam):
        # ``tap(channel_id, element)`` sees every output element live,
        # ``probe(channel_id, join)`` sees the operator instance at start-up.
        # Read via getattr so specs without the fields keep working; both are
        # callables and therefore only usable on in-process transports.
        self._tap = getattr(spec, "tap", None)
        probe = getattr(spec, "probe", None)
        if probe is not None:
            probe(spec.channel_id, self.join)
        self._trackers = {
            LEFT: ChannelWatermarks(spec.left_channels),
            RIGHT: ChannelWatermarks(spec.right_channels),
        }
        self._outputs: Optional[List[TPTuple]] = [] if spec.collect_outputs else None
        self._finished = False

    def accept(self, channel: Hashable, tagged: Tagged) -> None:
        """Process one delivered element (step 1 + 2 + 3)."""
        if self._m_routed is not None:
            self._m_routed.value += 1
        element = tagged.element
        if isinstance(element, Watermark):
            merged = self._trackers[tagged.side].update(channel, element.value)
            if merged is None:
                return
            tagged = Tagged(tagged.side, Watermark(merged), tagged.ingest_clock)
        if self._m_operated is not None:
            self._m_operated.value += 1
        if tagged.trace is not None and self.tracer is not None:
            self._accept_traced(channel, tagged)
        else:
            self._dispatch(self.join.process(tagged))

    def _accept_traced(self, channel: Hashable, tagged: Tagged) -> None:
        """The operate step for a sampled element: spans around the operator.

        Records a ``queue_wait`` span (ingest stamp → pickup, when the
        element was stamped at a routing point) and an ``operate`` span,
        then dispatches outputs with the operate span as their parent so
        downstream spans stitch into one causal timeline.
        """
        trace_id, parent = tagged.trace
        start = perf_counter()
        if tagged.ingest_clock is not None:
            self.tracer.record(
                "queue_wait",
                trace_id,
                parent,
                tagged.ingest_clock,
                start,
                channel=str(channel) if channel is not None else "data",
            )
        outputs = self.join.process(tagged)
        end = perf_counter()
        operate = self.tracer.record(
            "operate", trace_id, parent, start, end, **span_detail(tagged.element)
        )
        self._active_trace = (trace_id, operate)
        try:
            self._dispatch(outputs)
        finally:
            self._active_trace = None

    def finish(self) -> WorkerReport:
        """Close the operator, flush, send done sentinels, build the report."""
        self._dispatch(self.join.close())
        self._finished = True
        # One done sentinel per (edge × consumer partition), matching the
        # producer counts compiled into the specs (duplicate edges to one
        # consumer — a self-join shape — each carry their own sentinel).
        for first, consumer_parts, _side, _key_indices in self.spec.downstream:
            for offset in range(consumer_parts):
                self.emitter.done(first + offset)
        report = self.spec.report(self.join, self._outputs)
        if self.metrics is not None:
            report.metrics = self.metrics_snapshot()
        if self.tracer is not None:
            report.spans = self.tracer.dump()
        return report

    def metrics_snapshot(self) -> Optional[dict]:
        """Sample operator + inbox state into the registry and snapshot it."""
        if self.metrics is None:
            return None
        from ...obs.sample import sample_operator

        sample_operator(self.metrics, self.join)
        channel = self.inbox_channel
        if channel is not None:
            self.metrics.gauge("inbox_depth").set(len(channel))
            self.metrics.gauge("inbox_high_watermark").set(channel.high_watermark)
            self.metrics.gauge("inbox_put_blocks").set(channel.put_blocks)
            self.metrics.set_counter("inbox_total_put", channel.total_put)
            self.metrics.set_counter("inbox_batches", channel.total_batches)
            self.metrics.set_counter(
                "inbox_batch_elements", channel.total_batch_elements
            )
        return self.metrics.snapshot()

    @property
    def finished(self) -> bool:
        return self._finished

    def _dispatch(self, elements) -> None:
        if self._m_emitted is not None:
            self._m_emitted.value += len(elements)
        if self._tap is not None:
            for element in elements:
                self._tap(self.spec.channel_id, element)
        if self._active_trace is not None and elements:
            self._dispatch_traced(elements)
            return
        if self._outputs is not None:
            self._outputs.extend(elements)
            return
        channel = self.spec.channel_id
        for element in elements:
            for first, consumer_parts, side, key_indices in self.spec.downstream:
                if isinstance(element, Watermark):
                    for offset in range(consumer_parts):
                        self.emitter.send(first + offset, channel, Tagged(side, element))
                else:
                    if consumer_parts > 1:
                        key = tuple(element.tuple.fact[i] for i in key_indices)
                        offset = stable_key_hash(key) % consumer_parts
                    else:
                        offset = 0
                    self.emitter.send(first + offset, None, Tagged(side, element))

    def _dispatch_traced(self, elements) -> None:
        """Emit outputs of a traced operate step, one ``emit`` span each.

        The emit span timestamps the element's departure; its id becomes
        the parent carried downstream, so the gap to the consumer's
        ``operate`` span is the inter-worker queue/wire wait.  Sink
        workers (no downstream, or locally collected outputs) still get
        the span — that is what closes a timeline source→sink.
        """
        trace_id, parent = self._active_trace
        record = self.tracer.record
        if self._outputs is not None:
            now = perf_counter()
            for element in elements:
                record("emit", trace_id, parent, now, now, **span_detail(element))
            self._outputs.extend(elements)
            return
        channel = self.spec.channel_id
        for element in elements:
            if isinstance(element, Watermark):
                for first, consumer_parts, side, _key_indices in self.spec.downstream:
                    for offset in range(consumer_parts):
                        self.emitter.send(first + offset, channel, Tagged(side, element))
                continue
            now = perf_counter()
            span = record("emit", trace_id, parent, now, now, **span_detail(element))
            context = (trace_id, span)
            for first, consumer_parts, side, key_indices in self.spec.downstream:
                if consumer_parts > 1:
                    key = tuple(element.tuple.fact[i] for i in key_indices)
                    offset = stable_key_hash(key) % consumer_parts
                else:
                    offset = 0
                self.emitter.send(
                    first + offset, None, Tagged(side, element, None, context)
                )


class Inbox(Protocol):
    """A worker's input: batches of ``(channel, tagged)`` until producers end."""

    def take_batch(self, max_size: int) -> Optional[List[tuple]]: ...


def run_worker(
    spec: WorkerSpec,
    inbox: Inbox,
    emitter: Emitter,
    micro_batch_size: int,
    metrics=None,
    metrics_sink=None,
    metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    tracer=None,
    trace_sink=None,
    restore=None,
    checkpoint_sink=None,
    checkpoint_interval: Optional[float] = None,
) -> WorkerReport:
    """Drive one worker to settlement over a pull-based inbox.

    The loop every pull transport (threads, processes, sockets) runs: drain
    micro-batches until the inbox reports all producers done (``None``),
    flushing buffered downstream sends after each batch, then close.

    With ``metrics`` (a per-worker registry) the loop also times idle
    (blocked in ``take_batch``) vs busy seconds, histograms micro-batch
    sizes, and — when ``metrics_sink`` is given — pushes a periodic
    snapshot every ``metrics_interval`` seconds so the driver can observe
    the run live.  With ``tracer`` (a per-worker ``repro.obs.Tracer``)
    sampled elements get spans; ``trace_sink`` receives the newly recorded
    spans on the same periodic cadence.

    ``checkpoint_sink``/``checkpoint_interval`` add fault-tolerance state
    capture: every ``checkpoint_interval`` seconds (``0.0`` = every batch)
    the worker's full state — operator, collected outputs, the count of
    elements consumed — is snapshotted at a micro-batch boundary
    (:func:`repro.recovery.checkpoint.snapshot_worker`) and pushed to the
    sink.  ``restore`` seeds a replacement worker from such a snapshot
    before any element is consumed, returning the element count replay
    must skip past.  The telemetry-off, checkpoint-off path is the
    original tight loop.
    """
    worker = Worker(spec, emitter, metrics=metrics, tracer=tracer)
    elements_seen = 0
    snapshot_worker = None
    if restore is not None or checkpoint_sink is not None:
        from ...recovery.checkpoint import restore_worker, snapshot_worker
    if restore is not None:
        elements_seen = restore_worker(worker, restore)
    checkpointing = checkpoint_sink is not None and checkpoint_interval is not None
    if metrics is None and tracer is None and not checkpointing:
        while True:
            batch = inbox.take_batch(micro_batch_size)
            if batch is None:
                break
            for channel, tagged in batch:
                worker.accept(channel, tagged)
            emitter.flush()
        report = worker.finish()
        emitter.flush()
        return report

    from ..channel import Channel

    # The thread transport's inbox *is* the channel; the socket inbox wraps
    # one and exposes it as ``.channel``; the process inbox has none.
    inbox_channel = getattr(inbox, "channel", None)
    if inbox_channel is None and isinstance(inbox, Channel):
        inbox_channel = inbox
    worker.inbox_channel = inbox_channel
    if metrics is not None:
        batch_sizes = metrics.histogram("batch_size")
        batches = metrics.counter("batches")
        idle_gauge = metrics.gauge("idle_seconds")
        busy_gauge = metrics.gauge("busy_seconds")
    periodic = metrics_sink is not None or trace_sink is not None
    idle = busy = 0.0
    last_emit = last_checkpoint = perf_counter()
    while True:
        mark = perf_counter()
        batch = inbox.take_batch(micro_batch_size)
        now = perf_counter()
        idle += now - mark
        if batch is None:
            break
        for channel, tagged in batch:
            worker.accept(channel, tagged)
        elements_seen += len(batch)
        emitter.flush()
        done = perf_counter()
        busy += done - now
        if metrics is not None:
            batch_sizes.observe(len(batch))
            batches.inc()
        if checkpointing and done - last_checkpoint >= checkpoint_interval:
            # Micro-batch boundaries are the only consistent points: the
            # operator holds no half-processed element here, so the
            # snapshot plus the post-``elements_seen`` input suffix is
            # exactly equivalent to the full input prefix.
            checkpoint_sink(snapshot_worker(worker, elements_seen))
            last_checkpoint = done
        if periodic and done - last_emit >= metrics_interval:
            if metrics_sink is not None:
                idle_gauge.set(idle)
                busy_gauge.set(busy)
                metrics_sink(worker.metrics_snapshot())
            if trace_sink is not None:
                spans = tracer.pending()
                if spans:
                    trace_sink(spans)
            last_emit = done
    if metrics is not None:
        idle_gauge.set(idle)
        busy_gauge.set(busy)
    report = worker.finish()
    emitter.flush()
    return report


# --------------------------------------------------------------------------- #
# standalone worker entry point
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.runtime.worker --listen HOST:PORT``.

    Starts a socket-transport worker server on this host.  A driver whose
    :class:`~repro.runtime.placement.Placement` names this address ships the
    worker its spec and the full address map per job; the server runs any
    number of jobs, sequentially or concurrently, until stopped.

    SIGTERM and SIGINT shut the server down gracefully: the listener stops
    accepting, in-flight jobs drain to completion (their result frames
    still reach the driver), and the process exits 0.  ``--idle-timeout``
    exits the same way after that many seconds without a connection or
    running job.
    """
    import argparse
    import logging
    import signal
    import threading

    from ...obs.logs import configure_logging
    from ..placement import parse_host_port
    from ..sockets import _JobRegistry, serve

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker",
        description="Socket-transport worker: joins a placement map and runs "
        "shipped worker specs until stopped (SIGTERM/SIGINT drain gracefully).",
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (use the same value in the driver's placement)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after the first job completes (used by spawned local workers)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once no job or connection has been active for this long",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose Prometheus-format metrics of running jobs on this port",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="logging verbosity (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line instead of plain text",
    )
    arguments = parser.parse_args(argv)
    configure_logging(arguments.log_level, json_mode=arguments.log_json)
    logger = logging.getLogger(__name__)
    host, port = parse_host_port(arguments.listen)
    shutdown = threading.Event()
    received: List[int] = []
    registry = _JobRegistry()
    metrics_server = None
    if arguments.metrics_port is not None:
        from ...obs.httpd import start_metrics_http_server
        from ...obs.metrics import MetricsAggregator

        def render() -> str:
            aggregator = MetricsAggregator()
            aggregator.update_all(registry.metrics_snapshots())
            return aggregator.prometheus_text()

        metrics_server = start_metrics_http_server(host, arguments.metrics_port, render)

    def request_shutdown(signum, _frame) -> None:
        # Signal-handler safe: just record and set the event; the serve
        # loop notices within its accept timeout and drains.  (Printing
        # here could re-enter a stdout write interrupted by the signal.)
        received.append(signum)
        shutdown.set()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, request_shutdown)
    serve(
        host,
        port,
        once=arguments.once,
        shutdown=shutdown,
        idle_timeout=arguments.idle_timeout,
        registry=registry,
    )
    if metrics_server is not None:
        metrics_server.shutdown()
    if received:
        logger.info(
            "repro runtime worker shut down cleanly "
            "(%s: jobs drained, sockets closed)",
            signal.Signals(received[0]).name,
        )
    return 0

